//! Hypothesis-testing helpers.
//!
//! The survival crate's log-rank test reduces to a chi-squared statistic;
//! this module converts statistics into p-values and provides the small
//! amount of shared test machinery (significance levels, two-sample z).

use crate::distributions::{ChiSquared, ContinuousDistribution};
use crate::special::std_normal_cdf;

/// Survival function of the chi-squared distribution: the p-value of a
/// chi-squared-distributed statistic `x` with `dof` degrees of freedom.
///
/// Tail-accurate (does not underflow to zero for the `p < 1e-7` values
/// the paper reports).
pub fn chi_squared_sf(x: f64, dof: f64) -> f64 {
    ChiSquared::new(dof).sf(x)
}

/// Two-sided p-value of a standard-normal-distributed statistic.
pub fn normal_two_sided_p(z: f64) -> f64 {
    2.0 * std_normal_cdf(-z.abs())
}

/// Outcome of a hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The test statistic.
    pub statistic: f64,
    /// The p-value under the null hypothesis.
    pub p_value: f64,
    /// Degrees of freedom of the reference distribution (0 if N/A).
    pub dof: f64,
}

impl TestResult {
    /// True if the null hypothesis is rejected at significance `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-sample Kolmogorov–Smirnov test: are two samples drawn from the
/// same continuous distribution?
///
/// The statistic is the supremum gap between the two empirical CDFs;
/// the p-value uses the asymptotic Kolmogorov distribution
/// `Q(λ) = 2 Σ (−1)^{k−1} e^{−2k²λ²}` with the effective sample size
/// `n = n₁n₂/(n₁+n₂)` — accurate for moderate-to-large samples, which
/// is how this workspace uses it (distribution-shift checks between
/// generated populations).
///
/// # Panics
///
/// Panics if either sample is empty or contains non-finite values.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> TestResult {
    assert!(!a.is_empty() && !b.is_empty(), "KS needs non-empty samples");
    let mut a_sorted = a.to_vec();
    let mut b_sorted = b.to_vec();
    a_sorted.sort_by(|x, y| x.partial_cmp(y).expect("finite sample values"));
    b_sorted.sort_by(|x, y| x.partial_cmp(y).expect("finite sample values"));

    let (n1, n2) = (a_sorted.len(), b_sorted.len());
    let mut i = 0usize;
    let mut j = 0usize;
    let mut statistic = 0.0_f64;
    while i < n1 && j < n2 {
        let x = a_sorted[i].min(b_sorted[j]);
        while i < n1 && a_sorted[i] <= x {
            i += 1;
        }
        while j < n2 && b_sorted[j] <= x {
            j += 1;
        }
        let gap = (i as f64 / n1 as f64 - j as f64 / n2 as f64).abs();
        if gap > statistic {
            statistic = gap;
        }
    }

    let effective = (n1 * n2) as f64 / (n1 + n2) as f64;
    let lambda = (effective.sqrt() + 0.12 + 0.11 / effective.sqrt()) * statistic;
    let p_value = kolmogorov_sf(lambda);
    TestResult {
        statistic,
        p_value,
        dof: 0.0,
    }
}

/// Survival function of the Kolmogorov distribution.
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0_f64;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chi2_sf_critical_value() {
        // 3.8415 is the 5% critical value for 1 dof.
        let p = chi_squared_sf(3.841_458_820_694_124, 1.0);
        assert!((p - 0.05).abs() < 1e-9);
    }

    #[test]
    fn chi2_sf_deep_tail_nonzero() {
        let p = chi_squared_sf(80.0, 1.0);
        assert!(p > 0.0 && p < 1e-15);
    }

    #[test]
    fn normal_two_sided_symmetric() {
        assert!((normal_two_sided_p(1.96) - 0.05).abs() < 1e-3);
        assert_eq!(normal_two_sided_p(2.5), normal_two_sided_p(-2.5));
    }

    #[test]
    fn ks_identical_samples_not_significant() {
        let a: Vec<f64> = (0..500).map(|i| (i as f64) * 0.37 % 13.0).collect();
        let r = ks_two_sample(&a, &a.clone());
        assert_eq!(r.statistic, 0.0);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn ks_detects_location_shift() {
        use crate::distributions::{ContinuousDistribution, Normal};
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(3);
        let n0 = Normal::new(0.0, 1.0);
        let n1 = Normal::new(0.8, 1.0);
        let a: Vec<f64> = (0..400).map(|_| n0.sample(&mut rng)).collect();
        let b: Vec<f64> = (0..400).map(|_| n1.sample(&mut rng)).collect();
        let r = ks_two_sample(&a, &b);
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);

        // Same distribution: not significant.
        let c: Vec<f64> = (0..400).map(|_| n0.sample(&mut rng)).collect();
        let same = ks_two_sample(&a, &c);
        assert!(same.p_value > 0.01, "p = {}", same.p_value);
    }

    #[test]
    fn ks_statistic_bounds() {
        // Completely disjoint supports: statistic = 1.
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![10.0, 11.0];
        let r = ks_two_sample(&a, &b);
        assert!((r.statistic - 1.0).abs() < 1e-12);
        assert!(r.p_value < 0.2);
    }

    #[test]
    fn significance_threshold() {
        let r = TestResult {
            statistic: 5.0,
            p_value: 0.03,
            dof: 1.0,
        };
        assert!(r.significant_at(0.05));
        assert!(!r.significant_at(0.01));
    }
}
