//! Statistical substrate for the cloud-database survivability study.
//!
//! This crate provides, from scratch (no external numeric dependencies):
//!
//! * [`special`] — special functions: log-gamma, regularized incomplete
//!   gamma, error function, and the inverse of the standard normal CDF.
//! * [`distributions`] — continuous and discrete probability
//!   distributions with pdf/cdf/quantile/sampling, plus finite mixtures.
//! * [`descriptive`] — numerically stable descriptive statistics,
//!   quantiles, and histograms.
//! * [`hypothesis`] — p-value helpers for chi-squared distributed test
//!   statistics (used by the log-rank test in the `survival` crate).
//!
//! Everything is deterministic given a seeded RNG, which the rest of the
//! workspace relies on for reproducible experiments.
//!
//! # Example
//!
//! ```
//! use stats::{ContinuousDistribution, Weibull, Summary};
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! // An infant-mortality lifetime model: shape < 1.
//! let lifetimes = Weibull::new(0.8, 30.0);
//! let mut rng = SmallRng::seed_from_u64(7);
//! let mut summary = Summary::new();
//! for _ in 0..1000 {
//!     summary.push(lifetimes.sample(&mut rng));
//! }
//! assert!((summary.mean() - lifetimes.mean()).abs() < 5.0);
//! assert!(lifetimes.sf(0.0) == 1.0);
//! ```

pub mod descriptive;
pub mod distributions;
pub mod hypothesis;
pub mod special;

pub use descriptive::{histogram, quantile, Histogram, Summary};
pub use distributions::{
    Beta, Categorical, ChiSquared, ContinuousDistribution, DiscreteDistribution, Exponential,
    LogNormal, Mixture, Normal, Uniform, Weibull,
};
pub use hypothesis::{chi_squared_sf, ks_two_sample};
