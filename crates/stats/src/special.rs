//! Special functions needed by the distribution and hypothesis-testing
//! modules: log-gamma, regularized incomplete gamma, the error function,
//! and the inverse standard normal CDF.
//!
//! All routines are double precision and accurate to roughly 1e-10 over
//! the argument ranges exercised by this workspace (they are tested
//! against high-precision reference values).

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, n = 9), accurate to ~1e-13.
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x) Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = COEFFS[0];
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + 7.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, x)` is the CDF of a Gamma(shape = a, scale = 1) random variable.
/// Uses the series expansion for `x < a + 1` and the continued fraction
/// for `x >= a + 1` (Numerical Recipes §6.2 approach).
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
///
/// Computed directly via the continued fraction when `x >= a + 1` to
/// avoid catastrophic cancellation in the far tail, which matters for
/// the tiny log-rank p-values the paper reports (`p < 1e-7`).
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_q requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

const MAX_ITER: usize = 500;
const EPS: f64 = 1e-15;

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Modified Lentz's method for the continued fraction
    // Q(a,x) = e^{-x} x^a / Γ(a) * 1/(x+1-a- 1(1-a)/(x+3-a- ...)).
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularized incomplete beta function `I_x(a, b)`, the CDF of a
/// Beta(a, b) random variable at `x`.
///
/// Uses the continued-fraction expansion (Numerical Recipes §6.4) with
/// the symmetry `I_x(a,b) = 1 − I_{1−x}(b,a)` to keep the fraction in
/// its fast-converging region.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0`, or `x` is outside `[0, 1]`.
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "shape parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - (ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + b * (1.0 - x).ln() + a * x.ln()).exp()
            * beta_cf(b, a, 1.0 - x)
            / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < tiny {
        d = tiny;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = 1.0 + aa / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = 1.0 + aa / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Error function `erf(x)`, accurate to ~1e-12, via the incomplete gamma
/// relation `erf(x) = sign(x) · P(1/2, x²)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else if x > 0.0 {
        gamma_p(0.5, x * x)
    } else {
        -gamma_p(0.5, x * x)
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`, computed without
/// cancellation for large positive `x`.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Inverse of the standard normal CDF (the probit function).
///
/// Uses Peter Acklam's rational approximation refined with one step of
/// Halley's method, giving full double precision.
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement using the exact CDF.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)! for integer n.
        let mut fact = 1.0_f64;
        for n in 1..15_u32 {
            close(ln_gamma(n as f64), fact.ln(), 1e-10);
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = √π / 2.
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    #[should_panic]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x} (exponential CDF).
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            close(gamma_p(1.0, x), 1.0 - (-x_f(x)).exp(), 1e-12);
        }
        // Chi-squared with 2 dof at its median: P(1, ln 2) = 0.5.
        close(gamma_p(1.0, std::f64::consts::LN_2), 0.5, 1e-12);
    }

    fn x_f(x: f64) -> f64 {
        x
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for &a in &[0.3, 0.5, 1.0, 2.5, 7.0, 20.0] {
            for &x in &[0.01, 0.5, 1.0, 3.0, 10.0, 40.0] {
                close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn gamma_q_far_tail_is_positive_and_tiny() {
        // Chi-squared(1) survival at 60 is ~1e-14; must not underflow to
        // exactly 0 or go negative (log-rank p-values rely on this).
        let q = gamma_q(0.5, 30.0); // chi2 sf(60, df=1) = Q(1/2, 30)
        assert!(q > 0.0 && q < 1e-12, "q = {q}");
    }

    #[test]
    fn incomplete_beta_reference_values() {
        // I_x(1, 1) = x (uniform CDF).
        for &x in &[0.1, 0.3, 0.7, 0.95] {
            close(incomplete_beta(1.0, 1.0, x), x, 1e-12);
        }
        // I_x(2, 2) = 3x² − 2x³.
        for &x in &[0.2, 0.5, 0.8] {
            close(
                incomplete_beta(2.0, 2.0, x),
                3.0 * x * x - 2.0 * x * x * x,
                1e-10,
            );
        }
        // Symmetry I_x(a,b) = 1 − I_{1−x}(b,a).
        for &(a, b, x) in &[(2.5, 1.5, 0.3), (0.5, 3.0, 0.8)] {
            close(
                incomplete_beta(a, b, x) + incomplete_beta(b, a, 1.0 - x),
                1.0,
                1e-10,
            );
        }
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn erf_reference_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-11);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-11);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-11);
        close(erfc(3.0), 2.209_049_699_858_544e-5, 1e-14);
    }

    #[test]
    fn normal_cdf_symmetry_and_known() {
        close(std_normal_cdf(0.0), 0.5, 1e-14);
        close(std_normal_cdf(1.959_963_984_540_054), 0.975, 1e-10);
        for &x in &[0.3, 1.1, 2.7] {
            close(std_normal_cdf(x) + std_normal_cdf(-x), 1.0, 1e-12);
        }
    }

    #[test]
    fn normal_quantile_roundtrip() {
        for &p in &[1e-8, 1e-4, 0.025, 0.2, 0.5, 0.8, 0.975, 1.0 - 1e-6] {
            close(std_normal_cdf(std_normal_quantile(p)), p, 1e-12);
        }
    }

    #[test]
    fn normal_quantile_known_values() {
        close(std_normal_quantile(0.975), 1.959_963_984_540_054, 1e-9);
        close(std_normal_quantile(0.5), 0.0, 1e-12);
        close(std_normal_quantile(0.025), -1.959_963_984_540_054, 1e-9);
    }
}
