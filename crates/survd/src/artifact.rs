//! The serving artifact: `artifacts/serving.json`.
//!
//! Layout (schema `survdb-serving/v1`), mirroring the run-trace and
//! scoring-artifact two-section convention:
//!
//! ```text
//! {
//!   "schema": "survdb-serving/v1",
//!   "binary": "<emitting binary>",
//!   "deterministic": {          // identical across runs & thread counts
//!     "config": { "connections", "requests", "rows_per_request",
//!                 "workers", "queue_capacity",
//!                 "batch_max_rows", "batch_max_wait_ms" },
//!     "corpus": { "rows", "seed" },
//!     "model": { "tree_count", "feature_count",
//!                "positive_fraction", "confidence_threshold" },
//!     "counts": { "requests_sent", "responses_ok", "responses_shed",
//!                 "responses_error", "rows_scored" },
//!     "score_histogram": [10 × u64]
//!   },
//!   "nondeterministic": {       // wall-clock serving performance
//!     "elapsed_ms", "requests_per_second", "rows_per_second",
//!     "latency_ms": { "p50", "p95", "p99", "max", "mean" }
//!   }
//! }
//! ```
//!
//! A closed-loop load run against a deterministic corpus produces
//! deterministic counts and a deterministic score histogram (every
//! response probability is a pure function of model × row); latency
//! and throughput are wall-clock and live only under
//! `nondeterministic`. The validator enforces the split plus the
//! counting identities (ok + shed + error = sent, histogram sums to
//! rows_scored, latency percentiles monotone) so a drifting producer
//! fails CI instead of shipping inconsistent artifacts.

use obs::jsonv::{self, JsonV};
use serve::SavedModel;
use std::io;
use std::path::{Path, PathBuf};

/// Schema identifier for `serving.json`.
pub const SERVING_SCHEMA: &str = "survdb-serving/v1";

/// File name the artifact is written under.
pub const SERVING_FILE: &str = "serving.json";

/// The load-run shape — everything that determines the deterministic
/// section besides the model and corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingRunConfig {
    /// Closed-loop client connections.
    pub connections: usize,
    /// Total requests issued.
    pub requests: usize,
    /// Feature rows per request.
    pub rows_per_request: usize,
    /// Daemon worker threads.
    pub workers: usize,
    /// Admission-queue capacity.
    pub queue_capacity: usize,
    /// Batcher row threshold.
    pub batch_max_rows: usize,
    /// Batcher deadline in milliseconds.
    pub batch_max_wait_ms: u64,
}

/// Where the request rows came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingCorpus {
    /// Distinct feature rows in the corpus.
    pub rows: usize,
    /// Fleet-generation seed.
    pub seed: u64,
}

/// Deterministic outcome counts of a load run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingCounts {
    /// Requests the generator issued.
    pub requests_sent: u64,
    /// 200 responses.
    pub responses_ok: u64,
    /// 429 responses (shed).
    pub responses_shed: u64,
    /// Anything else (connection failures, 4xx/5xx).
    pub responses_error: u64,
    /// Total rows scored across 200 responses.
    pub rows_scored: u64,
    /// Positive-probability histogram over every scored row, bucketed
    /// by [`serve::histogram_bucket`].
    pub score_histogram: [u64; 10],
}

/// Wall-clock measurements of a load run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingTiming {
    /// Total run wall time in milliseconds.
    pub elapsed_ms: f64,
    /// Completed requests per second.
    pub requests_per_second: f64,
    /// Scored rows per second.
    pub rows_per_second: f64,
    /// 429-triggered client retries performed (0 unless the generator
    /// ran with retries enabled). Timing-dependent — how often the
    /// queue is full when a request lands depends on scheduling — so
    /// it lives in the nondeterministic section.
    pub retries_429: u64,
    /// Request latency p50, milliseconds.
    pub latency_p50_ms: f64,
    /// Request latency p95, milliseconds.
    pub latency_p95_ms: f64,
    /// Request latency p99, milliseconds.
    pub latency_p99_ms: f64,
    /// Slowest request, milliseconds.
    pub latency_max_ms: f64,
    /// Mean request latency, milliseconds.
    pub latency_mean_ms: f64,
}

fn deterministic_json(
    config: &ServingRunConfig,
    corpus: &ServingCorpus,
    model: &SavedModel,
    counts: &ServingCounts,
) -> JsonV {
    JsonV::obj(vec![
        (
            "config",
            JsonV::obj(vec![
                ("connections", JsonV::UInt(config.connections as u64)),
                ("requests", JsonV::UInt(config.requests as u64)),
                (
                    "rows_per_request",
                    JsonV::UInt(config.rows_per_request as u64),
                ),
                ("workers", JsonV::UInt(config.workers as u64)),
                ("queue_capacity", JsonV::UInt(config.queue_capacity as u64)),
                ("batch_max_rows", JsonV::UInt(config.batch_max_rows as u64)),
                ("batch_max_wait_ms", JsonV::UInt(config.batch_max_wait_ms)),
            ]),
        ),
        (
            "corpus",
            JsonV::obj(vec![
                ("rows", JsonV::UInt(corpus.rows as u64)),
                ("seed", JsonV::UInt(corpus.seed)),
            ]),
        ),
        (
            "model",
            JsonV::obj(vec![
                ("tree_count", JsonV::UInt(model.forest.tree_count() as u64)),
                (
                    "feature_count",
                    JsonV::UInt(model.forest.feature_names().len() as u64),
                ),
                (
                    "positive_fraction",
                    JsonV::Float(model.meta.positive_fraction),
                ),
                ("confidence_threshold", JsonV::Float(model.threshold())),
            ]),
        ),
        (
            "counts",
            JsonV::obj(vec![
                ("requests_sent", JsonV::UInt(counts.requests_sent)),
                ("responses_ok", JsonV::UInt(counts.responses_ok)),
                ("responses_shed", JsonV::UInt(counts.responses_shed)),
                ("responses_error", JsonV::UInt(counts.responses_error)),
                ("rows_scored", JsonV::UInt(counts.rows_scored)),
            ]),
        ),
        (
            "score_histogram",
            JsonV::Arr(
                counts
                    .score_histogram
                    .iter()
                    .map(|&v| JsonV::UInt(v))
                    .collect(),
            ),
        ),
    ])
}

/// Renders only the deterministic section — the byte string the
/// loopback tests pin across worker counts and batch policies.
pub fn deterministic_serving_section(
    config: &ServingRunConfig,
    corpus: &ServingCorpus,
    model: &SavedModel,
    counts: &ServingCounts,
) -> String {
    deterministic_json(config, corpus, model, counts).render()
}

/// Renders the full serving artifact for `binary`.
pub fn render_serving(
    binary: &str,
    config: &ServingRunConfig,
    corpus: &ServingCorpus,
    model: &SavedModel,
    counts: &ServingCounts,
    timing: &ServingTiming,
) -> String {
    JsonV::obj(vec![
        ("schema", JsonV::Str(SERVING_SCHEMA.to_string())),
        ("binary", JsonV::Str(binary.to_string())),
        (
            "deterministic",
            deterministic_json(config, corpus, model, counts),
        ),
        (
            "nondeterministic",
            JsonV::obj(vec![
                ("elapsed_ms", JsonV::Float(timing.elapsed_ms)),
                (
                    "requests_per_second",
                    JsonV::Float(timing.requests_per_second),
                ),
                ("rows_per_second", JsonV::Float(timing.rows_per_second)),
                ("retries_429", JsonV::UInt(timing.retries_429)),
                (
                    "latency_ms",
                    JsonV::obj(vec![
                        ("p50", JsonV::Float(timing.latency_p50_ms)),
                        ("p95", JsonV::Float(timing.latency_p95_ms)),
                        ("p99", JsonV::Float(timing.latency_p99_ms)),
                        ("max", JsonV::Float(timing.latency_max_ms)),
                        ("mean", JsonV::Float(timing.latency_mean_ms)),
                    ]),
                ),
            ]),
        ),
    ])
    .render()
}

/// Writes `dir/serving.json` for `binary`, creating `dir` if needed.
/// Returns the written path.
#[allow(clippy::too_many_arguments)]
pub fn write_serving(
    dir: &Path,
    binary: &str,
    config: &ServingRunConfig,
    corpus: &ServingCorpus,
    model: &SavedModel,
    counts: &ServingCounts,
    timing: &ServingTiming,
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(SERVING_FILE);
    std::fs::write(
        &path,
        render_serving(binary, config, corpus, model, counts, timing),
    )?;
    Ok(path)
}

fn expect_obj<'a>(value: &'a JsonV, what: &str) -> Result<&'a [(String, JsonV)], String> {
    match value {
        JsonV::Obj(fields) => Ok(fields),
        other => Err(format!("{what} must be an object, found {other:?}")),
    }
}

fn expect_keys(fields: &[(String, JsonV)], keys: &[&str], what: &str) -> Result<(), String> {
    let found: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    if found != keys {
        return Err(format!("{what} must have keys {keys:?}, found {found:?}"));
    }
    Ok(())
}

fn expect_uint(value: &JsonV, what: &str) -> Result<u64, String> {
    match value {
        JsonV::UInt(v) => Ok(*v),
        other => Err(format!(
            "{what} must be an unsigned integer, found {other:?}"
        )),
    }
}

fn expect_float(value: &JsonV, what: &str) -> Result<f64, String> {
    match value {
        JsonV::Float(v) => Ok(*v),
        other => Err(format!("{what} must be a float, found {other:?}")),
    }
}

/// Structurally validates a rendered `serving.json`: schema id, the
/// deterministic/nondeterministic split, field types, and the counting
/// identities. Used by the `serving-schema-check` binary in CI.
pub fn validate_serving(text: &str) -> Result<(), String> {
    let root = jsonv::parse(text)?;
    let fields = expect_obj(&root, "serving artifact")?;
    expect_keys(
        fields,
        &["schema", "binary", "deterministic", "nondeterministic"],
        "serving artifact",
    )?;

    match root.get("schema") {
        Some(JsonV::Str(s)) if s == SERVING_SCHEMA => {}
        other => {
            return Err(format!(
                "schema must be {SERVING_SCHEMA:?}, found {other:?}"
            ))
        }
    }
    match root.get("binary") {
        Some(JsonV::Str(s)) if !s.is_empty() => {}
        other => {
            return Err(format!(
                "binary must be a non-empty string, found {other:?}"
            ))
        }
    }

    let det = root.get("deterministic").expect("keys checked");
    let det_fields = expect_obj(det, "deterministic")?;
    expect_keys(
        det_fields,
        &["config", "corpus", "model", "counts", "score_histogram"],
        "deterministic",
    )?;

    let config = det.get("config").expect("keys checked");
    let config_fields = expect_obj(config, "config")?;
    expect_keys(
        config_fields,
        &[
            "connections",
            "requests",
            "rows_per_request",
            "workers",
            "queue_capacity",
            "batch_max_rows",
            "batch_max_wait_ms",
        ],
        "config",
    )?;
    for key in [
        "connections",
        "requests",
        "rows_per_request",
        "workers",
        "queue_capacity",
        "batch_max_rows",
    ] {
        if expect_uint(config.get(key).expect("keys checked"), key)? == 0 {
            return Err(format!("config.{key} must be nonzero"));
        }
    }
    expect_uint(
        config.get("batch_max_wait_ms").expect("keys checked"),
        "batch_max_wait_ms",
    )?;

    let corpus = det.get("corpus").expect("keys checked");
    let corpus_fields = expect_obj(corpus, "corpus")?;
    expect_keys(corpus_fields, &["rows", "seed"], "corpus")?;
    if expect_uint(corpus.get("rows").expect("keys checked"), "corpus.rows")? == 0 {
        return Err("corpus.rows must be nonzero".to_string());
    }
    expect_uint(corpus.get("seed").expect("keys checked"), "corpus.seed")?;

    let model = det.get("model").expect("keys checked");
    let model_fields = expect_obj(model, "model")?;
    expect_keys(
        model_fields,
        &[
            "tree_count",
            "feature_count",
            "positive_fraction",
            "confidence_threshold",
        ],
        "model",
    )?;
    for key in ["tree_count", "feature_count"] {
        if expect_uint(model.get(key).expect("keys checked"), key)? == 0 {
            return Err(format!("model.{key} must be nonzero"));
        }
    }
    let q = expect_float(
        model.get("positive_fraction").expect("keys checked"),
        "positive_fraction",
    )?;
    if !(0.0..=1.0).contains(&q) {
        return Err(format!("positive_fraction {q} outside [0, 1]"));
    }
    let t = expect_float(
        model.get("confidence_threshold").expect("keys checked"),
        "confidence_threshold",
    )?;
    if !(0.5..=1.0).contains(&t) {
        return Err(format!("confidence_threshold {t} outside [0.5, 1]"));
    }

    let counts = det.get("counts").expect("keys checked");
    let count_fields = expect_obj(counts, "counts")?;
    expect_keys(
        count_fields,
        &[
            "requests_sent",
            "responses_ok",
            "responses_shed",
            "responses_error",
            "rows_scored",
        ],
        "counts",
    )?;
    let get_count = |key: &str| expect_uint(counts.get(key).expect("keys checked"), key);
    let sent = get_count("requests_sent")?;
    if sent == 0 {
        return Err("counts.requests_sent must be nonzero".to_string());
    }
    let ok = get_count("responses_ok")?;
    if ok + get_count("responses_shed")? + get_count("responses_error")? != sent {
        return Err(
            "responses_ok + responses_shed + responses_error must equal requests_sent".to_string(),
        );
    }
    let rows_scored = get_count("rows_scored")?;
    if ok > 0 && rows_scored == 0 {
        return Err("rows_scored must be nonzero when responses_ok > 0".to_string());
    }

    let histogram = match det.get("score_histogram") {
        Some(JsonV::Arr(items)) => items,
        other => return Err(format!("score_histogram must be an array, found {other:?}")),
    };
    if histogram.len() != 10 {
        return Err(format!(
            "score_histogram must have 10 buckets, found {}",
            histogram.len()
        ));
    }
    let mut total = 0u64;
    for (i, bucket) in histogram.iter().enumerate() {
        total += expect_uint(bucket, &format!("score_histogram[{i}]"))?;
    }
    if total != rows_scored {
        return Err(format!(
            "score_histogram sums to {total}, counts.rows_scored is {rows_scored}"
        ));
    }

    let nondet = root.get("nondeterministic").expect("keys checked");
    let nondet_fields = expect_obj(nondet, "nondeterministic")?;
    expect_keys(
        nondet_fields,
        &[
            "elapsed_ms",
            "requests_per_second",
            "rows_per_second",
            "retries_429",
            "latency_ms",
        ],
        "nondeterministic",
    )?;
    expect_uint(
        nondet.get("retries_429").expect("keys checked"),
        "retries_429",
    )?;
    for key in ["elapsed_ms", "requests_per_second", "rows_per_second"] {
        let v = expect_float(nondet.get(key).expect("keys checked"), key)?;
        if !v.is_finite() || v < 0.0 {
            return Err(format!("{key} must be finite and non-negative, found {v}"));
        }
    }
    let latency = nondet.get("latency_ms").expect("keys checked");
    let latency_fields = expect_obj(latency, "latency_ms")?;
    expect_keys(
        latency_fields,
        &["p50", "p95", "p99", "max", "mean"],
        "latency_ms",
    )?;
    let get_latency = |key: &str| expect_float(latency.get(key).expect("keys checked"), key);
    let p50 = get_latency("p50")?;
    let p95 = get_latency("p95")?;
    let p99 = get_latency("p99")?;
    let max = get_latency("max")?;
    let mean = get_latency("mean")?;
    for (key, v) in [
        ("p50", p50),
        ("p95", p95),
        ("p99", p99),
        ("max", max),
        ("mean", mean),
    ] {
        if !v.is_finite() || v < 0.0 {
            return Err(format!(
                "latency_ms.{key} must be finite and non-negative, found {v}"
            ));
        }
    }
    if !(p50 <= p95 && p95 <= p99 && p99 <= max) {
        return Err(format!(
            "latency percentiles must be monotone: p50 {p50}, p95 {p95}, p99 {p99}, max {max}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest::{Dataset, RandomForest, RandomForestParams};
    use serve::ModelMeta;

    fn fixture_model() -> SavedModel {
        let mut d = Dataset::new(vec!["x0".into(), "x1".into()], 2);
        for i in 0..60 {
            let x0 = i as f64 / 60.0;
            let x1 = ((i * 13) % 60) as f64 / 60.0;
            d.push(vec![x0, x1], (x0 > 0.5) as usize);
        }
        let params = RandomForestParams {
            n_trees: 4,
            ..RandomForestParams::default()
        };
        let forest = RandomForest::fit(&d, &params, 3);
        let meta = ModelMeta {
            positive_fraction: d.class_fraction(1),
            seed: 3,
            params,
            grid: None,
        };
        SavedModel::new(forest, meta)
    }

    fn sample() -> (
        ServingRunConfig,
        ServingCorpus,
        ServingCounts,
        ServingTiming,
    ) {
        (
            ServingRunConfig {
                connections: 4,
                requests: 200,
                rows_per_request: 4,
                workers: 4,
                queue_capacity: 128,
                batch_max_rows: 64,
                batch_max_wait_ms: 2,
            },
            ServingCorpus {
                rows: 120,
                seed: 42,
            },
            ServingCounts {
                requests_sent: 200,
                responses_ok: 200,
                responses_shed: 0,
                responses_error: 0,
                rows_scored: 800,
                score_histogram: [100, 100, 80, 80, 40, 40, 80, 80, 100, 100],
            },
            ServingTiming {
                elapsed_ms: 120.5,
                requests_per_second: 1660.0,
                rows_per_second: 6640.0,
                retries_429: 0,
                latency_p50_ms: 1.2,
                latency_p95_ms: 3.4,
                latency_p99_ms: 5.6,
                latency_max_ms: 9.9,
                latency_mean_ms: 1.5,
            },
        )
    }

    #[test]
    fn rendered_serving_validates() {
        let model = fixture_model();
        let (config, corpus, counts, timing) = sample();
        let text = render_serving("loadgen", &config, &corpus, &model, &counts, &timing);
        validate_serving(&text).expect("schema-valid");
        assert!(text.contains("\"requests_sent\": 200"));
        assert!(text.contains("\"score_histogram\""));
    }

    #[test]
    fn deterministic_section_excludes_timings() {
        let model = fixture_model();
        let (config, corpus, counts, _) = sample();
        let section = deterministic_serving_section(&config, &corpus, &model, &counts);
        assert!(!section.contains("elapsed_ms"));
        assert!(!section.contains("latency"));
        assert!(section.contains("\"rows_scored\": 800"));
    }

    #[test]
    fn validator_rejects_drift() {
        let model = fixture_model();
        let (config, corpus, counts, timing) = sample();
        let good = render_serving("loadgen", &config, &corpus, &model, &counts, &timing);
        assert!(validate_serving(&good.replace(SERVING_SCHEMA, "survdb-serving/v2")).is_err());
        assert!(validate_serving(&good.replace("\"counts\"", "\"tallies\"")).is_err());
        // Break the ok + shed + error = sent identity.
        assert!(
            validate_serving(&good.replace("\"responses_ok\": 200", "\"responses_ok\": 199"))
                .is_err()
        );
        // Break the histogram/rows_scored identity.
        assert!(
            validate_serving(&good.replace("\"rows_scored\": 800", "\"rows_scored\": 801"))
                .is_err()
        );
        // Break latency monotonicity.
        assert!(validate_serving(&good.replace("\"p95\": 3.4", "\"p95\": 99.0")).is_err());
        assert!(validate_serving("{}").is_err());
        assert!(validate_serving("nonsense").is_err());
    }

    #[test]
    fn write_serving_creates_the_artifact() {
        let model = fixture_model();
        let (config, corpus, counts, timing) = sample();
        let dir = std::env::temp_dir().join(format!("survdb-serving-{}", std::process::id()));
        let path = write_serving(&dir, "loadgen", &config, &corpus, &model, &counts, &timing)
            .expect("writes");
        let text = std::fs::read_to_string(&path).expect("readable");
        validate_serving(&text).expect("valid on disk");
        std::fs::remove_dir_all(&dir).ok();
    }
}
