//! Micro-batching: coalescing in-flight score requests into chunks.
//!
//! [`BatcherCore`] is the pure state machine — no threads, no sockets,
//! no wall clock. It accumulates pending requests (FIFO) and decides,
//! given a [`Clock`](crate::clock::Clock) reading, when a batch is due:
//! either enough rows have piled up (`max_rows`) or the oldest pending
//! request has waited `max_wait_ms`. The server's batcher thread wraps
//! it with a condvar-timed queue pop; the unit and property tests
//! drive it directly with a `ManualClock`, so deadline behavior is
//! pinned without ever sleeping.
//!
//! Coalescing is transparent by construction: batches are contiguous
//! runs of the request arrival order, and scoring a concatenation of
//! rows through `serve::score_rows` produces, per row, exactly the
//! same probabilities as scoring each request alone (each row's
//! probability is an independent tree walk). The
//! `batcher_transparency` property test pins this bitwise across batch
//! sizes and worker counts.

use std::collections::VecDeque;

/// When to flush a pending micro-batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush as soon as at least this many rows are pending. A single
    /// request larger than the cap still forms one batch — requests
    /// are never split.
    pub max_rows: usize,
    /// Flush at the latest this many milliseconds after the oldest
    /// pending request arrived, even if the batch is small.
    pub max_wait_ms: u64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_rows: 64,
            max_wait_ms: 2,
        }
    }
}

/// One pending item with its bookkeeping.
#[derive(Debug)]
struct Pending<T> {
    item: T,
    rows: usize,
    enqueued_ms: u64,
}

/// The coalescing state machine. `T` is whatever the caller needs to
/// carry per request (the server uses a job with a response slot; the
/// tests use plain row vectors).
#[derive(Debug)]
pub struct BatcherCore<T> {
    policy: BatchPolicy,
    pending: VecDeque<Pending<T>>,
    pending_rows: usize,
}

impl<T> BatcherCore<T> {
    /// An empty batcher under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `policy.max_rows` is zero.
    pub fn new(policy: BatchPolicy) -> BatcherCore<T> {
        assert!(policy.max_rows > 0, "max_rows must be positive");
        BatcherCore {
            policy,
            pending: VecDeque::new(),
            pending_rows: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Appends a request of `rows` rows arriving at `now_ms`.
    pub fn push(&mut self, item: T, rows: usize, now_ms: u64) {
        self.pending.push_back(Pending {
            item,
            rows,
            enqueued_ms: now_ms,
        });
        self.pending_rows += rows;
    }

    /// Pending request count.
    pub fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    /// Pending row count across requests.
    pub fn pending_rows(&self) -> usize {
        self.pending_rows
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The absolute deadline (ms) by which a flush must happen, i.e.
    /// the oldest pending request's arrival plus `max_wait_ms`. `None`
    /// when nothing is pending.
    pub fn deadline_ms(&self) -> Option<u64> {
        self.pending
            .front()
            .map(|p| p.enqueued_ms + self.policy.max_wait_ms)
    }

    /// Whether a batch should flush at `now_ms`: the row threshold is
    /// met, or the oldest request's deadline has passed.
    pub fn due(&self, now_ms: u64) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        self.pending_rows >= self.policy.max_rows || self.deadline_ms().is_some_and(|d| now_ms >= d)
    }

    /// Takes the next batch: requests from the front, in arrival
    /// order, stopping once the running row total reaches `max_rows`.
    /// Always takes at least one request when any is pending, so an
    /// oversized request flushes alone rather than starving.
    pub fn take_batch(&mut self) -> Vec<T> {
        let mut taken = Vec::new();
        let mut rows = 0usize;
        while let Some(front) = self.pending.front() {
            if !taken.is_empty() && rows + front.rows > self.policy.max_rows {
                break;
            }
            let p = self.pending.pop_front().expect("front checked");
            rows += p.rows;
            self.pending_rows -= p.rows;
            taken.push(p.item);
            if rows >= self.policy.max_rows {
                break;
            }
        }
        taken
    }
}

/// Static counter name for a batch of `rows` rows — a power-of-two
/// histogram (`le` = less-or-equal bucket upper bound) rendered under
/// `/metrics` and the run trace.
pub fn batch_size_bucket(rows: usize) -> &'static str {
    match rows {
        0..=1 => "survd.batch_rows_le_1",
        2 => "survd.batch_rows_le_2",
        3..=4 => "survd.batch_rows_le_4",
        5..=8 => "survd.batch_rows_le_8",
        9..=16 => "survd.batch_rows_le_16",
        17..=32 => "survd.batch_rows_le_32",
        33..=64 => "survd.batch_rows_le_64",
        _ => "survd.batch_rows_gt_64",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, ManualClock};

    fn policy(max_rows: usize, max_wait_ms: u64) -> BatchPolicy {
        BatchPolicy {
            max_rows,
            max_wait_ms,
        }
    }

    #[test]
    fn flushes_on_row_threshold() {
        let mut core = BatcherCore::new(policy(8, 100));
        let clock = ManualClock::new();
        core.push("a", 3, clock.now_ms());
        core.push("b", 4, clock.now_ms());
        assert!(!core.due(clock.now_ms()), "7 < 8 rows, fresh");
        core.push("c", 1, clock.now_ms());
        assert!(core.due(clock.now_ms()), "8 rows reached");
        assert_eq!(core.take_batch(), vec!["a", "b", "c"]);
        assert!(core.is_empty());
        assert_eq!(core.pending_rows(), 0);
    }

    #[test]
    fn flushes_on_deadline_without_sleeping() {
        let mut core = BatcherCore::new(policy(64, 5));
        let clock = ManualClock::new();
        core.push("only", 1, clock.now_ms());
        assert_eq!(core.deadline_ms(), Some(5));
        clock.advance_ms(4);
        assert!(!core.due(clock.now_ms()), "deadline not reached");
        clock.advance_ms(1);
        assert!(core.due(clock.now_ms()), "deadline reached");
        assert_eq!(core.take_batch(), vec!["only"]);
    }

    #[test]
    fn deadline_tracks_the_oldest_request() {
        let mut core = BatcherCore::new(policy(64, 10));
        let clock = ManualClock::new();
        core.push("old", 1, clock.now_ms());
        clock.advance_ms(7);
        core.push("new", 1, clock.now_ms());
        // The deadline is the *old* request's, not the newest's.
        assert_eq!(core.deadline_ms(), Some(10));
        clock.advance_ms(3);
        assert!(core.due(clock.now_ms()));
        // Both flush together once due.
        assert_eq!(core.take_batch(), vec!["old", "new"]);
    }

    #[test]
    fn batches_partition_arrival_order() {
        let mut core = BatcherCore::new(policy(4, 100));
        for (name, rows) in [("a", 2), ("b", 2), ("c", 3), ("d", 1), ("e", 1)] {
            core.push(name, rows, 0);
        }
        // a+b reach 4; c would overflow a started batch so it waits.
        assert_eq!(core.take_batch(), vec!["a", "b"]);
        // c alone is 3; d fits (4); e overflows.
        assert_eq!(core.take_batch(), vec!["c", "d"]);
        assert_eq!(core.take_batch(), vec!["e"]);
        assert!(core.take_batch().is_empty());
    }

    #[test]
    fn oversized_request_flushes_alone() {
        let mut core = BatcherCore::new(policy(4, 100));
        core.push("huge", 10, 0);
        core.push("next", 1, 0);
        assert!(core.due(0), "10 >= 4 rows");
        assert_eq!(core.take_batch(), vec!["huge"]);
        assert_eq!(core.take_batch(), vec!["next"]);
    }

    #[test]
    fn batch_size_buckets_are_monotone() {
        assert_eq!(batch_size_bucket(1), "survd.batch_rows_le_1");
        assert_eq!(batch_size_bucket(2), "survd.batch_rows_le_2");
        assert_eq!(batch_size_bucket(8), "survd.batch_rows_le_8");
        assert_eq!(batch_size_bucket(9), "survd.batch_rows_le_16");
        assert_eq!(batch_size_bucket(64), "survd.batch_rows_le_64");
        assert_eq!(batch_size_bucket(65), "survd.batch_rows_gt_64");
    }
}
