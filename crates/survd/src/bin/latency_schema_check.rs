//! `latency-schema-check` — validates the structure of a
//! `latency.json` so producer drift fails the build.
//!
//! ```text
//! cargo run -p survdb-survd --bin latency-schema-check -- [PATH ...]
//! ```
//!
//! Each PATH (default `artifacts/latency.json`) must parse and satisfy
//! the `survdb-latency/v1` schema (see `survd::latency`), including
//! the lifecycle counting identities (one queue-wait/batch-wait/
//! write/total observation per 200 response, one score observation
//! and one drift record per scored row). Exits nonzero on the first
//! violation.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paths = if args.is_empty() {
        vec!["artifacts/latency.json".to_string()]
    } else {
        args
    };

    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                obs::error!("schema-check", "cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = survd::validate_latency(&text) {
            obs::error!("schema-check", "{path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("[schema-check] {path}: valid {}", survd::LATENCY_SCHEMA);
    }
    ExitCode::SUCCESS
}
