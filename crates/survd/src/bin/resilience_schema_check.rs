//! `resilience-schema-check` — validates the structure of a
//! `resilience.json` so producer drift fails the build.
//!
//! ```text
//! cargo run -p survdb-survd --bin resilience-schema-check -- [PATH ...]
//! ```
//!
//! Each PATH (default `artifacts/resilience.json`) must parse and
//! satisfy the `survdb-resilience/v1` schema (see `survd::resilience`),
//! including the per-cell accounting identity and the zero-mismatch
//! invariant. Exits nonzero on the first violation.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paths = if args.is_empty() {
        vec!["artifacts/resilience.json".to_string()]
    } else {
        args
    };

    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                obs::error!("schema-check", "cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = survd::validate_resilience(&text) {
            obs::error!("schema-check", "{path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("[schema-check] {path}: valid {}", survd::RESILIENCE_SCHEMA);
    }
    ExitCode::SUCCESS
}
