//! Deterministic protocol-level chaos: a seeded fault injector for the
//! daemon's *wire* layer, mirroring the class × rate design of
//! `telemetry::faults` one level down the stack.
//!
//! `telemetry::faults` corrupts event *streams* before ingestion; this
//! module corrupts HTTP *exchanges* against a live daemon — partial
//! writes, mid-body disconnects, truncated and oversized frames,
//! garbage framing, stalled reads, malformed JSON. Same discipline:
//!
//! * every fault class has an independent rate in `[0, 1]`;
//! * every decision derives from (seed, request ordinal, class salt)
//!   via splitmix64, so a run is exactly replayable from its seed and
//!   two sweeps with the same plan fault the same requests the same
//!   way;
//! * every class maps to one *expected* server reaction ([`expected`]),
//!   so a harness can assert the daemon refuses each defect with its
//!   typed status instead of panicking, hanging, or misframing.
//!
//! The [`drive`] function is the socket driver: it opens a fresh
//! connection, perpetrates (at most) one fault chosen by the plan, and
//! reports what came back. The chaossweep bench binary and the
//! resilience e2e tests are built on it.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One class of protocol fault the injector can perpetrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChaosClass {
    /// Drip the request out in small, slow chunks. A correct server
    /// tolerates this within its stall budget: expected answer 200.
    SlowLoris,
    /// Close the connection after writing half the body. The server
    /// sees a truncated frame and must not block or panic; the client
    /// never reads a response.
    ResetMidBody,
    /// Declare a full `Content-Length` but send only half the body,
    /// then half-close. Expected answer: 400 (truncated body).
    TruncatedFrame,
    /// Declare a `Content-Length` beyond the server's body limit.
    /// Expected answer: 413, refused before allocation.
    OversizedFrame,
    /// Send printable garbage instead of an HTTP request line.
    /// Expected answer: 400 (bad request line).
    GarbageFrame,
    /// Start the body, then stall silently past the server's
    /// read-stall budget. Expected answer: 408.
    StalledRead,
    /// Frame a valid HTTP request around a body that is not valid
    /// JSON. Expected answer: 400 from request parsing.
    MalformedJson,
}

impl ChaosClass {
    /// Every class, in decision-priority order: when several classes
    /// fire for one ordinal, the first in this list wins.
    pub const ALL: [ChaosClass; 7] = [
        ChaosClass::SlowLoris,
        ChaosClass::ResetMidBody,
        ChaosClass::TruncatedFrame,
        ChaosClass::OversizedFrame,
        ChaosClass::GarbageFrame,
        ChaosClass::StalledRead,
        ChaosClass::MalformedJson,
    ];

    /// Kebab-case name, stable across versions (artifact key).
    pub fn name(self) -> &'static str {
        match self {
            ChaosClass::SlowLoris => "slow-loris",
            ChaosClass::ResetMidBody => "reset-mid-body",
            ChaosClass::TruncatedFrame => "truncated-frame",
            ChaosClass::OversizedFrame => "oversized-frame",
            ChaosClass::GarbageFrame => "garbage-frame",
            ChaosClass::StalledRead => "stalled-read",
            ChaosClass::MalformedJson => "malformed-json",
        }
    }
}

impl std::fmt::Display for ChaosClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-class fault rates plus the seed all decisions derive from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    /// Seed for every injection decision.
    pub seed: u64,
    /// Rate of [`ChaosClass::SlowLoris`].
    pub slow_loris: f64,
    /// Rate of [`ChaosClass::ResetMidBody`].
    pub reset_mid_body: f64,
    /// Rate of [`ChaosClass::TruncatedFrame`].
    pub truncated_frame: f64,
    /// Rate of [`ChaosClass::OversizedFrame`].
    pub oversized_frame: f64,
    /// Rate of [`ChaosClass::GarbageFrame`].
    pub garbage_frame: f64,
    /// Rate of [`ChaosClass::StalledRead`].
    pub stalled_read: f64,
    /// Rate of [`ChaosClass::MalformedJson`].
    pub malformed_json: f64,
}

impl ChaosPlan {
    /// The all-zero plan: no faults, every request sent cleanly.
    pub fn none(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            slow_loris: 0.0,
            reset_mid_body: 0.0,
            truncated_frame: 0.0,
            oversized_frame: 0.0,
            garbage_frame: 0.0,
            stalled_read: 0.0,
            malformed_json: 0.0,
        }
    }

    /// A plan injecting exactly one class at `rate`.
    pub fn single(class: ChaosClass, rate: f64, seed: u64) -> ChaosPlan {
        assert!((0.0..=1.0).contains(&rate), "rate {rate} out of [0, 1]");
        let mut plan = ChaosPlan::none(seed);
        *plan.rate_mut(class) = rate;
        plan
    }

    fn rate_mut(&mut self, class: ChaosClass) -> &mut f64 {
        match class {
            ChaosClass::SlowLoris => &mut self.slow_loris,
            ChaosClass::ResetMidBody => &mut self.reset_mid_body,
            ChaosClass::TruncatedFrame => &mut self.truncated_frame,
            ChaosClass::OversizedFrame => &mut self.oversized_frame,
            ChaosClass::GarbageFrame => &mut self.garbage_frame,
            ChaosClass::StalledRead => &mut self.stalled_read,
            ChaosClass::MalformedJson => &mut self.malformed_json,
        }
    }

    /// The rate configured for `class`.
    pub fn rate(&self, class: ChaosClass) -> f64 {
        match class {
            ChaosClass::SlowLoris => self.slow_loris,
            ChaosClass::ResetMidBody => self.reset_mid_body,
            ChaosClass::TruncatedFrame => self.truncated_frame,
            ChaosClass::OversizedFrame => self.oversized_frame,
            ChaosClass::GarbageFrame => self.garbage_frame,
            ChaosClass::StalledRead => self.stalled_read,
            ChaosClass::MalformedJson => self.malformed_json,
        }
    }

    /// Panics if any rate is outside `[0, 1]`.
    pub fn validate(&self) {
        for class in ChaosClass::ALL {
            let rate = self.rate(class);
            assert!(
                (0.0..=1.0).contains(&rate),
                "{} rate {rate} out of [0, 1]",
                class.name()
            );
        }
    }

    /// The fault (if any) this plan injects into request `ordinal`.
    /// Independent per-class draws; the first firing class in
    /// [`ChaosClass::ALL`] order wins, so a multi-class plan stays
    /// deterministic.
    pub fn action(&self, ordinal: u64) -> Option<ChaosClass> {
        ChaosClass::ALL
            .into_iter()
            .find(|&class| unit(self.seed, ordinal, salt(class)) < self.rate(class))
    }
}

// Per-class decision salts: distinct streams per class so rates stay
// independent (same convention as `telemetry::faults`).
const SALT_SLOW_LORIS: u64 = 0x510F;
const SALT_RESET: u64 = 0x4357;
const SALT_TRUNCATE: u64 = 0x7406;
const SALT_OVERSIZE: u64 = 0x0516;
const SALT_GARBAGE: u64 = 0x6AB1;
const SALT_STALL: u64 = 0x57A1;
const SALT_JSON: u64 = 0x50DA;
// Mechanics salts (split points, chunk counts, garbage bytes).
const SALT_SPLIT: u64 = 0x5217;
const SALT_CHUNKS: u64 = 0xC409;
const SALT_BYTES: u64 = 0x6B17;

fn salt(class: ChaosClass) -> u64 {
    match class {
        ChaosClass::SlowLoris => SALT_SLOW_LORIS,
        ChaosClass::ResetMidBody => SALT_RESET,
        ChaosClass::TruncatedFrame => SALT_TRUNCATE,
        ChaosClass::OversizedFrame => SALT_OVERSIZE,
        ChaosClass::GarbageFrame => SALT_GARBAGE,
        ChaosClass::StalledRead => SALT_STALL,
        ChaosClass::MalformedJson => SALT_JSON,
    }
}

/// splitmix64 finalizer (same constants as `telemetry::faults`).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` keyed by (seed, ordinal, salt).
fn unit(seed: u64, ordinal: u64, salt: u64) -> f64 {
    let h = mix(mix(seed ^ salt).wrapping_add(ordinal));
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A uniform pick in `[0, n)` keyed the same way.
fn pick(seed: u64, ordinal: u64, salt: u64, n: u64) -> u64 {
    mix(mix(seed ^ salt).wrapping_add(ordinal)) % n.max(1)
}

/// Deterministic printable garbage: bytes in `!..=~` excluding space,
/// so the stream parses as a one-token request line (a typed 400),
/// never as whitespace-split valid framing.
pub fn garbage_bytes(seed: u64, ordinal: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| {
            let h = mix(mix(seed ^ SALT_BYTES).wrapping_add(ordinal) ^ (i as u64));
            b'!' + (h % 94) as u8 // 0x21..=0x7E
        })
        .collect()
}

/// What came back from one (possibly faulted) exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// A complete HTTP response.
    Response {
        /// Status code.
        status: u16,
        /// Response body (UTF-8).
        body: String,
    },
    /// The fault made a response impossible by design (the client
    /// closed first); not an error.
    NoResponse,
    /// The transport failed where a response was expected — a harness
    /// failure, never part of the contract.
    Transport(String),
}

/// The server reaction each class contracts for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expect {
    /// A complete response with exactly this status.
    Status(u16),
    /// No response readable by design.
    NoResponse,
}

/// The expected outcome of a clean exchange or each fault class.
/// `None` (a clean request) expects 200 — or 429/503 under load, which
/// the driver does not inject and accounting handles separately.
pub fn expected(class: Option<ChaosClass>) -> Expect {
    match class {
        None | Some(ChaosClass::SlowLoris) => Expect::Status(200),
        Some(ChaosClass::ResetMidBody) => Expect::NoResponse,
        Some(ChaosClass::TruncatedFrame) => Expect::Status(400),
        Some(ChaosClass::OversizedFrame) => Expect::Status(413),
        Some(ChaosClass::GarbageFrame) => Expect::Status(400),
        Some(ChaosClass::StalledRead) => Expect::Status(408),
        Some(ChaosClass::MalformedJson) => Expect::Status(400),
    }
}

/// Drives one exchange against `addr`: picks the plan's fault for
/// `ordinal` (if any), perpetrates it on a fresh connection, and
/// returns the outcome. `body` is the clean request body a non-faulted
/// exchange would POST to `/score`; `oversize_len` is the
/// `Content-Length` an [`ChaosClass::OversizedFrame`] declares (set it
/// above the server's body limit). `read_timeout_ms` bounds how long
/// the driver waits for each read — generous enough to cover the
/// server's stall budget when stalled reads are in the plan.
pub fn drive(
    addr: SocketAddr,
    plan: &ChaosPlan,
    ordinal: u64,
    body: &str,
    oversize_len: usize,
    read_timeout_ms: u64,
) -> Outcome {
    match try_drive(addr, plan, ordinal, body, oversize_len, read_timeout_ms) {
        Ok(outcome) => outcome,
        Err(e) => Outcome::Transport(e.to_string()),
    }
}

fn head_for(body_len: usize) -> String {
    format!(
        "POST /score HTTP/1.1\r\nhost: chaos\r\ncontent-length: {body_len}\r\nconnection: close\r\n\r\n"
    )
}

fn try_drive(
    addr: SocketAddr,
    plan: &ChaosPlan,
    ordinal: u64,
    body: &str,
    oversize_len: usize,
    read_timeout_ms: u64,
) -> io::Result<Outcome> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(read_timeout_ms.max(1))))?;
    let seed = plan.seed;
    match plan.action(ordinal) {
        None => {
            stream.write_all(head_for(body.len()).as_bytes())?;
            stream.write_all(body.as_bytes())?;
            stream.flush()?;
            read_response(&mut stream, read_timeout_ms)
        }
        Some(ChaosClass::SlowLoris) => {
            // Drip the whole exchange out in 2..=8 chunks with short
            // pauses; a correct server waits (within its stall budget)
            // and answers normally.
            let wire = format!("{}{}", head_for(body.len()), body).into_bytes();
            let chunks = 2 + pick(seed, ordinal, SALT_CHUNKS, 7) as usize;
            let step = wire.len().div_ceil(chunks);
            for chunk in wire.chunks(step.max(1)) {
                stream.write_all(chunk)?;
                stream.flush()?;
                std::thread::sleep(Duration::from_millis(1));
            }
            read_response(&mut stream, read_timeout_ms)
        }
        Some(ChaosClass::ResetMidBody) => {
            // Half the body, then a unilateral close. The server must
            // unwind with a typed refusal on its side; the client
            // reads nothing by design.
            let keep = split_point(seed, ordinal, body.len());
            stream.write_all(head_for(body.len()).as_bytes())?;
            stream.write_all(&body.as_bytes()[..keep])?;
            stream.flush()?;
            drop(stream);
            Ok(Outcome::NoResponse)
        }
        Some(ChaosClass::TruncatedFrame) => {
            // Declare everything, deliver half, half-close so the
            // server sees EOF mid-body — then read its 400.
            let keep = split_point(seed, ordinal, body.len());
            stream.write_all(head_for(body.len()).as_bytes())?;
            stream.write_all(&body.as_bytes()[..keep])?;
            stream.flush()?;
            stream.shutdown(Shutdown::Write)?;
            read_response(&mut stream, read_timeout_ms)
        }
        Some(ChaosClass::OversizedFrame) => {
            // A frame the server must refuse before allocating.
            stream.write_all(head_for(oversize_len).as_bytes())?;
            stream.flush()?;
            read_response(&mut stream, read_timeout_ms)
        }
        Some(ChaosClass::GarbageFrame) => {
            let garbage = garbage_bytes(seed, ordinal, 64);
            stream.write_all(&garbage)?;
            stream.write_all(b"\r\n\r\n")?;
            stream.flush()?;
            read_response(&mut stream, read_timeout_ms)
        }
        Some(ChaosClass::StalledRead) => {
            // Start the body, then go silent. The server's stall
            // budget fires a 408; the driver just waits for it.
            let keep = split_point(seed, ordinal, body.len());
            stream.write_all(head_for(body.len()).as_bytes())?;
            stream.write_all(&body.as_bytes()[..keep])?;
            stream.flush()?;
            read_response(&mut stream, read_timeout_ms)
        }
        Some(ChaosClass::MalformedJson) => {
            let bad = "{\"rows\": nonsense}";
            stream.write_all(head_for(bad.len()).as_bytes())?;
            stream.write_all(bad.as_bytes())?;
            stream.flush()?;
            read_response(&mut stream, read_timeout_ms)
        }
    }
}

/// A deterministic cut strictly inside `len` (at least 1 byte kept,
/// at least 1 byte withheld). Bodies of < 2 bytes cut at 1.
fn split_point(seed: u64, ordinal: u64, len: usize) -> usize {
    if len < 2 {
        return len.min(1);
    }
    1 + pick(seed, ordinal, SALT_SPLIT, (len - 1) as u64) as usize
}

/// Reads one `Content-Length`-framed HTTP response, retrying through
/// socket read timeouts until `deadline_ms` has elapsed in total.
fn read_response(stream: &mut TcpStream, deadline_ms: u64) -> io::Result<Outcome> {
    let started = Instant::now();
    let deadline = Duration::from_millis(deadline_ms.max(1));
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    // Accumulate until the header terminator, then until the body is
    // complete. Peer close before a full status line is a transport
    // error (the contract promises a readable response here).
    loop {
        let head_end = find_head_end(&raw);
        if let Some(end) = head_end {
            let (status, content_length) = parse_head(&raw[..end])?;
            let body_start = end + 4;
            if raw.len() >= body_start + content_length {
                let body = String::from_utf8_lossy(&raw[body_start..body_start + content_length])
                    .into_owned();
                return Ok(Outcome::Response { status, body });
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed before a complete response",
                ))
            }
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if started.elapsed() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "no complete response within the read deadline",
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn find_head_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_head(head: &[u8]) -> io::Result<(u16, usize)> {
    let text = std::str::from_utf8(head)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response head"))?;
    let mut lines = text.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line {status_line:?}"),
            )
        })?;
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad response content-length")
                })?;
            }
        }
    }
    Ok((status, content_length))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_never_faults() {
        let plan = ChaosPlan::none(7);
        plan.validate();
        assert!((0..2000).all(|i| plan.action(i).is_none()));
    }

    #[test]
    fn full_rate_single_class_always_fires() {
        for class in ChaosClass::ALL {
            let plan = ChaosPlan::single(class, 1.0, 11);
            assert!((0..200).all(|i| plan.action(i) == Some(class)), "{class}");
        }
    }

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        let plan = ChaosPlan {
            slow_loris: 0.2,
            truncated_frame: 0.2,
            malformed_json: 0.2,
            ..ChaosPlan::none(42)
        };
        let a: Vec<_> = (0..500).map(|i| plan.action(i)).collect();
        let b: Vec<_> = (0..500).map(|i| plan.action(i)).collect();
        assert_eq!(a, b);
        // A different seed decides differently somewhere.
        let other = ChaosPlan { seed: 43, ..plan };
        let c: Vec<_> = (0..500).map(|i| other.action(i)).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn rates_approximate_frequencies() {
        let plan = ChaosPlan::single(ChaosClass::GarbageFrame, 0.3, 5);
        let hits = (0..10_000).filter(|&i| plan.action(i).is_some()).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "observed {rate}");
    }

    #[test]
    fn class_priority_follows_all_order() {
        // Both classes at rate 1.0: the earlier one in ALL wins.
        let mut plan = ChaosPlan::none(1);
        plan.slow_loris = 1.0;
        plan.malformed_json = 1.0;
        assert_eq!(plan.action(0), Some(ChaosClass::SlowLoris));
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn validate_rejects_bad_rate() {
        let mut plan = ChaosPlan::none(1);
        plan.garbage_frame = 1.5;
        plan.validate();
    }

    #[test]
    fn garbage_is_printable_and_deterministic() {
        let a = garbage_bytes(9, 3, 64);
        let b = garbage_bytes(9, 3, 64);
        assert_eq!(a, b);
        assert!(a.iter().all(|&b| (0x21..=0x7E).contains(&b)));
        assert_ne!(a, garbage_bytes(9, 4, 64));
    }

    #[test]
    fn split_points_stay_strictly_inside() {
        for len in 2..64 {
            for ordinal in 0..32 {
                let cut = split_point(77, ordinal, len);
                assert!(cut >= 1 && cut < len, "len {len} cut {cut}");
            }
        }
    }

    #[test]
    fn names_are_kebab_case_and_unique() {
        let names: Vec<_> = ChaosClass::ALL.iter().map(|c| c.name()).collect();
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
        for name in names {
            assert!(name.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }

    #[test]
    fn expectations_cover_every_class() {
        assert_eq!(expected(None), Expect::Status(200));
        for class in ChaosClass::ALL {
            // Every class has a contracted reaction; none panic.
            let _ = expected(Some(class));
        }
        assert_eq!(expected(Some(ChaosClass::ResetMidBody)), Expect::NoResponse);
        assert_eq!(
            expected(Some(ChaosClass::OversizedFrame)),
            Expect::Status(413)
        );
    }
}
