//! A minimal HTTP/1.1 client for the daemon's loopback consumers: the
//! `loadgen` binary and the serving end-to-end tests.
//!
//! Same dependency policy as the server side — hand-rolled over
//! `std::net::TcpStream`, `Content-Length` framing only, keep-alive by
//! default. One request at a time per connection (closed loop), which
//! is exactly the shape the load generator drives.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Headers in arrival order; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Body bytes (exactly `Content-Length` of them).
    pub body: Vec<u8>,
}

impl Response {
    /// First value of a (lowercase) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn text(&self) -> Result<&str, std::str::Utf8Error> {
        std::str::from_utf8(&self.body)
    }
}

/// A keep-alive connection to the daemon.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to `addr`. `timeout` bounds each read so a wedged
    /// server surfaces as an error instead of a hang (`None` = block
    /// forever).
    pub fn connect(addr: impl ToSocketAddrs, timeout: Option<Duration>) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(timeout)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Sends one request and reads the full response.
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: survd\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body)?;
        self.writer.flush()?;
        self.read_response()
    }

    /// `POST /score` with a JSON body.
    pub fn score(&mut self, body: &str) -> io::Result<Response> {
        self.request("POST", "/score", body.as_bytes())
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut raw = Vec::new();
        loop {
            let before = raw.len();
            match self.reader.read_until(b'\n', &mut raw) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-response",
                    ))
                }
                Ok(_) if raw.last() == Some(&b'\n') => break,
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    raw.truncate(before);
                }
                Err(e) => return Err(e),
            }
        }
        while matches!(raw.last(), Some(b'\n' | b'\r')) {
            raw.pop();
        }
        String::from_utf8(raw)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response header"))
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let status_line = self.read_line()?;
        let mut parts = status_line.splitn(3, ' ');
        let status = match (parts.next(), parts.next()) {
            (Some(version), Some(code)) if version.starts_with("HTTP/1.") => code
                .parse::<u16>()
                .map_err(|_| bad_data(format!("bad status line {status_line:?}")))?,
            _ => return Err(bad_data(format!("bad status line {status_line:?}"))),
        };

        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                return Err(bad_data(format!("bad header line {line:?}")));
            };
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }

        let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
            None => 0,
            Some((_, v)) => v
                .parse::<usize>()
                .map_err(|_| bad_data(format!("bad content-length {v:?}")))?,
        };
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(Response {
            status,
            headers,
            body,
        })
    }
}

fn bad_data(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// One-shot server: accepts a single connection, reads until the
    /// blank line (+ content-length body), answers with `canned`.
    fn one_shot_server(canned: &'static str) -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let request =
                crate::http::read_request(&mut reader, &crate::http::HttpLimits::default())
                    .expect("request");
            assert_eq!(request.method, "POST");
            let mut stream = stream;
            stream.write_all(canned.as_bytes()).expect("write");
        });
        addr
    }

    #[test]
    fn parses_status_headers_and_body() {
        let addr = one_shot_server(
            "HTTP/1.1 429 Too Many Requests\r\nretry-after: 1\r\ncontent-length: 5\r\n\r\nhello",
        );
        let mut client = Client::connect(addr, Some(Duration::from_secs(5))).expect("connect");
        let response = client.request("POST", "/score", b"{}").expect("response");
        assert_eq!(response.status, 429);
        assert_eq!(response.header("retry-after"), Some("1"));
        assert_eq!(response.text().unwrap(), "hello");
    }

    #[test]
    fn missing_content_length_means_empty_body() {
        let addr = one_shot_server("HTTP/1.1 200 OK\r\n\r\n");
        let mut client = Client::connect(addr, Some(Duration::from_secs(5))).expect("connect");
        let response = client.request("POST", "/x", b"").expect("response");
        assert_eq!(response.status, 200);
        assert!(response.body.is_empty());
    }

    #[test]
    fn garbage_status_line_is_invalid_data() {
        let addr = one_shot_server("SPDY nonsense\r\n\r\n");
        let mut client = Client::connect(addr, Some(Duration::from_secs(5))).expect("connect");
        let err = client.request("POST", "/x", b"").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
