//! Millisecond clocks for the micro-batcher.
//!
//! Batching deadlines ("flush after at most `max_wait_ms`") must be
//! unit-testable without sleeping, so the batcher never reads wall
//! time directly — it consults a [`Clock`]. Production uses
//! [`SystemClock`] (monotonic, `std::time::Instant`-backed); tests use
//! [`ManualClock`], which only moves when advanced and interoperates
//! with the `simtime` civil-time substrate so deadlines can be
//! expressed against the same timestamps the fleet simulator uses.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic millisecond clock.
pub trait Clock: Send + Sync {
    /// Milliseconds since the clock's epoch. Must be monotone
    /// non-decreasing.
    fn now_ms(&self) -> u64;
}

/// Wall clock: milliseconds since construction, via
/// `std::time::Instant` (monotonic, immune to wall-clock steps).
pub struct SystemClock {
    start: Instant,
}

impl SystemClock {
    /// A clock whose epoch is now.
    pub fn new() -> SystemClock {
        SystemClock {
            start: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }
}

/// A clock that only moves when told to — deterministic deadline tests
/// never sleep.
pub struct ManualClock {
    now_ms: AtomicU64,
}

impl ManualClock {
    /// A manual clock at millisecond 0.
    pub fn new() -> ManualClock {
        ManualClock {
            now_ms: AtomicU64::new(0),
        }
    }

    /// A manual clock whose epoch is a `simtime` civil timestamp
    /// (millisecond 0 = `at`), so tests can phrase serving deadlines in
    /// the simulator's time base.
    pub fn starting_at(at: simtime::Timestamp) -> ManualClock {
        // The absolute origin is irrelevant to deadline arithmetic;
        // anchoring at the timestamp's epoch seconds keeps readouts
        // convertible back via `timestamp_at`.
        ManualClock {
            now_ms: AtomicU64::new((at.epoch_seconds().max(0) as u64) * 1000),
        }
    }

    /// Advances the clock by `ms` milliseconds.
    pub fn advance_ms(&self, ms: u64) {
        self.now_ms.fetch_add(ms, Ordering::SeqCst);
    }

    /// Advances the clock by a `simtime` duration (negative spans are
    /// ignored — the clock is monotone).
    pub fn advance(&self, d: simtime::Duration) {
        let seconds = d.as_seconds();
        if seconds > 0 {
            self.advance_ms(seconds as u64 * 1000);
        }
    }

    /// The current reading as a civil timestamp (second resolution).
    pub fn timestamp_at(&self) -> simtime::Timestamp {
        simtime::Timestamp::from_epoch_seconds((self.now_ms() / 1000) as i64)
    }
}

impl Default for ManualClock {
    fn default() -> Self {
        ManualClock::new()
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.now_ms.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_when_advanced() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_ms(), 0);
        clock.advance_ms(7);
        clock.advance_ms(3);
        assert_eq!(clock.now_ms(), 10);
    }

    #[test]
    fn manual_clock_speaks_simtime() {
        let start = simtime::Timestamp::from_ymd_hms(2017, 7, 4, 9, 30, 0);
        let clock = ManualClock::starting_at(start);
        assert_eq!(clock.timestamp_at(), start);
        clock.advance(simtime::Duration::minutes(2));
        assert_eq!(clock.timestamp_at(), start + simtime::Duration::minutes(2));
        clock.advance(simtime::Duration::seconds(-5)); // ignored: monotone
        assert_eq!(clock.timestamp_at(), start + simtime::Duration::minutes(2));
    }

    #[test]
    fn system_clock_is_monotone() {
        let clock = SystemClock::new();
        let a = clock.now_ms();
        let b = clock.now_ms();
        assert!(b >= a);
    }
}
