//! A minimal HTTP/1.1 server protocol: request reading and response
//! writing over any `Read`/`Write` pair.
//!
//! Hand-rolled on purpose (dependency policy: std only). Supports
//! exactly what the daemon needs: request line + headers +
//! `Content-Length` bodies, keep-alive with `Connection: close`
//! opt-out, and bounded header/body sizes so a misbehaving client
//! cannot balloon memory. No chunked transfer encoding, no pipelining
//! guarantees beyond strict request-at-a-time processing.

use std::io::{self, BufRead, Write};

/// Size bounds applied while reading a request.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Maximum bytes across the request line and all header lines.
    pub max_head_bytes: usize,
    /// Maximum `Content-Length` accepted.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path + optional query), verbatim.
    pub path: String,
    /// Headers in arrival order; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a (lowercase) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Clean EOF before any request byte — the peer closed a
    /// keep-alive connection between requests.
    Closed,
    /// The socket read timed out before any request byte arrived (an
    /// idle keep-alive connection); safe to retry or close.
    IdleTimeout,
    /// Malformed or over-limit request; the caller should answer 400
    /// and close.
    Malformed(String),
    /// Transport failure mid-request.
    Io(io::Error),
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one CRLF- (or bare-LF-) terminated line, retrying through
/// read timeouts once any byte of the line has arrived.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<String, ReadError> {
    let mut raw = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut raw) {
            Ok(0) => {
                if raw.is_empty() {
                    return Err(ReadError::Closed);
                }
                return Err(ReadError::Malformed("truncated line".to_string()));
            }
            Ok(_) => {
                if raw.last() == Some(&b'\n') {
                    break;
                }
                // Short read without a terminator (can happen at buffer
                // boundaries); keep reading.
            }
            Err(e) if is_timeout(&e) => {
                if raw.is_empty() {
                    return Err(ReadError::IdleTimeout);
                }
                // Mid-line timeout: the request has started, keep
                // waiting for the rest.
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ReadError::Io(e)),
        }
        if raw.len() > *budget {
            return Err(ReadError::Malformed("header section too large".to_string()));
        }
    }
    if raw.len() > *budget {
        return Err(ReadError::Malformed("header section too large".to_string()));
    }
    *budget -= raw.len();
    while matches!(raw.last(), Some(b'\n' | b'\r')) {
        raw.pop();
    }
    String::from_utf8(raw).map_err(|_| ReadError::Malformed("non-UTF-8 header".to_string()))
}

/// Reads one full request (blocking until the body is complete).
///
/// Timeouts configured on the underlying stream surface as
/// [`ReadError::IdleTimeout`] only when no byte of the request has
/// arrived yet; once a request has started, reading retries through
/// timeouts so a slow client cannot corrupt framing.
pub fn read_request(reader: &mut impl BufRead, limits: &HttpLimits) -> Result<Request, ReadError> {
    let mut budget = limits.max_head_bytes;
    let request_line = read_line(reader, &mut budget)?;
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if parts.next().is_none() => (m.to_string(), p.to_string(), v),
        _ => {
            return Err(ReadError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!("bad version {version:?}")));
    }

    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader, &mut budget) {
            Ok(line) => line,
            Err(ReadError::Closed | ReadError::IdleTimeout) => {
                return Err(ReadError::Malformed("truncated headers".to_string()))
            }
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ReadError::Malformed(format!("bad content-length {v:?}")))?,
    };
    if content_length > limits.max_body_bytes {
        return Err(ReadError::Malformed(format!(
            "body of {content_length} bytes exceeds the {}-byte limit",
            limits.max_body_bytes
        )));
    }

    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < content_length {
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Err(ReadError::Malformed("truncated body".to_string())),
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ReadError::Io(e)),
        }
    }

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// The standard reason phrase for the status codes the daemon emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes one response with `Content-Length` framing. `extra_headers`
/// are emitted verbatim after the standard ones.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n",
        status_reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(if close {
        "connection: close\r\n\r\n"
    } else {
        "connection: keep-alive\r\n\r\n"
    });
    writer.write_all(head.as_bytes())?;
    writer.write_all(body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Cursor};

    fn read(text: &str) -> Result<Request, ReadError> {
        read_request(
            &mut BufReader::new(Cursor::new(text.as_bytes().to_vec())),
            &HttpLimits::default(),
        )
    }

    #[test]
    fn parses_post_with_body() {
        let r =
            read("POST /score HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"extra-ignored")
                .expect("parses");
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/score");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.body, b"{\"a\"");
        assert!(!r.wants_close());
    }

    #[test]
    fn parses_get_without_body_and_connection_close() {
        let r = read("GET /healthz HTTP/1.1\r\nConnection: Close\r\n\r\n").expect("parses");
        assert_eq!(r.method, "GET");
        assert!(r.body.is_empty());
        assert!(r.wants_close());
    }

    #[test]
    fn sequential_requests_on_one_connection() {
        let text = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(Cursor::new(text.as_bytes().to_vec()));
        let limits = HttpLimits::default();
        assert_eq!(read_request(&mut reader, &limits).unwrap().path, "/a");
        assert_eq!(read_request(&mut reader, &limits).unwrap().path, "/b");
        assert!(matches!(
            read_request(&mut reader, &limits),
            Err(ReadError::Closed)
        ));
    }

    #[test]
    fn rejects_malformed_and_oversized() {
        assert!(matches!(
            read("NONSENSE\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            read("GET /x SPDY/9\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            read("GET /x HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            read("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        // Body larger than the limit is refused before allocation.
        let huge = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(matches!(read(&huge), Err(ReadError::Malformed(_))));
        // Header section over budget.
        let long = format!("GET /x HTTP/1.1\r\nh: {}\r\n\r\n", "v".repeat(9000));
        assert!(matches!(read(&long), Err(ReadError::Malformed(_))));
        // Truncated body.
        assert!(matches!(
            read("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn response_is_framed_with_content_length() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            "application/json",
            &[("retry-after", "1".to_string())],
            b"{\"error\": \"shed\"}",
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("content-length: 17\r\n"), "{text}");
        assert!(text.contains("retry-after: 1\r\n"), "{text}");
        assert!(
            text.contains("connection: keep-alive\r\n\r\n{\"error\": \"shed\"}"),
            "{text}"
        );
    }
}
