//! A minimal HTTP/1.1 server protocol: request reading and response
//! writing over any `Read`/`Write` pair.
//!
//! Hand-rolled on purpose (dependency policy: std only). Supports
//! exactly what the daemon needs: request line + headers +
//! `Content-Length` bodies, keep-alive with `Connection: close`
//! opt-out, and bounded header/body sizes so a misbehaving client
//! cannot balloon memory. No chunked transfer encoding (a
//! `Transfer-Encoding` other than `identity` is refused with 501), no
//! pipelining guarantees beyond strict request-at-a-time processing.
//!
//! Every refusal carries the status code the daemon should answer
//! with, so protocol defects map to *typed* responses instead of a
//! catch-all 400: over-budget header blocks are 431, oversized bodies
//! 413, unimplemented transfer codings 501, and a request that starts
//! but then stalls past the read-stall budget is 408. The chaos
//! harness ([`crate::chaos`]) drives each of these classes
//! deliberately and asserts the mapping.

use std::io::{self, BufRead, Write};

/// Size bounds applied while reading a request.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Maximum bytes across the request line and all header lines.
    pub max_head_bytes: usize,
    /// Maximum `Content-Length` accepted.
    pub max_body_bytes: usize,
    /// Maximum socket read timeouts tolerated *after* a request has
    /// started arriving (mid-line or mid-body). Each stall lasts one
    /// idle-timeout tick, so this bounds how long a slow-loris client
    /// can hold a worker: past the budget the read fails with a typed
    /// 408. Stalls *between* requests are ordinary keep-alive idling
    /// and are not counted.
    pub max_stall_reads: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            max_stall_reads: 50,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path + optional query), verbatim.
    pub path: String,
    /// Headers in arrival order; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a (lowercase) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Clean EOF before any request byte — the peer closed a
    /// keep-alive connection between requests.
    Closed,
    /// The socket read timed out before any request byte arrived (an
    /// idle keep-alive connection); safe to retry or close.
    IdleTimeout,
    /// Malformed or over-limit request; the caller should answer
    /// `status` and close. The status encodes the defect class: 400
    /// for framing garbage, 408 for a stalled transfer, 413 for an
    /// oversized body, 431 for an over-budget header block, 501 for
    /// an unimplemented transfer coding.
    Malformed {
        /// Response status the daemon should refuse with.
        status: u16,
        /// Human-readable defect description (becomes the error body).
        message: String,
    },
    /// Transport failure mid-request.
    Io(io::Error),
}

fn malformed(status: u16, message: impl Into<String>) -> ReadError {
    ReadError::Malformed {
        status,
        message: message.into(),
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one CRLF- (or bare-LF-) terminated line, retrying through
/// read timeouts once any byte of the line has arrived. `stalls`
/// accumulates mid-request timeouts across the whole request; past
/// `limits.max_stall_reads` the read fails with a typed 408.
fn read_line(
    reader: &mut impl BufRead,
    budget: &mut usize,
    stalls: &mut usize,
    limits: &HttpLimits,
    started: bool,
) -> Result<String, ReadError> {
    let mut raw = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut raw) {
            Ok(0) => {
                if raw.is_empty() {
                    return Err(ReadError::Closed);
                }
                return Err(malformed(400, "truncated line"));
            }
            Ok(_) => {
                if raw.last() == Some(&b'\n') {
                    break;
                }
                // Short read without a terminator (can happen at buffer
                // boundaries); keep reading.
            }
            Err(e) if is_timeout(&e) => {
                if raw.is_empty() && !started {
                    return Err(ReadError::IdleTimeout);
                }
                // Mid-request timeout: the request has started; wait
                // for the rest, but only within the stall budget.
                *stalls += 1;
                if *stalls > limits.max_stall_reads {
                    return Err(malformed(408, "request stalled past the read-stall budget"));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ReadError::Io(e)),
        }
        if raw.len() > *budget {
            return Err(malformed(431, "header section too large"));
        }
    }
    if raw.len() > *budget {
        return Err(malformed(431, "header section too large"));
    }
    *budget -= raw.len();
    while matches!(raw.last(), Some(b'\n' | b'\r')) {
        raw.pop();
    }
    String::from_utf8(raw).map_err(|_| malformed(400, "non-UTF-8 header"))
}

/// Reads one full request (blocking until the body is complete).
///
/// Timeouts configured on the underlying stream surface as
/// [`ReadError::IdleTimeout`] only when no byte of the request has
/// arrived yet; once a request has started, reading retries through
/// timeouts up to `limits.max_stall_reads` and then refuses with a
/// typed 408, so a slow client can neither corrupt framing nor hold a
/// worker forever.
pub fn read_request(reader: &mut impl BufRead, limits: &HttpLimits) -> Result<Request, ReadError> {
    let mut budget = limits.max_head_bytes;
    let mut stalls = 0usize;
    let request_line = read_line(reader, &mut budget, &mut stalls, limits, false)?;
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if parts.next().is_none() => (m.to_string(), p.to_string(), v),
        _ => return Err(malformed(400, format!("bad request line {request_line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(malformed(400, format!("bad version {version:?}")));
    }

    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader, &mut budget, &mut stalls, limits, true) {
            Ok(line) => line,
            Err(ReadError::Closed | ReadError::IdleTimeout) => {
                return Err(malformed(400, "truncated headers"))
            }
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(malformed(400, format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // No chunked (or other) transfer codings: refuse with 501 rather
    // than misinterpreting the body under Content-Length framing.
    if let Some((_, coding)) = headers.iter().find(|(k, _)| k == "transfer-encoding") {
        if !coding.eq_ignore_ascii_case("identity") {
            return Err(malformed(
                501,
                format!("transfer-encoding {coding:?} not implemented"),
            ));
        }
    }

    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| malformed(400, format!("bad content-length {v:?}")))?,
    };
    if content_length > limits.max_body_bytes {
        return Err(malformed(
            413,
            format!(
                "body of {content_length} bytes exceeds the {}-byte limit",
                limits.max_body_bytes
            ),
        ));
    }

    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < content_length {
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Err(malformed(400, "truncated body")),
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > limits.max_stall_reads {
                    return Err(malformed(408, "request stalled past the read-stall budget"));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ReadError::Io(e)),
        }
    }

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// The standard reason phrase for the status codes the daemon emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes one response with `Content-Length` framing. `extra_headers`
/// are emitted verbatim after the standard ones.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n",
        status_reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(if close {
        "connection: close\r\n\r\n"
    } else {
        "connection: keep-alive\r\n\r\n"
    });
    writer.write_all(head.as_bytes())?;
    writer.write_all(body)?;
    writer.flush()
}

/// Seconds a pushed-back client should wait before retrying. One
/// value for every push-back path — 429 admission shedding and 503
/// deadline degradation both tell clients the same thing, so retry
/// loops need no per-status parsing.
pub const RETRY_AFTER_SECONDS: &str = "1";

/// Writes a push-back response (429 shed, 503 degraded/unavailable)
/// carrying the shared `retry-after` header plus any `extra_headers`.
/// Centralizing the header here keeps the emitted bytes identical
/// across every push-back path — pinned by a regression test below.
pub fn write_retry_response(
    writer: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    let mut headers = vec![("retry-after", RETRY_AFTER_SECONDS.to_string())];
    headers.extend(extra_headers.iter().map(|(k, v)| (*k, v.clone())));
    write_response(writer, status, "application/json", &headers, body, close)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Cursor};

    fn read(text: &str) -> Result<Request, ReadError> {
        read_request(
            &mut BufReader::new(Cursor::new(text.as_bytes().to_vec())),
            &HttpLimits::default(),
        )
    }

    /// The refusal status a malformed read carries, for assertions.
    fn refused(result: Result<Request, ReadError>) -> u16 {
        match result {
            Err(ReadError::Malformed { status, .. }) => status,
            other => panic!("expected a malformed refusal, got {other:?}"),
        }
    }

    #[test]
    fn parses_post_with_body() {
        let r =
            read("POST /score HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"extra-ignored")
                .expect("parses");
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/score");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.body, b"{\"a\"");
        assert!(!r.wants_close());
    }

    #[test]
    fn parses_get_without_body_and_connection_close() {
        let r = read("GET /healthz HTTP/1.1\r\nConnection: Close\r\n\r\n").expect("parses");
        assert_eq!(r.method, "GET");
        assert!(r.body.is_empty());
        assert!(r.wants_close());
    }

    #[test]
    fn sequential_requests_on_one_connection() {
        let text = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(Cursor::new(text.as_bytes().to_vec()));
        let limits = HttpLimits::default();
        assert_eq!(read_request(&mut reader, &limits).unwrap().path, "/a");
        assert_eq!(read_request(&mut reader, &limits).unwrap().path, "/b");
        assert!(matches!(
            read_request(&mut reader, &limits),
            Err(ReadError::Closed)
        ));
    }

    #[test]
    fn rejects_malformed_with_typed_statuses() {
        assert_eq!(refused(read("NONSENSE\r\n\r\n")), 400);
        assert_eq!(refused(read("GET /x SPDY/9\r\n\r\n")), 400);
        assert_eq!(
            refused(read("GET /x HTTP/1.1\r\nbroken header\r\n\r\n")),
            400
        );
        assert_eq!(
            refused(read("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n")),
            400
        );
        // Body larger than the limit is refused before allocation,
        // with the payload-specific status.
        let huge = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert_eq!(refused(read(&huge)), 413);
        // Header section over budget is the header-specific status.
        let long = format!("GET /x HTTP/1.1\r\nh: {}\r\n\r\n", "v".repeat(9000));
        assert_eq!(refused(read(&long)), 431);
        // Truncated body.
        assert_eq!(
            refused(read("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")),
            400
        );
    }

    #[test]
    fn unknown_transfer_encoding_is_501() {
        assert_eq!(
            refused(read(
                "POST /score HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            )),
            501
        );
        assert_eq!(
            refused(read(
                "POST /score HTTP/1.1\r\nTransfer-Encoding: gzip, chunked\r\n\r\n"
            )),
            501
        );
        // `identity` is a no-op coding; Content-Length framing applies.
        let r = read(
            "POST /score HTTP/1.1\r\nTransfer-Encoding: identity\r\nContent-Length: 2\r\n\r\nok",
        )
        .expect("identity coding accepted");
        assert_eq!(r.body, b"ok");
    }

    #[test]
    fn oversized_headers_then_fresh_request_on_one_connection() {
        // One keep-alive byte stream: the 431 refusal must not
        // misparse the *next* request on the wire (the daemon closes
        // after refusing, but the reader itself stays consistent).
        let long = format!(
            "GET /a HTTP/1.1\r\nh: {}\r\n\r\nGET /b HTTP/1.1\r\n\r\n",
            "v".repeat(9000)
        );
        let mut reader = BufReader::new(Cursor::new(long.into_bytes()));
        let limits = HttpLimits::default();
        assert_eq!(refused(read_request(&mut reader, &limits)), 431);
    }

    #[test]
    fn response_is_framed_with_content_length() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            "application/json",
            &[("retry-after", "1".to_string())],
            b"{\"error\": \"shed\"}",
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("content-length: 17\r\n"), "{text}");
        assert!(text.contains("retry-after: 1\r\n"), "{text}");
        assert!(
            text.contains("connection: keep-alive\r\n\r\n{\"error\": \"shed\"}"),
            "{text}"
        );
    }

    #[test]
    fn push_back_paths_emit_identical_retry_after_bytes() {
        // The 429 (shed) and 503 (degraded) responses must carry the
        // exact same deterministic header block apart from the status
        // line — clients implement one retry loop for both.
        let render = |status: u16| {
            let mut out = Vec::new();
            write_retry_response(&mut out, status, &[], b"{}", false).unwrap();
            String::from_utf8(out).unwrap()
        };
        let shed = render(429);
        let degraded = render(503);
        let strip_status = |text: &str| {
            let (status_line, rest) = text.split_once("\r\n").expect("status line");
            assert!(status_line.starts_with("HTTP/1.1 "), "{status_line}");
            rest.to_string()
        };
        assert_eq!(strip_status(&shed), strip_status(&degraded));
        assert!(shed.contains("retry-after: 1\r\n"), "{shed}");
        // Deterministic: repeated renders are byte-identical.
        assert_eq!(shed, render(429));
        assert_eq!(degraded, render(503));
        // Extra headers come after the shared retry-after header.
        let mut out = Vec::new();
        write_retry_response(
            &mut out,
            503,
            &[("x-trace-id", "00000000deadbeef".to_string())],
            b"{}",
            true,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let retry = text.find("retry-after: 1\r\n").expect("retry-after");
        let trace = text
            .find("x-trace-id: 00000000deadbeef\r\n")
            .expect("trace");
        assert!(retry < trace, "{text}");
        assert!(text.contains("connection: close\r\n\r\n{}"), "{text}");
    }

    #[test]
    fn refusal_statuses_have_reason_phrases() {
        for status in [400, 408, 413, 422, 429, 431, 501, 503] {
            assert_ne!(
                status_reason(status),
                "Internal Server Error",
                "status {status} must carry its own reason phrase"
            );
        }
    }
}
