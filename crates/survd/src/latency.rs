//! The serving-latency artifact: `artifacts/latency.json`.
//!
//! Layout (schema `survdb-latency/v1`), mirroring the run-trace and
//! serving-artifact two-section convention:
//!
//! ```text
//! {
//!   "schema": "survdb-latency/v1",
//!   "binary": "<emitting binary>",
//!   "deterministic": {          // identical across runs & worker counts
//!     "config": { "connections", "rows_per_request" },
//!     "sketch": { "buckets", "min_exponent", "max_exponent" },
//!     "stages": { "queue_wait" | "batch_wait" | "score"
//!                 | "write" | "total": { "observations" } },
//!     "drift":  { "reference": [10 × u64], "live": [10 × u64],
//!                 "scored", "divergence" },
//!     "counts": { "requests_sent", "responses_ok", "rows_scored" }
//!   },
//!   "nondeterministic": {       // wall-clock stage timings
//!     "config": { "workers", "queue_capacity",
//!                 "batch_max_rows", "batch_max_wait_ms" },
//!     "server_stages_ms": { "<stage>": { "buckets": [[i, count], ...],
//!                                        "p50", "p95", "p99" } },
//!     "client_latency_ms": { "p50", "p95", "p99", "max", "mean" }
//!   }
//! }
//! ```
//!
//! The split leans on the sketch determinism contract
//! ([`obs::sketch`]): which bucket an observation lands in is
//! wall-clock, but *how many* observations each stage records is a
//! pure function of the request stream — one `queue_wait`/
//! `batch_wait`/`write`/`total` observation per 200 response, one
//! `score` observation per scored row. Those counts, the drift
//! histograms (every scored probability is a pure function of
//! model × row), and the TV-divergence over them are deterministic;
//! bucketed timing values and quantile estimates live only under
//! `nondeterministic`. Worker/queue/batch knobs are *excluded* from
//! the deterministic config on purpose: the deterministic section
//! must be byte-identical between a 1-worker and an 8-worker daemon.
//!
//! Schema evolution follows the workspace rule (DESIGN.md §14): any
//! key addition, removal, or reorder bumps the `/v1` suffix; the
//! validator pins exact key order so a drifting producer fails the
//! `latency-schema-check` CI step instead of shipping silently.

use crate::server::ServerConfig;
use obs::jsonv::{self, JsonV};
use obs::sketch::{Sketch, SKETCH_BUCKETS, SKETCH_MAX_EXP, SKETCH_MIN_EXP};
use obs::{DriftSnapshot, DRIFT_BUCKETS};
use std::io;
use std::path::{Path, PathBuf};

/// Schema identifier for `latency.json`.
pub const LATENCY_SCHEMA: &str = "survdb-latency/v1";

/// File name the artifact is written under.
pub const LATENCY_FILE: &str = "latency.json";

/// Sketch feeding the queue-wait stage (admission push → batcher pop).
pub const STAGE_QUEUE_WAIT: &str = "survd.stage.queue_wait_ms";
/// Sketch feeding the batch-wait stage (batcher pop → flush start).
pub const STAGE_BATCH_WAIT: &str = "survd.stage.batch_wait_ms";
/// Sketch feeding the score stage (per-row share of kernel time).
pub const STAGE_SCORE: &str = "survd.stage.score_ms";
/// Sketch feeding the write stage (reply received → response written).
pub const STAGE_WRITE: &str = "survd.stage.write_ms";
/// Sketch feeding the total stage (admission → response written).
pub const STAGE_TOTAL: &str = "survd.stage.total_ms";

/// Lifecycle stages instrumented per request.
pub const STAGE_COUNT: usize = 5;

/// Stage keys in artifact order.
pub const STAGE_NAMES: [&str; STAGE_COUNT] =
    ["queue_wait", "batch_wait", "score", "write", "total"];

/// Registry sketch name for each stage, in [`STAGE_NAMES`] order.
pub const STAGE_SKETCHES: [&str; STAGE_COUNT] = [
    STAGE_QUEUE_WAIT,
    STAGE_BATCH_WAIT,
    STAGE_SCORE,
    STAGE_WRITE,
    STAGE_TOTAL,
];

/// The load-run shape and deterministic outcome counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyRun {
    /// Closed-loop client connections (the daemon's accepted-connection
    /// count when self-reporting).
    pub connections: u64,
    /// Feature rows per request; 0 when requests vary (daemon
    /// self-report), which disables the rows identity check.
    pub rows_per_request: u64,
    /// Requests issued (all `/score` outcomes).
    pub requests_sent: u64,
    /// 200 responses.
    pub responses_ok: u64,
    /// Rows scored across 200 responses.
    pub rows_scored: u64,
}

/// Client-observed request latency; all zeros when the emitter is the
/// daemon itself (no client side).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientLatency {
    /// Request latency p50, milliseconds.
    pub p50: f64,
    /// Request latency p95, milliseconds.
    pub p95: f64,
    /// Request latency p99, milliseconds.
    pub p99: f64,
    /// Slowest request, milliseconds.
    pub max: f64,
    /// Mean request latency, milliseconds.
    pub mean: f64,
}

impl ClientLatency {
    /// The daemon-self-report value: no client measured anything.
    pub fn zero() -> ClientLatency {
        ClientLatency {
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
            max: 0.0,
            mean: 0.0,
        }
    }
}

/// The per-stage sketches out of a registry snapshot, in
/// [`STAGE_NAMES`] order; a stage nothing observed yet is empty.
pub fn stage_sketches(snapshot: &obs::Snapshot) -> [Sketch; STAGE_COUNT] {
    STAGE_SKETCHES.map(|name| snapshot.sketches.get(name).cloned().unwrap_or_default())
}

fn deterministic_json(
    run: &LatencyRun,
    stages: &[Sketch; STAGE_COUNT],
    drift: &DriftSnapshot,
) -> JsonV {
    let histogram = |counts: &[u64; DRIFT_BUCKETS]| {
        JsonV::Arr(counts.iter().map(|&v| JsonV::UInt(v)).collect())
    };
    JsonV::obj(vec![
        (
            "config",
            JsonV::obj(vec![
                ("connections", JsonV::UInt(run.connections)),
                ("rows_per_request", JsonV::UInt(run.rows_per_request)),
            ]),
        ),
        (
            "sketch",
            JsonV::obj(vec![
                ("buckets", JsonV::UInt(SKETCH_BUCKETS as u64)),
                ("min_exponent", JsonV::Float(SKETCH_MIN_EXP as f64)),
                ("max_exponent", JsonV::Float(SKETCH_MAX_EXP as f64)),
            ]),
        ),
        (
            "stages",
            JsonV::Obj(
                STAGE_NAMES
                    .iter()
                    .zip(stages.iter())
                    .map(|(&name, sketch)| {
                        (
                            name.to_string(),
                            JsonV::obj(vec![("observations", JsonV::UInt(sketch.total()))]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "drift",
            JsonV::obj(vec![
                ("reference", histogram(&drift.reference)),
                ("live", histogram(&drift.live)),
                ("scored", JsonV::UInt(drift.total())),
                ("divergence", JsonV::Float(drift.divergence())),
            ]),
        ),
        (
            "counts",
            JsonV::obj(vec![
                ("requests_sent", JsonV::UInt(run.requests_sent)),
                ("responses_ok", JsonV::UInt(run.responses_ok)),
                ("rows_scored", JsonV::UInt(run.rows_scored)),
            ]),
        ),
    ])
}

/// Renders only the deterministic section — the byte string the
/// loopback tests pin across worker counts.
pub fn deterministic_latency_section(
    run: &LatencyRun,
    stages: &[Sketch; STAGE_COUNT],
    drift: &DriftSnapshot,
) -> String {
    deterministic_json(run, stages, drift).render()
}

fn stage_json(sketch: &Sketch) -> JsonV {
    let buckets: Vec<JsonV> = sketch
        .counts()
        .iter()
        .enumerate()
        .filter(|(_, &count)| count > 0)
        .map(|(i, &count)| JsonV::Arr(vec![JsonV::UInt(i as u64), JsonV::UInt(count)]))
        .collect();
    JsonV::obj(vec![
        ("buckets", JsonV::Arr(buckets)),
        ("p50", JsonV::Float(sketch.quantile(0.50))),
        ("p95", JsonV::Float(sketch.quantile(0.95))),
        ("p99", JsonV::Float(sketch.quantile(0.99))),
    ])
}

/// Renders the full latency artifact for `binary`.
pub fn render_latency(
    binary: &str,
    config: &ServerConfig,
    run: &LatencyRun,
    stages: &[Sketch; STAGE_COUNT],
    drift: &DriftSnapshot,
    client: &ClientLatency,
) -> String {
    JsonV::obj(vec![
        ("schema", JsonV::Str(LATENCY_SCHEMA.to_string())),
        ("binary", JsonV::Str(binary.to_string())),
        ("deterministic", deterministic_json(run, stages, drift)),
        (
            "nondeterministic",
            JsonV::obj(vec![
                (
                    "config",
                    JsonV::obj(vec![
                        ("workers", JsonV::UInt(config.workers as u64)),
                        ("queue_capacity", JsonV::UInt(config.queue_capacity as u64)),
                        ("batch_max_rows", JsonV::UInt(config.batch.max_rows as u64)),
                        ("batch_max_wait_ms", JsonV::UInt(config.batch.max_wait_ms)),
                    ]),
                ),
                (
                    "server_stages_ms",
                    JsonV::Obj(
                        STAGE_NAMES
                            .iter()
                            .zip(stages.iter())
                            .map(|(&name, sketch)| (name.to_string(), stage_json(sketch)))
                            .collect(),
                    ),
                ),
                (
                    "client_latency_ms",
                    JsonV::obj(vec![
                        ("p50", JsonV::Float(client.p50)),
                        ("p95", JsonV::Float(client.p95)),
                        ("p99", JsonV::Float(client.p99)),
                        ("max", JsonV::Float(client.max)),
                        ("mean", JsonV::Float(client.mean)),
                    ]),
                ),
            ]),
        ),
    ])
    .render()
}

/// Writes `dir/latency.json` for `binary`, creating `dir` if needed.
/// Returns the written path.
pub fn write_latency(
    dir: &Path,
    binary: &str,
    config: &ServerConfig,
    run: &LatencyRun,
    stages: &[Sketch; STAGE_COUNT],
    drift: &DriftSnapshot,
    client: &ClientLatency,
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(LATENCY_FILE);
    std::fs::write(
        &path,
        render_latency(binary, config, run, stages, drift, client),
    )?;
    Ok(path)
}

fn expect_obj<'a>(value: &'a JsonV, what: &str) -> Result<&'a [(String, JsonV)], String> {
    match value {
        JsonV::Obj(fields) => Ok(fields),
        other => Err(format!("{what} must be an object, found {other:?}")),
    }
}

fn expect_keys(fields: &[(String, JsonV)], keys: &[&str], what: &str) -> Result<(), String> {
    let found: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    if found != keys {
        return Err(format!("{what} must have keys {keys:?}, found {found:?}"));
    }
    Ok(())
}

fn expect_uint(value: &JsonV, what: &str) -> Result<u64, String> {
    match value {
        JsonV::UInt(v) => Ok(*v),
        other => Err(format!(
            "{what} must be an unsigned integer, found {other:?}"
        )),
    }
}

fn expect_float(value: &JsonV, what: &str) -> Result<f64, String> {
    match value {
        JsonV::Float(v) => Ok(*v),
        other => Err(format!("{what} must be a float, found {other:?}")),
    }
}

fn expect_histogram(value: Option<&JsonV>, what: &str) -> Result<u64, String> {
    let items = match value {
        Some(JsonV::Arr(items)) => items,
        other => return Err(format!("{what} must be an array, found {other:?}")),
    };
    if items.len() != DRIFT_BUCKETS {
        return Err(format!(
            "{what} must have {DRIFT_BUCKETS} buckets, found {}",
            items.len()
        ));
    }
    let mut total = 0u64;
    for (i, bucket) in items.iter().enumerate() {
        total += expect_uint(bucket, &format!("{what}[{i}]"))?;
    }
    Ok(total)
}

/// Structurally validates a rendered `latency.json`: schema id, the
/// deterministic/nondeterministic split, exact key order, and the
/// counting identities the lifecycle instrumentation guarantees (one
/// queue-wait/batch-wait/write/total observation per 200 response,
/// one score observation and one drift record per scored row). Used
/// by the `latency-schema-check` binary in CI.
pub fn validate_latency(text: &str) -> Result<(), String> {
    let root = jsonv::parse(text)?;
    let fields = expect_obj(&root, "latency artifact")?;
    expect_keys(
        fields,
        &["schema", "binary", "deterministic", "nondeterministic"],
        "latency artifact",
    )?;

    match root.get("schema") {
        Some(JsonV::Str(s)) if s == LATENCY_SCHEMA => {}
        other => {
            return Err(format!(
                "schema must be {LATENCY_SCHEMA:?}, found {other:?}"
            ))
        }
    }
    match root.get("binary") {
        Some(JsonV::Str(s)) if !s.is_empty() => {}
        other => {
            return Err(format!(
                "binary must be a non-empty string, found {other:?}"
            ))
        }
    }

    let det = root.get("deterministic").expect("keys checked");
    let det_fields = expect_obj(det, "deterministic")?;
    expect_keys(
        det_fields,
        &["config", "sketch", "stages", "drift", "counts"],
        "deterministic",
    )?;

    let config = det.get("config").expect("keys checked");
    let config_fields = expect_obj(config, "deterministic.config")?;
    expect_keys(
        config_fields,
        &["connections", "rows_per_request"],
        "deterministic.config",
    )?;
    if expect_uint(
        config.get("connections").expect("keys checked"),
        "connections",
    )? == 0
    {
        return Err("config.connections must be nonzero".to_string());
    }
    let rows_per_request = expect_uint(
        config.get("rows_per_request").expect("keys checked"),
        "rows_per_request",
    )?;

    let sketch = det.get("sketch").expect("keys checked");
    let sketch_fields = expect_obj(sketch, "sketch")?;
    expect_keys(
        sketch_fields,
        &["buckets", "min_exponent", "max_exponent"],
        "sketch",
    )?;
    if expect_uint(sketch.get("buckets").expect("keys checked"), "buckets")?
        != SKETCH_BUCKETS as u64
    {
        return Err(format!("sketch.buckets must be {SKETCH_BUCKETS}"));
    }
    for (key, want) in [
        ("min_exponent", SKETCH_MIN_EXP as f64),
        ("max_exponent", SKETCH_MAX_EXP as f64),
    ] {
        if expect_float(sketch.get(key).expect("keys checked"), key)? != want {
            return Err(format!("sketch.{key} must be {want}"));
        }
    }

    let stages = det.get("stages").expect("keys checked");
    let stage_fields = expect_obj(stages, "stages")?;
    expect_keys(stage_fields, &STAGE_NAMES, "stages")?;
    let mut observations = [0u64; STAGE_COUNT];
    for (slot, name) in observations.iter_mut().zip(STAGE_NAMES) {
        let stage = stages.get(name).expect("keys checked");
        expect_keys(
            expect_obj(stage, name)?,
            &["observations"],
            &format!("stages.{name}"),
        )?;
        *slot = expect_uint(
            stage.get("observations").expect("keys checked"),
            &format!("stages.{name}.observations"),
        )?;
    }

    let counts = det.get("counts").expect("keys checked");
    let count_fields = expect_obj(counts, "counts")?;
    expect_keys(
        count_fields,
        &["requests_sent", "responses_ok", "rows_scored"],
        "counts",
    )?;
    let get_count = |key: &str| expect_uint(counts.get(key).expect("keys checked"), key);
    let sent = get_count("requests_sent")?;
    if sent == 0 {
        return Err("counts.requests_sent must be nonzero".to_string());
    }
    let ok = get_count("responses_ok")?;
    if ok > sent {
        return Err(format!("responses_ok {ok} exceeds requests_sent {sent}"));
    }
    let rows_scored = get_count("rows_scored")?;
    if rows_per_request > 0 && rows_scored != ok * rows_per_request {
        return Err(format!(
            "rows_scored {rows_scored} != responses_ok {ok} × rows_per_request {rows_per_request}"
        ));
    }

    // The lifecycle counting identities: exactly one queue-wait,
    // batch-wait, write, and total observation per 200 response, and
    // one score observation per scored row.
    let [queue_wait, batch_wait, score, write, total] = observations;
    for (name, got) in [
        ("queue_wait", queue_wait),
        ("batch_wait", batch_wait),
        ("write", write),
        ("total", total),
    ] {
        if got != ok {
            return Err(format!(
                "stages.{name}.observations {got} != responses_ok {ok}"
            ));
        }
    }
    if score != rows_scored {
        return Err(format!(
            "stages.score.observations {score} != rows_scored {rows_scored}"
        ));
    }

    let drift = det.get("drift").expect("keys checked");
    let drift_fields = expect_obj(drift, "drift")?;
    expect_keys(
        drift_fields,
        &["reference", "live", "scored", "divergence"],
        "drift",
    )?;
    expect_histogram(drift.get("reference"), "drift.reference")?;
    let live_total = expect_histogram(drift.get("live"), "drift.live")?;
    let scored = expect_uint(drift.get("scored").expect("keys checked"), "drift.scored")?;
    if live_total != scored {
        return Err(format!(
            "drift.live sums to {live_total}, drift.scored is {scored}"
        ));
    }
    if scored != rows_scored {
        return Err(format!(
            "drift.scored {scored} != counts.rows_scored {rows_scored}"
        ));
    }
    let divergence = expect_float(
        drift.get("divergence").expect("keys checked"),
        "drift.divergence",
    )?;
    if !(0.0..=1.0).contains(&divergence) {
        return Err(format!("drift.divergence {divergence} outside [0, 1]"));
    }

    let nondet = root.get("nondeterministic").expect("keys checked");
    let nondet_fields = expect_obj(nondet, "nondeterministic")?;
    expect_keys(
        nondet_fields,
        &["config", "server_stages_ms", "client_latency_ms"],
        "nondeterministic",
    )?;
    let nconfig = nondet.get("config").expect("keys checked");
    expect_keys(
        expect_obj(nconfig, "nondeterministic.config")?,
        &[
            "workers",
            "queue_capacity",
            "batch_max_rows",
            "batch_max_wait_ms",
        ],
        "nondeterministic.config",
    )?;
    for key in ["workers", "queue_capacity", "batch_max_rows"] {
        if expect_uint(nconfig.get(key).expect("keys checked"), key)? == 0 {
            return Err(format!("nondeterministic.config.{key} must be nonzero"));
        }
    }
    expect_uint(
        nconfig.get("batch_max_wait_ms").expect("keys checked"),
        "batch_max_wait_ms",
    )?;

    let server = nondet.get("server_stages_ms").expect("keys checked");
    expect_keys(
        expect_obj(server, "server_stages_ms")?,
        &STAGE_NAMES,
        "server_stages_ms",
    )?;
    for (name, expected_total) in STAGE_NAMES.iter().zip(observations) {
        let stage = server.get(name).expect("keys checked");
        expect_keys(
            expect_obj(stage, name)?,
            &["buckets", "p50", "p95", "p99"],
            &format!("server_stages_ms.{name}"),
        )?;
        let buckets = match stage.get("buckets") {
            Some(JsonV::Arr(items)) => items,
            other => return Err(format!("{name}.buckets must be an array, found {other:?}")),
        };
        let mut sum = 0u64;
        let mut last_index: Option<u64> = None;
        for entry in buckets {
            let pair = match entry {
                JsonV::Arr(pair) if pair.len() == 2 => pair,
                other => {
                    return Err(format!(
                        "{name}.buckets entries must be [index, count] pairs, found {other:?}"
                    ))
                }
            };
            let index = expect_uint(&pair[0], &format!("{name} bucket index"))?;
            let count = expect_uint(&pair[1], &format!("{name} bucket count"))?;
            if index >= SKETCH_BUCKETS as u64 {
                return Err(format!("{name} bucket index {index} out of range"));
            }
            if last_index.is_some_and(|prev| index <= prev) {
                return Err(format!("{name} bucket indices must be increasing"));
            }
            if count == 0 {
                return Err(format!("{name} bucket {index} has zero count"));
            }
            last_index = Some(index);
            sum += count;
        }
        if sum != expected_total {
            return Err(format!(
                "{name} buckets sum to {sum}, stages.{name}.observations is {expected_total}"
            ));
        }
        let p50 = expect_float(stage.get("p50").expect("keys checked"), "p50")?;
        let p95 = expect_float(stage.get("p95").expect("keys checked"), "p95")?;
        let p99 = expect_float(stage.get("p99").expect("keys checked"), "p99")?;
        if !(p50 <= p95 && p95 <= p99) {
            return Err(format!(
                "{name} quantiles must be monotone: p50 {p50}, p95 {p95}, p99 {p99}"
            ));
        }
    }

    let client = nondet.get("client_latency_ms").expect("keys checked");
    expect_keys(
        expect_obj(client, "client_latency_ms")?,
        &["p50", "p95", "p99", "max", "mean"],
        "client_latency_ms",
    )?;
    let get_latency = |key: &str| expect_float(client.get(key).expect("keys checked"), key);
    let (p50, p95, p99, max, mean) = (
        get_latency("p50")?,
        get_latency("p95")?,
        get_latency("p99")?,
        get_latency("max")?,
        get_latency("mean")?,
    );
    for (key, v) in [
        ("p50", p50),
        ("p95", p95),
        ("p99", p99),
        ("max", max),
        ("mean", mean),
    ] {
        if !v.is_finite() || v < 0.0 {
            return Err(format!(
                "client_latency_ms.{key} must be finite and non-negative, found {v}"
            ));
        }
    }
    if !(p50 <= p95 && p95 <= p99 && p99 <= max) {
        return Err(format!(
            "client latency percentiles must be monotone: p50 {p50}, p95 {p95}, p99 {p99}, max {max}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A consistent fixture: 8 requests × 4 rows, every identity
    /// satisfied.
    fn sample() -> (
        ServerConfig,
        LatencyRun,
        [Sketch; STAGE_COUNT],
        DriftSnapshot,
        ClientLatency,
    ) {
        let run = LatencyRun {
            connections: 2,
            rows_per_request: 4,
            requests_sent: 8,
            responses_ok: 8,
            rows_scored: 32,
        };
        let mut stages: [Sketch; STAGE_COUNT] = Default::default();
        for (i, stage) in stages.iter_mut().enumerate() {
            let per_response = [8u64, 8, 0, 8, 8][i];
            for k in 0..per_response {
                stage.observe(0.5 + k as f64);
            }
        }
        stages[2].observe_n(0.03, 32); // score: one observation per row
        let mut live = [0u64; DRIFT_BUCKETS];
        live[2] = 12;
        live[7] = 20;
        let drift = DriftSnapshot {
            reference: [10, 10, 30, 10, 0, 0, 10, 50, 0, 0],
            live,
        };
        let client = ClientLatency {
            p50: 1.0,
            p95: 2.0,
            p99: 4.0,
            max: 9.0,
            mean: 1.4,
        };
        (ServerConfig::default(), run, stages, drift, client)
    }

    #[test]
    fn rendered_latency_validates() {
        let (config, run, stages, drift, client) = sample();
        let text = render_latency("loadgen", &config, &run, &stages, &drift, &client);
        validate_latency(&text).expect("schema-valid");
        assert!(text.contains("\"rows_scored\": 32"));
        assert!(text.contains("\"server_stages_ms\""));
    }

    #[test]
    fn deterministic_section_excludes_worker_knobs_and_timings() {
        let (config, run, stages, drift, client) = sample();
        let section = deterministic_latency_section(&run, &stages, &drift);
        // Byte-identity across daemon shapes requires these to be
        // absent from the deterministic section.
        assert!(!section.contains("workers"));
        assert!(!section.contains("queue_capacity"));
        assert!(!section.contains("p50"));
        assert!(section.contains("\"observations\": 32"));
        // Daemon-shape knobs live only in the nondeterministic render.
        let full = render_latency("loadgen", &config, &run, &stages, &drift, &client);
        assert!(full.contains("\"workers\""));
        assert!(full.contains("\"batch_max_wait_ms\""));
    }

    #[test]
    fn validator_rejects_drift() {
        let (config, run, stages, drift, client) = sample();
        let good = render_latency("loadgen", &config, &run, &stages, &drift, &client);
        assert!(validate_latency(&good.replace(LATENCY_SCHEMA, "survdb-latency/v2")).is_err());
        assert!(validate_latency(&good.replace("\"stages\"", "\"phases\"")).is_err());
        // Break the score-observations == rows_scored identity.
        assert!(
            validate_latency(&good.replace("\"rows_scored\": 32", "\"rows_scored\": 33")).is_err()
        );
        // Break the per-response identity.
        assert!(
            validate_latency(&good.replace("\"responses_ok\": 8", "\"responses_ok\": 7")).is_err()
        );
        // Break drift.live / drift.scored agreement.
        assert!(validate_latency(&good.replace("\"scored\": 32", "\"scored\": 31")).is_err());
        assert!(validate_latency("{}").is_err());
        assert!(validate_latency("nonsense").is_err());
    }

    #[test]
    fn validator_checks_client_latency_monotonicity() {
        let (config, run, stages, drift, mut client) = sample();
        client.p95 = 99.0;
        let bad = render_latency("loadgen", &config, &run, &stages, &drift, &client);
        assert!(validate_latency(&bad).is_err());
        let zero = render_latency(
            "survd",
            &config,
            &run,
            &stages,
            &drift,
            &ClientLatency::zero(),
        );
        validate_latency(&zero).expect("all-zero client latency is valid");
    }

    #[test]
    fn write_latency_creates_the_artifact() {
        let (config, run, stages, drift, client) = sample();
        let dir = std::env::temp_dir().join(format!("survdb-latency-{}", std::process::id()));
        let path = write_latency(&dir, "loadgen", &config, &run, &stages, &drift, &client)
            .expect("writes");
        let text = std::fs::read_to_string(&path).expect("readable");
        validate_latency(&text).expect("valid on disk");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stage_sketches_pull_from_a_snapshot_by_name() {
        let snapshot = obs::Snapshot::default();
        let empty = stage_sketches(&snapshot);
        assert!(empty.iter().all(|s| s.is_empty()));
        let mut snapshot = obs::Snapshot::default();
        let mut s = Sketch::new();
        s.observe_n(1.5, 3);
        snapshot.sketches.insert(STAGE_SCORE.to_string(), s);
        let stages = stage_sketches(&snapshot);
        assert_eq!(stages[2].total(), 3);
        assert!(stages[0].is_empty());
    }
}
