//! `survd` — the online scoring daemon: micro-batching, backpressure,
//! graceful drain, crash-safe model hot-swap, and a deterministic
//! protocol chaos harness.
//!
//! The offline pipeline (train → persist → `scored`) answers "what
//! does the model say about this fleet snapshot"; `survd` answers it
//! *online*: a long-lived process that loads a `serve::SavedModel`
//! and serves `POST /score` over hand-rolled HTTP/1.1 on
//! `std::net` (dependency policy: std only).
//!
//! The pieces, bottom-up:
//!
//! - [`http`] — minimal HTTP/1.1 request reading / response writing
//!   with bounded head and body sizes and *typed* refusals: 431 for
//!   over-budget headers, 413 for oversized bodies, 501 for
//!   unimplemented transfer codings, 408 for transfers stalled past
//!   the read-stall budget.
//! - [`wire`] — the `/score` JSON request/response over `obs::jsonv`,
//!   byte-deterministic rendering (shortest-roundtrip floats, so
//!   loopback tests compare probabilities bitwise). Every response
//!   records the model generation that scored it.
//! - [`queue`] — the bounded MPMC queue: non-blocking admission
//!   (full → HTTP 429 + `Retry-After`), blocking connection hand-off,
//!   close-and-drain semantics, and a peak-depth high-water mark as
//!   the bounded-memory witness.
//! - [`batcher`] — the pure coalescing state machine: flush on a row
//!   threshold or the oldest request's deadline, driven by a
//!   [`clock::Clock`] so tests never sleep. Coalescing is transparent:
//!   per-row probabilities are independent tree walks, so batched
//!   scoring is bitwise identical to scoring each request alone.
//! - [`server`] — the daemon itself: acceptor thread, fixed worker
//!   pool, batcher thread over `serve::score_rows`, `/healthz`,
//!   `/metrics`, `POST /reload` (validate-then-swap model hot-swap
//!   behind a generation-counted [`server::ModelSlot`]), per-request
//!   deadline degradation (late work answered 503 before wasting a
//!   batcher slot), and [`server::ServerHandle::shutdown`] which
//!   drains every admitted request before returning.
//! - [`client`] — the matching HTTP/1.1 client, shared by the
//!   `loadgen` load generator and the loopback end-to-end tests.
//! - [`retry`] — the client-side resilience policy: bounded 429-only
//!   retries with seeded full-jitter backoff honoring `Retry-After`,
//!   sleeping through an injectable [`retry::Sleeper`].
//! - [`chaos`] — the deterministic protocol fault injector (class ×
//!   rate, splitmix64-keyed like `telemetry::faults`) and its socket
//!   driver: slow-loris, mid-body resets, truncated/oversized/garbage
//!   frames, stalled reads, malformed JSON — each contracted to a
//!   typed server reaction.
//! - [`artifact`] — `artifacts/serving.json` (`survdb-serving/v1`),
//!   split deterministic/nondeterministic like every other artifact,
//!   produced by the `loadgen` binary and validated by
//!   `serving-schema-check` in CI.
//! - [`resilience`] — `artifacts/resilience.json`
//!   (`survdb-resilience/v1`): per fault-class × rate outcome cells
//!   plus hot-swap drill accounting, produced by the `chaossweep`
//!   binary and validated by `resilience-schema-check` in CI.
//! - [`latency`] — the serving observability artifact:
//!   `artifacts/latency.json` (`survdb-latency/v1`). Each request is
//!   stamped with a splitmix64-derived trace id (echoed back as
//!   `x-trace-id`) and clocked through admit → queue-wait →
//!   batch-wait → score → write; per-stage durations feed
//!   `obs::sketch` streaming histograms exposed on `/metrics`, and
//!   every scored probability feeds an `obs::DriftMonitor` seeded
//!   from the training-time score histogram in `scoring.json`.

pub mod artifact;
pub mod batcher;
pub mod chaos;
pub mod client;
pub mod clock;
pub mod http;
pub mod latency;
pub mod queue;
pub mod resilience;
pub mod retry;
pub mod server;
pub mod wire;

pub use artifact::{
    deterministic_serving_section, render_serving, validate_serving, write_serving, ServingCorpus,
    ServingCounts, ServingRunConfig, ServingTiming, SERVING_FILE, SERVING_SCHEMA,
};
pub use batcher::{BatchPolicy, BatcherCore};
pub use chaos::{ChaosClass, ChaosPlan, Expect, Outcome};
pub use client::{Client, Response};
pub use clock::{Clock, ManualClock, SystemClock};
pub use latency::{
    deterministic_latency_section, render_latency, stage_sketches, validate_latency, write_latency,
    ClientLatency, LatencyRun, LATENCY_FILE, LATENCY_SCHEMA, STAGE_COUNT, STAGE_NAMES,
    STAGE_SKETCHES,
};
pub use resilience::{
    deterministic_resilience_section, render_resilience, validate_resilience, write_resilience,
    CellOutcome, ReloadOutcome, ResilienceConfig, RESILIENCE_FILE, RESILIENCE_SCHEMA,
};
pub use retry::{RetryPolicy, Sleeper, ThreadSleeper};
pub use server::{start, start_with_clock, ServerConfig, ServerHandle, StatsSnapshot};
pub use wire::{
    parse_score_request, parse_score_response, render_reload_response, render_score_request,
    render_score_response, RowScore, ScoreRequest, ScoreResponse, RESPONSE_SCHEMA,
};
