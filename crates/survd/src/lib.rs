//! `survd` — the online scoring daemon: micro-batching, backpressure,
//! graceful drain.
//!
//! The offline pipeline (train → persist → `scored`) answers "what
//! does the model say about this fleet snapshot"; `survd` answers it
//! *online*: a long-lived process that loads a `serve::SavedModel`
//! once and serves `POST /score` over hand-rolled HTTP/1.1 on
//! `std::net` (dependency policy: std only).
//!
//! The pieces, bottom-up:
//!
//! - [`http`] — minimal HTTP/1.1 request reading / response writing
//!   with bounded head and body sizes.
//! - [`wire`] — the `/score` JSON request/response over `obs::jsonv`,
//!   byte-deterministic rendering (shortest-roundtrip floats, so
//!   loopback tests compare probabilities bitwise).
//! - [`queue`] — the bounded MPMC queue: non-blocking admission
//!   (full → HTTP 429 + `Retry-After`), blocking connection hand-off,
//!   close-and-drain semantics, and a peak-depth high-water mark as
//!   the bounded-memory witness.
//! - [`batcher`] — the pure coalescing state machine: flush on a row
//!   threshold or the oldest request's deadline, driven by a
//!   [`clock::Clock`] so tests never sleep. Coalescing is transparent:
//!   per-row probabilities are independent tree walks, so batched
//!   scoring is bitwise identical to scoring each request alone.
//! - [`server`] — the daemon itself: acceptor thread, fixed worker
//!   pool, batcher thread over `serve::score_rows`, `/healthz`,
//!   `/metrics` (an installed `obs::Registry` rendered as text), and
//!   [`server::ServerHandle::shutdown`] which drains every admitted
//!   request before returning.
//! - [`client`] — the matching HTTP/1.1 client, shared by the
//!   `loadgen` load generator and the loopback end-to-end tests.
//! - [`artifact`] — `artifacts/serving.json` (`survdb-serving/v1`),
//!   split deterministic/nondeterministic like every other artifact,
//!   produced by the `loadgen` binary and validated by
//!   `serving-schema-check` in CI.

pub mod artifact;
pub mod batcher;
pub mod client;
pub mod clock;
pub mod http;
pub mod queue;
pub mod server;
pub mod wire;

pub use artifact::{
    deterministic_serving_section, render_serving, validate_serving, write_serving, ServingCorpus,
    ServingCounts, ServingRunConfig, ServingTiming, SERVING_FILE, SERVING_SCHEMA,
};
pub use batcher::{BatchPolicy, BatcherCore};
pub use client::{Client, Response};
pub use clock::{Clock, ManualClock, SystemClock};
pub use server::{start, ServerConfig, ServerHandle, StatsSnapshot};
pub use wire::{
    parse_score_request, parse_score_response, render_score_request, render_score_response,
    RowScore, ScoreRequest, RESPONSE_SCHEMA,
};
