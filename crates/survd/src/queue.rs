//! A bounded MPMC queue with non-blocking admission and condvar pops —
//! the daemon's backpressure primitive.
//!
//! Two flavors of producer: [`Bounded::try_push`] never blocks (full →
//! the caller sheds with HTTP 429), [`Bounded::push_wait`] blocks for
//! space (used for the connection hand-off, where blocking the
//! acceptor translates into TCP backlog backpressure instead of
//! unbounded buffering). Consumers use [`Bounded::pop_wait`] with an
//! optional timeout so the batcher can wake exactly at its flush
//! deadline. [`Bounded::close`] drains gracefully: producers are
//! refused, consumers keep popping until the queue is empty, then see
//! [`Pop::Drained`].
//!
//! [`Bounded::pause`] freezes the consumer side *atomically under the
//! queue lock*: queued items stay queued (still occupying their
//! capacity slots, so `try_push` sheds deterministically once the
//! queue is full) until [`Bounded::resume`]. This is the overload
//! tests' hook — pause, flood with more than `capacity` requests,
//! observe exactly `capacity` admissions and the rest shed. Closing
//! overrides a pause: drain always proceeds.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a push was refused.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity; the item comes back to the caller.
    Full(T),
    /// The queue is closed (draining); the item comes back.
    Closed(T),
}

/// The outcome of a timed pop.
#[derive(Debug)]
pub enum Pop<T> {
    /// An item, FIFO order.
    Item(T),
    /// The timeout elapsed with the queue still empty and open.
    TimedOut,
    /// The queue is closed and empty — no item will ever arrive.
    Drained,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Consumers blocked while true (unless closed).
    paused: bool,
    /// High-water mark of `items.len()` — the bounded-memory witness
    /// asserted by the overload tests.
    peak: usize,
}

/// The bounded queue. All operations are O(1) amortized.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    /// Signaled when an item arrives or the queue closes.
    items_cv: Condvar,
    /// Signaled when space frees up or the queue closes.
    space_cv: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// A queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Bounded<T> {
        assert!(capacity > 0, "capacity must be positive");
        Bounded {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                paused: false,
                peak: 0,
            }),
            items_cv: Condvar::new(),
            space_cv: Condvar::new(),
            capacity,
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Non-blocking push. Returns the queue depth after the push.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        let depth = state.items.len();
        state.peak = state.peak.max(depth);
        drop(state);
        self.items_cv.notify_one();
        Ok(depth)
    }

    /// Blocking push: waits for space. Returns the item if the queue
    /// closes while waiting.
    pub fn push_wait(&self, item: T) -> Result<(), T> {
        let mut state = self.lock();
        loop {
            if state.closed {
                return Err(item);
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                let depth = state.items.len();
                state.peak = state.peak.max(depth);
                drop(state);
                self.items_cv.notify_one();
                return Ok(());
            }
            state = self.space_cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Pops the next item, waiting up to `timeout` (forever when
    /// `None`) for one to arrive. While the queue is paused (and not
    /// closed) no item is handed out, even if some are queued.
    pub fn pop_wait(&self, timeout: Option<Duration>) -> Pop<T> {
        let mut state = self.lock();
        loop {
            if !state.paused || state.closed {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.space_cv.notify_one();
                    return Pop::Item(item);
                }
            }
            if state.closed && state.items.is_empty() {
                return Pop::Drained;
            }
            match timeout {
                None => {
                    state = self.items_cv.wait(state).unwrap_or_else(|e| e.into_inner());
                }
                Some(t) => {
                    let (next, result) = self
                        .items_cv
                        .wait_timeout(state, t)
                        .unwrap_or_else(|e| e.into_inner());
                    state = next;
                    if result.timed_out()
                        && !state.closed
                        && (state.paused || state.items.is_empty())
                    {
                        return Pop::TimedOut;
                    }
                }
            }
        }
    }

    /// Freezes the consumer side: queued items stay queued (and keep
    /// occupying capacity slots) until [`Bounded::resume`]. Atomic with
    /// respect to pops — no in-flight item is ever half-taken.
    pub fn pause(&self) {
        self.lock().paused = true;
    }

    /// Unfreezes a paused queue and wakes blocked consumers.
    pub fn resume(&self) {
        self.lock().paused = false;
        self.items_cv.notify_all();
    }

    /// Closes the queue: further pushes fail, pops drain what remains.
    /// Overrides a pause — drain always proceeds.
    pub fn close(&self) {
        self.lock().closed = true;
        self.items_cv.notify_all();
        self.space_cv.notify_all();
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when no item is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The deepest the queue has ever been — must never exceed
    /// [`Bounded::capacity`].
    pub fn peak_depth(&self) -> usize {
        self.lock().peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_shed_at_capacity() {
        let q = Bounded::new(2);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
        assert_eq!(q.peak_depth(), 2);
        assert!(matches!(q.pop_wait(None), Pop::Item(1)));
        assert!(matches!(q.pop_wait(None), Pop::Item(2)));
        assert!(matches!(
            q.pop_wait(Some(Duration::from_millis(1))),
            Pop::TimedOut
        ));
    }

    #[test]
    fn close_drains_then_reports() {
        let q = Bounded::new(4);
        q.try_push("a").unwrap();
        q.close();
        assert!(matches!(q.try_push("b"), Err(PushError::Closed("b"))));
        assert!(matches!(q.pop_wait(None), Pop::Item("a")));
        assert!(matches!(q.pop_wait(None), Pop::Drained));
    }

    #[test]
    fn push_wait_blocks_until_space_or_close() {
        let q = Arc::new(Bounded::new(1));
        q.try_push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_wait(1u32))
        };
        // Free a slot; the blocked producer completes.
        assert!(matches!(q.pop_wait(None), Pop::Item(0)));
        producer.join().unwrap().expect("pushed after space freed");
        assert!(matches!(q.pop_wait(None), Pop::Item(1)));

        q.try_push(2u32).unwrap();
        let refused = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_wait(3u32))
        };
        q.close();
        assert_eq!(refused.join().unwrap().expect_err("closed"), 3);
        assert_eq!(q.peak_depth(), 1);
    }

    #[test]
    fn pause_holds_items_and_close_overrides() {
        let q = Bounded::new(2);
        q.pause();
        q.try_push("a").unwrap();
        // Paused: the item stays queued, still occupying its slot.
        assert!(matches!(
            q.pop_wait(Some(Duration::from_millis(1))),
            Pop::TimedOut
        ));
        assert_eq!(q.len(), 1);
        q.try_push("b").unwrap();
        assert!(matches!(q.try_push("c"), Err(PushError::Full("c"))));
        // Resume delivers in FIFO order.
        q.resume();
        assert!(matches!(q.pop_wait(None), Pop::Item("a")));
        // Close overrides a fresh pause — drain proceeds.
        q.pause();
        q.close();
        assert!(matches!(q.pop_wait(None), Pop::Item("b")));
        assert!(matches!(q.pop_wait(None), Pop::Drained));
    }

    #[test]
    fn concurrent_producers_respect_the_bound() {
        let q = Arc::new(Bounded::new(3));
        let mut handles = Vec::new();
        for i in 0..16u32 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || q.try_push(i).is_ok()));
        }
        let admitted = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&ok| ok)
            .count();
        assert!(admitted <= 3, "admitted {admitted} > capacity");
        assert!(q.peak_depth() <= 3);
        assert_eq!(q.len(), admitted.min(3));
    }
}
