//! The resilience artifact: `artifacts/resilience.json`.
//!
//! Written by the `chaossweep` bench binary after sweeping protocol
//! fault class × rate against a live daemon. Layout (schema
//! `survdb-resilience/v1`), following the repo's two-section artifact
//! convention:
//!
//! ```text
//! {
//!   "schema": "survdb-resilience/v1",
//!   "binary": "<emitting binary>",
//!   "deterministic": {           // identical across runs & workers
//!     "config": { "requests_per_cell", "seed" },
//!     "model": { "tree_count", "feature_count",
//!                "confidence_threshold" },
//!     "cells": [ { "class", "rate", "sent", "ok", "shed",
//!                  "faulted", "degraded", "mismatches" }, ... ],
//!     "reload": { "attempted", "admitted", "rejected",
//!                 "generations" }
//!   },
//!   "nondeterministic": { "workers", "queue_capacity", "elapsed_ms" }
//! }
//! ```
//!
//! `workers` and `queue_capacity` are environment, not outcome — the
//! whole point of the sweep is that outcomes do NOT depend on them, so
//! they live outside the deterministic section and the e2e tests pin
//! the deterministic bytes across 1- and 8-worker daemons.
//!
//! Counting semantics per cell: `sent` exchanges were driven; `ok`
//! answered 200 with the expected typed outcome, `shed` 429, `faulted`
//! refused (or deliberately unanswerable) because of the injected
//! fault, `degraded` 503 past a deadline. The validator enforces the
//! accounting identity `ok + shed + faulted + degraded = sent` per
//! cell and `mismatches = 0` everywhere — a 200 body that is not
//! byte-identical to the offline scoring of the same rows counts as a
//! mismatch and fails the schema check, so correctness-under-chaos is
//! machine-checked in CI, not eyeballed.

use obs::jsonv::{self, JsonV};
use serve::SavedModel;
use std::io;
use std::path::{Path, PathBuf};

/// Schema identifier for `resilience.json`.
pub const RESILIENCE_SCHEMA: &str = "survdb-resilience/v1";

/// File name the artifact is written under.
pub const RESILIENCE_FILE: &str = "resilience.json";

/// The sweep shape — everything that pins the deterministic section
/// besides the model and the per-cell outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Exchanges driven per (class, rate) cell.
    pub requests_per_cell: usize,
    /// Chaos-plan seed every injection decision derives from.
    pub seed: u64,
    /// Daemon worker threads. Recorded in the *nondeterministic*
    /// section: outcomes must not depend on it.
    pub workers: usize,
    /// Admission-queue capacity. Nondeterministic section, same
    /// reason.
    pub queue_capacity: usize,
}

/// Outcome counts of one (class, rate) sweep cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// Fault class name (kebab-case), or `"none"` for the clean cell.
    pub class: String,
    /// Injection rate in `[0, 1]`.
    pub rate: f64,
    /// Exchanges driven.
    pub sent: u64,
    /// 200 responses whose bodies verified bitwise.
    pub ok: u64,
    /// 429 responses (admission shed).
    pub shed: u64,
    /// Exchanges the injected fault made fail: typed refusals
    /// (400/408/413) and deliberate no-response closes.
    pub faulted: u64,
    /// 503 responses past the request deadline.
    pub degraded: u64,
    /// 200 bodies that did NOT match the offline scoring bitwise.
    /// Must be zero; recorded so a violation is visible in the
    /// artifact itself.
    pub mismatches: u64,
}

/// Accounting of the hot-swap reload drills run during the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReloadOutcome {
    /// `POST /reload` attempts (valid + corrupt candidates).
    pub attempted: u64,
    /// Candidates that validated and swapped.
    pub admitted: u64,
    /// Candidates refused with a typed 422.
    pub rejected: u64,
    /// Final live generation id (1 + admitted when nothing else
    /// reloaded).
    pub generations: u64,
}

fn cell_json(cell: &CellOutcome) -> JsonV {
    JsonV::obj(vec![
        ("class", JsonV::Str(cell.class.clone())),
        ("rate", JsonV::Float(cell.rate)),
        ("sent", JsonV::UInt(cell.sent)),
        ("ok", JsonV::UInt(cell.ok)),
        ("shed", JsonV::UInt(cell.shed)),
        ("faulted", JsonV::UInt(cell.faulted)),
        ("degraded", JsonV::UInt(cell.degraded)),
        ("mismatches", JsonV::UInt(cell.mismatches)),
    ])
}

fn deterministic_json(
    config: &ResilienceConfig,
    model: &SavedModel,
    cells: &[CellOutcome],
    reload: &ReloadOutcome,
) -> JsonV {
    JsonV::obj(vec![
        (
            "config",
            JsonV::obj(vec![
                (
                    "requests_per_cell",
                    JsonV::UInt(config.requests_per_cell as u64),
                ),
                ("seed", JsonV::UInt(config.seed)),
            ]),
        ),
        (
            "model",
            JsonV::obj(vec![
                ("tree_count", JsonV::UInt(model.forest.tree_count() as u64)),
                (
                    "feature_count",
                    JsonV::UInt(model.forest.feature_names().len() as u64),
                ),
                ("confidence_threshold", JsonV::Float(model.threshold())),
            ]),
        ),
        ("cells", JsonV::Arr(cells.iter().map(cell_json).collect())),
        (
            "reload",
            JsonV::obj(vec![
                ("attempted", JsonV::UInt(reload.attempted)),
                ("admitted", JsonV::UInt(reload.admitted)),
                ("rejected", JsonV::UInt(reload.rejected)),
                ("generations", JsonV::UInt(reload.generations)),
            ]),
        ),
    ])
}

/// Renders only the deterministic section — the byte string the
/// resilience tests pin across runs and worker counts.
pub fn deterministic_resilience_section(
    config: &ResilienceConfig,
    model: &SavedModel,
    cells: &[CellOutcome],
    reload: &ReloadOutcome,
) -> String {
    deterministic_json(config, model, cells, reload).render()
}

/// Renders the full resilience artifact for `binary`.
pub fn render_resilience(
    binary: &str,
    config: &ResilienceConfig,
    model: &SavedModel,
    cells: &[CellOutcome],
    reload: &ReloadOutcome,
    elapsed_ms: f64,
) -> String {
    JsonV::obj(vec![
        ("schema", JsonV::Str(RESILIENCE_SCHEMA.to_string())),
        ("binary", JsonV::Str(binary.to_string())),
        (
            "deterministic",
            deterministic_json(config, model, cells, reload),
        ),
        (
            "nondeterministic",
            JsonV::obj(vec![
                ("workers", JsonV::UInt(config.workers as u64)),
                ("queue_capacity", JsonV::UInt(config.queue_capacity as u64)),
                ("elapsed_ms", JsonV::Float(elapsed_ms)),
            ]),
        ),
    ])
    .render()
}

/// Writes `dir/resilience.json` for `binary`, creating `dir` if
/// needed. Returns the written path.
pub fn write_resilience(
    dir: &Path,
    binary: &str,
    config: &ResilienceConfig,
    model: &SavedModel,
    cells: &[CellOutcome],
    reload: &ReloadOutcome,
    elapsed_ms: f64,
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(RESILIENCE_FILE);
    std::fs::write(
        &path,
        render_resilience(binary, config, model, cells, reload, elapsed_ms),
    )?;
    Ok(path)
}

fn expect_obj<'a>(value: &'a JsonV, what: &str) -> Result<&'a [(String, JsonV)], String> {
    match value {
        JsonV::Obj(fields) => Ok(fields),
        other => Err(format!("{what} must be an object, found {other:?}")),
    }
}

fn expect_keys(fields: &[(String, JsonV)], keys: &[&str], what: &str) -> Result<(), String> {
    let found: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    if found != keys {
        return Err(format!("{what} must have keys {keys:?}, found {found:?}"));
    }
    Ok(())
}

fn expect_uint(value: &JsonV, what: &str) -> Result<u64, String> {
    match value {
        JsonV::UInt(v) => Ok(*v),
        other => Err(format!(
            "{what} must be an unsigned integer, found {other:?}"
        )),
    }
}

fn expect_float(value: &JsonV, what: &str) -> Result<f64, String> {
    match value {
        JsonV::Float(v) => Ok(*v),
        other => Err(format!("{what} must be a float, found {other:?}")),
    }
}

/// Structurally validates a rendered `resilience.json`: schema id,
/// section split, per-cell accounting identity, zero mismatches, and
/// reload accounting. Used by the `resilience-schema-check` binary in
/// CI.
pub fn validate_resilience(text: &str) -> Result<(), String> {
    let root = jsonv::parse(text)?;
    let fields = expect_obj(&root, "resilience artifact")?;
    expect_keys(
        fields,
        &["schema", "binary", "deterministic", "nondeterministic"],
        "resilience artifact",
    )?;

    match root.get("schema") {
        Some(JsonV::Str(s)) if s == RESILIENCE_SCHEMA => {}
        other => {
            return Err(format!(
                "schema must be {RESILIENCE_SCHEMA:?}, found {other:?}"
            ))
        }
    }
    match root.get("binary") {
        Some(JsonV::Str(s)) if !s.is_empty() => {}
        other => {
            return Err(format!(
                "binary must be a non-empty string, found {other:?}"
            ))
        }
    }

    let det = root.get("deterministic").expect("keys checked");
    let det_fields = expect_obj(det, "deterministic")?;
    expect_keys(
        det_fields,
        &["config", "model", "cells", "reload"],
        "deterministic",
    )?;

    let config = det.get("config").expect("keys checked");
    let config_fields = expect_obj(config, "config")?;
    expect_keys(config_fields, &["requests_per_cell", "seed"], "config")?;
    if expect_uint(
        config.get("requests_per_cell").expect("keys checked"),
        "requests_per_cell",
    )? == 0
    {
        return Err("config.requests_per_cell must be nonzero".to_string());
    }
    expect_uint(config.get("seed").expect("keys checked"), "config.seed")?;

    let model = det.get("model").expect("keys checked");
    let model_fields = expect_obj(model, "model")?;
    expect_keys(
        model_fields,
        &["tree_count", "feature_count", "confidence_threshold"],
        "model",
    )?;
    for key in ["tree_count", "feature_count"] {
        if expect_uint(model.get(key).expect("keys checked"), key)? == 0 {
            return Err(format!("model.{key} must be nonzero"));
        }
    }
    let t = expect_float(
        model.get("confidence_threshold").expect("keys checked"),
        "confidence_threshold",
    )?;
    if !(0.5..=1.0).contains(&t) {
        return Err(format!("confidence_threshold {t} outside [0.5, 1]"));
    }

    let cells = match det.get("cells") {
        Some(JsonV::Arr(items)) if !items.is_empty() => items,
        other => return Err(format!("cells must be a non-empty array, found {other:?}")),
    };
    for (i, cell) in cells.iter().enumerate() {
        let what = format!("cells[{i}]");
        let cell_fields = expect_obj(cell, &what)?;
        expect_keys(
            cell_fields,
            &[
                "class",
                "rate",
                "sent",
                "ok",
                "shed",
                "faulted",
                "degraded",
                "mismatches",
            ],
            &what,
        )?;
        match cell.get("class") {
            Some(JsonV::Str(s)) if !s.is_empty() => {}
            other => return Err(format!("{what}.class must be a string, found {other:?}")),
        }
        let rate = expect_float(cell.get("rate").expect("keys checked"), "rate")?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("{what}.rate {rate} outside [0, 1]"));
        }
        let get = |key: &str| expect_uint(cell.get(key).expect("keys checked"), key);
        let sent = get("sent")?;
        if sent == 0 {
            return Err(format!("{what}.sent must be nonzero"));
        }
        if get("ok")? + get("shed")? + get("faulted")? + get("degraded")? != sent {
            return Err(format!(
                "{what}: ok + shed + faulted + degraded must equal sent"
            ));
        }
        if get("mismatches")? != 0 {
            return Err(format!(
                "{what}: mismatches must be zero — a 200 body diverged from offline scoring"
            ));
        }
    }

    let reload = det.get("reload").expect("keys checked");
    let reload_fields = expect_obj(reload, "reload")?;
    expect_keys(
        reload_fields,
        &["attempted", "admitted", "rejected", "generations"],
        "reload",
    )?;
    let get = |key: &str| expect_uint(reload.get(key).expect("keys checked"), key);
    if get("admitted")? + get("rejected")? != get("attempted")? {
        return Err("reload: admitted + rejected must equal attempted".to_string());
    }
    if get("generations")? == 0 {
        return Err("reload.generations must be at least 1".to_string());
    }

    let nondet = root.get("nondeterministic").expect("keys checked");
    let nondet_fields = expect_obj(nondet, "nondeterministic")?;
    expect_keys(
        nondet_fields,
        &["workers", "queue_capacity", "elapsed_ms"],
        "nondeterministic",
    )?;
    for key in ["workers", "queue_capacity"] {
        if expect_uint(nondet.get(key).expect("keys checked"), key)? == 0 {
            return Err(format!("nondeterministic.{key} must be nonzero"));
        }
    }
    let elapsed = expect_float(
        nondet.get("elapsed_ms").expect("keys checked"),
        "elapsed_ms",
    )?;
    if !elapsed.is_finite() || elapsed < 0.0 {
        return Err(format!(
            "elapsed_ms must be finite and non-negative, found {elapsed}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use forest::{Dataset, RandomForest, RandomForestParams};
    use serve::ModelMeta;

    fn fixture_model() -> SavedModel {
        let mut d = Dataset::new(vec!["x0".into(), "x1".into()], 2);
        for i in 0..60 {
            let x0 = i as f64 / 60.0;
            let x1 = ((i * 13) % 60) as f64 / 60.0;
            d.push(vec![x0, x1], (x0 > 0.5) as usize);
        }
        let params = RandomForestParams {
            n_trees: 4,
            ..RandomForestParams::default()
        };
        let forest = RandomForest::fit(&d, &params, 3);
        let meta = ModelMeta {
            positive_fraction: d.class_fraction(1),
            seed: 3,
            params,
            grid: None,
        };
        SavedModel::new(forest, meta)
    }

    fn sample() -> (ResilienceConfig, Vec<CellOutcome>, ReloadOutcome) {
        (
            ResilienceConfig {
                requests_per_cell: 40,
                seed: 1206,
                workers: 2,
                queue_capacity: 64,
            },
            vec![
                CellOutcome {
                    class: "none".to_string(),
                    rate: 0.0,
                    sent: 40,
                    ok: 40,
                    shed: 0,
                    faulted: 0,
                    degraded: 0,
                    mismatches: 0,
                },
                CellOutcome {
                    class: "garbage-frame".to_string(),
                    rate: 0.5,
                    sent: 40,
                    ok: 21,
                    shed: 0,
                    faulted: 19,
                    degraded: 0,
                    mismatches: 0,
                },
            ],
            ReloadOutcome {
                attempted: 4,
                admitted: 2,
                rejected: 2,
                generations: 3,
            },
        )
    }

    #[test]
    fn rendered_resilience_validates() {
        let model = fixture_model();
        let (config, cells, reload) = sample();
        let text = render_resilience("chaossweep", &config, &model, &cells, &reload, 12.5);
        validate_resilience(&text).expect("schema-valid");
        assert!(text.contains("\"garbage-frame\""));
        assert!(text.contains("\"generations\": 3"));
    }

    #[test]
    fn deterministic_section_excludes_timings() {
        let model = fixture_model();
        let (config, cells, reload) = sample();
        let section = deterministic_resilience_section(&config, &model, &cells, &reload);
        assert!(!section.contains("elapsed_ms"));
        assert!(section.contains("\"cells\""));
    }

    #[test]
    fn validator_rejects_drift() {
        let model = fixture_model();
        let (config, cells, reload) = sample();
        let good = render_resilience("chaossweep", &config, &model, &cells, &reload, 12.5);
        assert!(
            validate_resilience(&good.replace(RESILIENCE_SCHEMA, "survdb-resilience/v2")).is_err()
        );
        // Break the per-cell accounting identity.
        assert!(validate_resilience(&good.replace("\"ok\": 21", "\"ok\": 20")).is_err());
        // A nonzero mismatch count is a correctness violation.
        assert!(
            validate_resilience(&good.replacen("\"mismatches\": 0", "\"mismatches\": 1", 1))
                .is_err()
        );
        // Break reload accounting.
        assert!(validate_resilience(&good.replace("\"admitted\": 2", "\"admitted\": 1")).is_err());
        // Drop a required key.
        assert!(validate_resilience(&good.replace("\"faulted\"", "\"broken\"")).is_err());
        assert!(validate_resilience("{}").is_err());
        assert!(validate_resilience("nonsense").is_err());
    }

    #[test]
    fn write_resilience_creates_the_artifact() {
        let model = fixture_model();
        let (config, cells, reload) = sample();
        let dir = std::env::temp_dir().join(format!("survdb-resilience-{}", std::process::id()));
        let path = write_resilience(&dir, "chaossweep", &config, &model, &cells, &reload, 1.0)
            .expect("writes");
        let text = std::fs::read_to_string(&path).expect("readable");
        validate_resilience(&text).expect("valid on disk");
        std::fs::remove_dir_all(&dir).ok();
    }
}
