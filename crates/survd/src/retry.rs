//! Client-side retry policy for shed (`429`) responses: bounded
//! attempts, full-jitter exponential backoff, `Retry-After` honored as
//! a floor.
//!
//! Scope is deliberately narrow: only `429 Too Many Requests` is
//! retried, and only for idempotent `/score` requests (scoring the
//! same rows twice returns the same bytes, so a duplicate is safe).
//! 4xx rejections are the client's own defect and 5xx means the daemon
//! is draining or degrading — retrying those would amplify load
//! exactly when the server is shedding it.
//!
//! The jitter stream is splitmix64-keyed (seed, attempt), so a retry
//! schedule is replayable from its seed; sleeping goes through the
//! [`Sleeper`] trait, so tests record delays instead of serving them.

use crate::client::{Client, Response};
use std::io;
use std::time::Duration;

/// Bounded-retry configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = never retry).
    pub max_retries: u32,
    /// Backoff cap base: attempt `n` draws uniformly from
    /// `[0, min(max_delay_ms, base_delay_ms << n))` (full jitter).
    pub base_delay_ms: u64,
    /// Upper bound on any single delay.
    pub max_delay_ms: u64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay_ms: 50,
            max_delay_ms: 2_000,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (0-based), given the
    /// server's `Retry-After` hint in seconds (if any). Full jitter
    /// over the exponential cap, floored by the hint.
    pub fn delay_ms(&self, attempt: u32, retry_after_s: Option<u64>) -> u64 {
        let cap = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.min(32))
            .min(self.max_delay_ms);
        let jittered = if cap == 0 {
            0
        } else {
            mix(self.seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9)) % cap
        };
        // Retry-After is authoritative as a lower bound: never come
        // back sooner than the server asked.
        jittered.max(retry_after_s.unwrap_or(0).saturating_mul(1000))
    }
}

/// splitmix64 finalizer (same constants as `telemetry::faults`).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How waiting happens — a seam so tests never sleep.
pub trait Sleeper {
    /// Waits for `ms` milliseconds (or records that it would have).
    fn sleep_ms(&mut self, ms: u64);
}

/// The production sleeper: actually sleeps.
#[derive(Debug, Default, Clone, Copy)]
pub struct ThreadSleeper;

impl Sleeper for ThreadSleeper {
    fn sleep_ms(&mut self, ms: u64) {
        if ms > 0 {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }
}

/// A test sleeper that records requested delays instead of serving
/// them.
#[derive(Debug, Default)]
pub struct RecordingSleeper {
    /// Every delay requested, in order.
    pub slept_ms: Vec<u64>,
}

impl Sleeper for RecordingSleeper {
    fn sleep_ms(&mut self, ms: u64) {
        self.slept_ms.push(ms);
    }
}

/// The outcome of a retried `/score` call.
#[derive(Debug)]
pub struct RetriedResponse {
    /// The final response (any status — 429 if retries ran out).
    pub response: Response,
    /// Retries performed (0 when the first attempt settled it).
    pub retries: u32,
}

/// POSTs `body` to `/score`, retrying (only) 429s per `policy`.
/// Any non-429 response — success or failure — returns immediately.
pub fn score_with_retries(
    client: &mut Client,
    body: &str,
    policy: &RetryPolicy,
    sleeper: &mut impl Sleeper,
) -> io::Result<RetriedResponse> {
    let mut retries = 0u32;
    loop {
        let response = client.score(body)?;
        if response.status != 429 || retries >= policy.max_retries {
            return Ok(RetriedResponse { response, retries });
        }
        let retry_after_s = response.header("retry-after").and_then(|v| v.parse().ok());
        sleeper.sleep_ms(policy.delay_ms(retries, retry_after_s));
        retries += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    #[test]
    fn delays_are_deterministic_capped_and_jittered() {
        let policy = RetryPolicy {
            max_retries: 5,
            base_delay_ms: 100,
            max_delay_ms: 400,
            seed: 9,
        };
        for attempt in 0..5 {
            let a = policy.delay_ms(attempt, None);
            assert_eq!(a, policy.delay_ms(attempt, None));
            let cap = (100u64 << attempt).min(400);
            assert!(a < cap, "attempt {attempt}: {a} >= cap {cap}");
        }
        // Different seeds draw different schedules somewhere.
        let other = RetryPolicy { seed: 10, ..policy };
        assert!((0..5).any(|n| policy.delay_ms(n, None) != other.delay_ms(n, None)));
    }

    #[test]
    fn retry_after_is_a_floor() {
        let policy = RetryPolicy {
            base_delay_ms: 1,
            max_delay_ms: 10,
            ..RetryPolicy::default()
        };
        // Jitter < 10ms, but the server asked for 2 seconds.
        assert_eq!(policy.delay_ms(0, Some(2)), 2000);
    }

    #[test]
    fn huge_attempt_does_not_overflow() {
        let policy = RetryPolicy::default();
        let d = policy.delay_ms(u32::MAX, None);
        assert!(d <= policy.max_delay_ms);
    }

    /// A server answering a canned script of responses, one request
    /// per response, over a single keep-alive connection.
    fn scripted_server(responses: Vec<String>) -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            for response in responses {
                // Consume one request: read until the body (framed by
                // content-length) has fully arrived.
                let mut raw = Vec::new();
                let mut buf = [0u8; 1024];
                loop {
                    let Some(head_end) = raw.windows(4).position(|w| w == b"\r\n\r\n") else {
                        match stream.read(&mut buf) {
                            Ok(0) => return,
                            Ok(n) => raw.extend_from_slice(&buf[..n]),
                            Err(_) => return,
                        }
                        continue;
                    };
                    let head = String::from_utf8_lossy(&raw[..head_end]).to_ascii_lowercase();
                    let need: usize = head
                        .lines()
                        .find_map(|l| l.strip_prefix("content-length:"))
                        .and_then(|v| v.trim().parse().ok())
                        .unwrap_or(0);
                    if raw.len() >= head_end + 4 + need {
                        break;
                    }
                    match stream.read(&mut buf) {
                        Ok(0) => return,
                        Ok(n) => raw.extend_from_slice(&buf[..n]),
                        Err(_) => return,
                    }
                }
                stream.write_all(response.as_bytes()).expect("write");
            }
        });
        addr
    }

    fn canned(status: u16, reason: &str, headers: &str, body: &str) -> String {
        format!(
            "HTTP/1.1 {status} {reason}\r\ncontent-length: {}\r\n{headers}connection: keep-alive\r\n\r\n{body}",
            body.len()
        )
    }

    #[test]
    fn retries_429_until_success_without_sleeping() {
        let addr = scripted_server(vec![
            canned(429, "Too Many Requests", "retry-after: 1\r\n", "{}"),
            canned(429, "Too Many Requests", "", "{}"),
            canned(200, "OK", "", "{\"ok\": true}"),
        ]);
        let mut client = Client::connect(addr, Some(Duration::from_secs(2))).expect("connect");
        let mut sleeper = RecordingSleeper::default();
        let policy = RetryPolicy {
            max_retries: 3,
            base_delay_ms: 10,
            max_delay_ms: 100,
            seed: 4,
        };
        let out = score_with_retries(&mut client, "{\"rows\": [[0.0]]}", &policy, &mut sleeper)
            .expect("io ok");
        assert_eq!(out.response.status, 200);
        assert_eq!(out.retries, 2);
        assert_eq!(sleeper.slept_ms.len(), 2);
        // First delay honored the 1-second Retry-After floor.
        assert_eq!(sleeper.slept_ms[0], 1000);
        assert_eq!(sleeper.slept_ms[1], policy.delay_ms(1, None));
    }

    #[test]
    fn gives_up_after_max_retries_and_non_429_is_not_retried() {
        let addr = scripted_server(vec![
            canned(429, "Too Many Requests", "", "{}"),
            canned(429, "Too Many Requests", "", "{}"),
        ]);
        let mut client = Client::connect(addr, Some(Duration::from_secs(2))).expect("connect");
        let mut sleeper = RecordingSleeper::default();
        let policy = RetryPolicy {
            max_retries: 1,
            base_delay_ms: 1,
            max_delay_ms: 2,
            seed: 0,
        };
        let out = score_with_retries(&mut client, "{\"rows\": [[0.0]]}", &policy, &mut sleeper)
            .expect("io ok");
        assert_eq!(out.response.status, 429);
        assert_eq!(out.retries, 1);

        // A 400 settles immediately: zero sleeps, zero retries.
        let addr = scripted_server(vec![canned(400, "Bad Request", "", "{}")]);
        let mut client = Client::connect(addr, Some(Duration::from_secs(2))).expect("connect");
        let mut sleeper = RecordingSleeper::default();
        let out = score_with_retries(&mut client, "{}", &policy, &mut sleeper).expect("io ok");
        assert_eq!(out.response.status, 400);
        assert_eq!(out.retries, 0);
        assert!(sleeper.slept_ms.is_empty());
    }
}
