//! The scoring daemon: acceptor, worker pool, micro-batcher,
//! bounded admission, graceful drain.
//!
//! ```text
//!                      ┌──────────────┐
//!  TCP accept ───────▶ │ conn queue   │──▶ workers (parse HTTP,
//!  (acceptor thread)   │ (blocking)   │    validate, admit)
//!                      └──────────────┘         │ try_push
//!                                               ▼
//!                      ┌──────────────┐   full → 429 + Retry-After
//!                      │ admission    │   draining → 503
//!                      │ queue (≤ K)  │
//!                      └──────┬───────┘
//!                             ▼ pop (deadline-timed)
//!                      batcher thread: coalesce → `serve::score_rows`
//!                             │ fulfill response slots
//!                             ▼
//!                      workers render JSON, write responses
//! ```
//!
//! Overload degrades gracefully instead of OOMing: the connection
//! hand-off blocks the acceptor (TCP backlog backpressure), the
//! admission queue is a hard bound with non-blocking pushes (excess
//! requests shed with 429), and request bodies/rows are size-capped.
//! Shutdown ([`ServerHandle::shutdown`]) is the SIGTERM-equivalent:
//! it sets the drain flag, wakes the listener with a loopback connect,
//! refuses new scoring work with 503, scores everything already
//! admitted, and joins every thread before returning.

use crate::batcher::{batch_size_bucket, BatchPolicy, BatcherCore};
use crate::clock::{Clock, SystemClock};
use crate::http::{self, HttpLimits, ReadError, Request};
use crate::queue::{Bounded, Pop, PushError};
use crate::wire::{self, RowScore};
use obs::jsonv::JsonV;
use serve::SavedModel;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Connection-handling worker threads.
    pub workers: usize,
    /// Admission-queue capacity K: at most K score requests queued
    /// ahead of the batcher; excess requests shed with 429.
    pub queue_capacity: usize,
    /// Micro-batcher flush policy.
    pub batch: BatchPolicy,
    /// Maximum feature rows in one request (413 beyond).
    pub max_rows_per_request: usize,
    /// HTTP framing limits.
    pub http: HttpLimits,
    /// Socket read-timeout granularity; bounds how long an idle
    /// keep-alive connection can delay drain.
    pub idle_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 128,
            batch: BatchPolicy::default(),
            max_rows_per_request: 1024,
            http: HttpLimits::default(),
            idle_timeout_ms: 200,
        }
    }
}

/// Monotonic counters, all relaxed — totals are read after joins.
#[derive(Default)]
struct Stats {
    connections: AtomicU64,
    http_requests: AtomicU64,
    score_ok: AtomicU64,
    score_shed: AtomicU64,
    score_unavailable: AtomicU64,
    bad_requests: AtomicU64,
    not_found: AtomicU64,
    rows_scored: AtomicU64,
    batches: AtomicU64,
    drained_jobs: AtomicU64,
}

/// A point-in-time copy of the daemon's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted and handled.
    pub connections: u64,
    /// HTTP requests parsed (all endpoints).
    pub http_requests: u64,
    /// `/score` requests answered 200.
    pub score_ok: u64,
    /// `/score` requests shed with 429 (queue full).
    pub score_shed: u64,
    /// `/score` requests refused with 503 (draining).
    pub score_unavailable: u64,
    /// Requests answered 400/405/413.
    pub bad_requests: u64,
    /// Requests answered 404.
    pub not_found: u64,
    /// Rows scored by the batcher.
    pub rows_scored: u64,
    /// Micro-batches flushed.
    pub batches: u64,
    /// Jobs scored after drain began (admitted before shutdown).
    pub drained_jobs: u64,
    /// Admission-queue high-water mark; never exceeds capacity K.
    pub queue_peak: u64,
}

impl Stats {
    fn snapshot(&self, queue_peak: usize) -> StatsSnapshot {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        StatsSnapshot {
            connections: get(&self.connections),
            http_requests: get(&self.http_requests),
            score_ok: get(&self.score_ok),
            score_shed: get(&self.score_shed),
            score_unavailable: get(&self.score_unavailable),
            bad_requests: get(&self.bad_requests),
            not_found: get(&self.not_found),
            rows_scored: get(&self.rows_scored),
            batches: get(&self.batches),
            drained_jobs: get(&self.drained_jobs),
            queue_peak: queue_peak as u64,
        }
    }
}

/// A response slot one worker waits on and the batcher fulfills.
struct Slot {
    result: Mutex<Option<Vec<RowScore>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fulfill(&self, scores: Vec<RowScore>) {
        *self.result.lock().unwrap_or_else(|e| e.into_inner()) = Some(scores);
        self.ready.notify_all();
    }

    fn wait(&self) -> Vec<RowScore> {
        let mut guard = self.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(scores) = guard.take() {
                return scores;
            }
            guard = self.ready.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// One admitted score request.
struct Job {
    rows: Vec<Vec<f64>>,
    slot: Arc<Slot>,
}

struct Shared {
    model: SavedModel,
    config: ServerConfig,
    clock: SystemClock,
    admission: Bounded<Job>,
    draining: AtomicBool,
    stats: Stats,
    registry: Option<Arc<obs::Registry>>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

/// A running daemon. Dropping the handle without calling
/// [`ServerHandle::shutdown`] detaches the threads (they keep
/// serving); call `shutdown` for a graceful, fully joined stop.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    conns: Arc<Bounded<TcpStream>>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

/// Starts the daemon: binds, spawns the acceptor, `config.workers`
/// connection workers, and the batcher thread, then returns.
///
/// `registry` is what `GET /metrics` renders; pass the registry the
/// caller installed (or `None` to serve an empty exposition). The
/// server never installs a registry itself — observation scoping stays
/// with the caller.
pub fn start(
    model: SavedModel,
    config: ServerConfig,
    registry: Option<Arc<obs::Registry>>,
) -> io::Result<ServerHandle> {
    assert!(config.workers > 0, "need at least one worker");
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;

    let conns = Arc::new(Bounded::<TcpStream>::new(config.workers.max(1) * 4));
    let shared = Arc::new(Shared {
        admission: Bounded::new(config.queue_capacity),
        model,
        config,
        clock: SystemClock::new(),
        draining: AtomicBool::new(false),
        stats: Stats::default(),
        registry,
    });

    let acceptor = {
        let shared = Arc::clone(&shared);
        let conns = Arc::clone(&conns);
        std::thread::Builder::new()
            .name("survd-accept".to_string())
            .spawn(move || acceptor_loop(&listener, &shared, &conns))?
    };

    let mut workers = Vec::with_capacity(shared.config.workers);
    for i in 0..shared.config.workers {
        let shared = Arc::clone(&shared);
        let conns = Arc::clone(&conns);
        workers.push(
            std::thread::Builder::new()
                .name(format!("survd-worker-{i}"))
                .spawn(move || worker_loop(&shared, &conns))?,
        );
    }

    let batcher = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("survd-batch".to_string())
            .spawn(move || batcher_loop(&shared))?
    };

    Ok(ServerHandle {
        addr,
        shared,
        conns,
        acceptor: Some(acceptor),
        workers,
        batcher: Some(batcher),
    })
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counter values.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared
            .stats
            .snapshot(self.shared.admission.peak_depth())
    }

    /// Pauses the batcher's intake: admitted jobs stay queued (still
    /// occupying their admission slots) until
    /// [`ServerHandle::resume_batcher`]. The pause is atomic under the
    /// admission-queue lock, so with the batcher paused exactly
    /// `queue_capacity` requests are admitted and every further one
    /// sheds — the deterministic overload hook for tests and drills.
    pub fn pause_batcher(&self) {
        self.shared.admission.pause();
    }

    /// Resumes a paused batcher intake.
    pub fn resume_batcher(&self) {
        self.shared.admission.resume();
    }

    /// Graceful shutdown: stop accepting, refuse new scoring work with
    /// 503, score everything already admitted, join all threads.
    /// Returns the final counters.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Listener wakeup: the acceptor is blocked in accept(); one
        // loopback connect makes it re-check the drain flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // No new connections are coming; drain the hand-off queue into
        // the workers and let them finish their keep-alive loops
        // (draining makes every response a `connection: close`).
        self.conns.close();
        // Admitted jobs drain through the batcher; close overrides a
        // paused queue, so a pause cannot hold shutdown hostage.
        self.shared.admission.close();
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.stats()
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared, conns: &Bounded<TcpStream>) {
    for stream in listener.incoming() {
        if shared.draining() {
            break;
        }
        match stream {
            Ok(stream) => {
                obs::count("survd.connections_accepted", 1);
                if conns.push_wait(stream).is_err() {
                    break; // hand-off queue closed: shutting down
                }
            }
            Err(_) => continue,
        }
    }
}

fn worker_loop(shared: &Shared, conns: &Bounded<TcpStream>) {
    loop {
        match conns.pop_wait(None) {
            Pop::Item(stream) => handle_connection(shared, stream),
            Pop::TimedOut => unreachable!("untimed pop"),
            Pop::Drained => break,
        }
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    shared.stats.connections.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        shared.config.idle_timeout_ms.max(1),
    )));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match http::read_request(&mut reader, &shared.config.http) {
            Ok(request) => {
                shared.stats.http_requests.fetch_add(1, Ordering::Relaxed);
                // Close after this exchange when the client asked to
                // or the daemon is draining.
                let close = request.wants_close() || shared.draining();
                if dispatch(shared, &request, &mut writer, close).is_err() || close {
                    break;
                }
            }
            Err(ReadError::Closed) => break,
            Err(ReadError::IdleTimeout) => {
                if shared.draining() {
                    break;
                }
            }
            Err(ReadError::Malformed(message)) => {
                shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                obs::count("survd.http_400", 1);
                let _ = respond_error(&mut writer, 400, &message, true);
                break;
            }
            Err(ReadError::Io(_)) => break,
        }
    }
}

fn respond_error(
    writer: &mut impl Write,
    status: u16,
    message: &str,
    close: bool,
) -> io::Result<()> {
    http::write_response(
        writer,
        status,
        "application/json",
        &[],
        wire::render_error(message).as_bytes(),
        close,
    )
}

fn dispatch(
    shared: &Shared,
    request: &Request,
    writer: &mut impl Write,
    close: bool,
) -> io::Result<()> {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/score") => handle_score(shared, request, writer, close),
        ("GET", "/score") => {
            shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            obs::count("survd.http_405", 1);
            respond_error(
                writer,
                405,
                "POST a {\"rows\": [...]} body to /score",
                close,
            )
        }
        ("GET", "/healthz") => {
            obs::count("survd.http_healthz", 1);
            let body = healthz_body(shared);
            http::write_response(writer, 200, "application/json", &[], body.as_bytes(), close)
        }
        ("GET", "/metrics") => {
            obs::count("survd.http_metrics", 1);
            let body = match &shared.registry {
                Some(registry) => obs::render_metrics(&registry.snapshot()),
                None => "# no registry installed\n".to_string(),
            };
            http::write_response(writer, 200, "text/plain", &[], body.as_bytes(), close)
        }
        _ => {
            shared.stats.not_found.fetch_add(1, Ordering::Relaxed);
            obs::count("survd.http_404", 1);
            respond_error(writer, 404, "unknown endpoint", close)
        }
    }
}

fn healthz_body(shared: &Shared) -> String {
    JsonV::obj(vec![
        (
            "status",
            JsonV::Str(if shared.draining() { "draining" } else { "ok" }.to_string()),
        ),
        ("queue_depth", JsonV::UInt(shared.admission.len() as u64)),
        (
            "queue_capacity",
            JsonV::UInt(shared.admission.capacity() as u64),
        ),
        (
            "model_trees",
            JsonV::UInt(shared.model.forest.tree_count() as u64),
        ),
        (
            "model_features",
            JsonV::UInt(shared.model.forest.feature_names().len() as u64),
        ),
        ("threshold", JsonV::Float(shared.model.threshold())),
    ])
    .render()
}

fn handle_score(
    shared: &Shared,
    request: &Request,
    writer: &mut impl Write,
    close: bool,
) -> io::Result<()> {
    obs::count("survd.http_score", 1);
    let parsed = {
        let _span = obs::span!("survd_parse");
        let body = match std::str::from_utf8(&request.body) {
            Ok(body) => body,
            Err(_) => {
                shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                obs::count("survd.http_400", 1);
                return respond_error(writer, 400, "body is not UTF-8", close);
            }
        };
        wire::parse_score_request(
            body,
            shared.model.forest.feature_names().len(),
            shared.config.max_rows_per_request,
        )
    };
    let score_request = match parsed {
        Ok(r) => r,
        Err(message) => {
            shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            let oversized = message.contains("per-request limit");
            obs::count("survd.http_400", 1);
            return respond_error(writer, if oversized { 413 } else { 400 }, &message, close);
        }
    };

    if shared.draining() {
        shared
            .stats
            .score_unavailable
            .fetch_add(1, Ordering::Relaxed);
        obs::count("survd.http_503", 1);
        return respond_error(writer, 503, "draining: not accepting new work", close);
    }

    let slot = Arc::new(Slot::new());
    let job = Job {
        rows: score_request.rows,
        slot: Arc::clone(&slot),
    };
    match shared.admission.try_push(job) {
        Ok(depth) => {
            obs::gauge("survd.queue_depth", depth as f64);
            let results = {
                let _span = obs::span!("survd_wait");
                slot.wait()
            };
            shared.stats.score_ok.fetch_add(1, Ordering::Relaxed);
            obs::count("survd.http_200", 1);
            let _span = obs::span!("survd_respond");
            let body = wire::render_score_response(shared.model.threshold(), &results);
            http::write_response(writer, 200, "application/json", &[], body.as_bytes(), close)
        }
        Err(PushError::Full(_)) => {
            shared.stats.score_shed.fetch_add(1, Ordering::Relaxed);
            obs::count("survd.shed_429", 1);
            http::write_response(
                writer,
                429,
                "application/json",
                &[("retry-after", "1".to_string())],
                wire::render_error("admission queue full, retry later").as_bytes(),
                close,
            )
        }
        Err(PushError::Closed(_)) => {
            shared
                .stats
                .score_unavailable
                .fetch_add(1, Ordering::Relaxed);
            obs::count("survd.http_503", 1);
            respond_error(writer, 503, "draining: not accepting new work", close)
        }
    }
}

fn batcher_loop(shared: &Shared) {
    let mut core: BatcherCore<Job> = BatcherCore::new(shared.config.batch);
    loop {
        let now = shared.clock.now_ms();
        if core.due(now) {
            flush(shared, &mut core);
            continue;
        }
        let timeout = core
            .deadline_ms()
            .map(|deadline| Duration::from_millis(deadline.saturating_sub(now).max(1)));
        match shared.admission.pop_wait(timeout) {
            Pop::Item(job) => {
                let rows = job.rows.len();
                core.push(job, rows, shared.clock.now_ms());
                obs::gauge("survd.queue_depth", shared.admission.len() as f64);
            }
            Pop::TimedOut => {} // due() decides on the next pass
            Pop::Drained => {
                while !core.is_empty() {
                    flush(shared, &mut core);
                }
                break;
            }
        }
    }
}

fn flush(shared: &Shared, core: &mut BatcherCore<Job>) {
    let jobs = core.take_batch();
    if jobs.is_empty() {
        return;
    }
    let total_rows: usize = jobs.iter().map(|j| j.rows.len()).sum();
    let mut all_rows = Vec::with_capacity(total_rows);
    for job in &jobs {
        all_rows.extend(job.rows.iter().cloned());
    }
    let batch = {
        let _span = obs::span!("survd_score");
        serve::score_rows(
            &shared.model.forest,
            &all_rows,
            shared.model.meta.positive_fraction,
        )
    };
    debug_assert_eq!(batch.rows.len(), total_rows);

    shared.stats.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .rows_scored
        .fetch_add(total_rows as u64, Ordering::Relaxed);
    if shared.draining() {
        shared
            .stats
            .drained_jobs
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
    }
    if obs::enabled() {
        obs::count_many(&[
            ("survd.batches", 1),
            ("survd.rows_scored", total_rows as u64),
            (batch_size_bucket(total_rows), 1),
        ]);
    }

    let mut scored = batch.rows.into_iter();
    for job in jobs {
        let scores: Vec<RowScore> = scored
            .by_ref()
            .take(job.rows.len())
            .map(|row| RowScore::from_scored(&row))
            .collect();
        job.slot.fulfill(scores);
    }
}
