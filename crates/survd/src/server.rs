//! The scoring daemon: acceptor, worker pool, micro-batcher,
//! bounded admission, graceful drain, crash-safe model hot-swap.
//!
//! ```text
//!                      ┌──────────────┐
//!  TCP accept ───────▶ │ conn queue   │──▶ workers (parse HTTP,
//!  (acceptor thread)   │ (blocking)   │    validate, admit)
//!                      └──────────────┘         │ try_push
//!                                               ▼
//!                      ┌──────────────┐   full → 429 + Retry-After
//!                      │ admission    │   draining → 503
//!                      │ queue (≤ K)  │   late → 503 (degraded)
//!                      └──────┬───────┘
//!                             ▼ pop (deadline-timed)
//!                      batcher thread: coalesce → score against ONE
//!                      generation (`ModelSlot::current` per batch)
//!                             │ fulfill response slots
//!                             ▼
//!                      workers render JSON, write responses
//! ```
//!
//! Overload degrades gracefully instead of OOMing: the connection
//! hand-off blocks the acceptor (TCP backlog backpressure), the
//! admission queue is a hard bound with non-blocking pushes (excess
//! requests shed with 429), request bodies/rows are size-capped, and —
//! when a per-request deadline is configured — work that aged past its
//! deadline while queued is answered 503 *before* wasting a batcher
//! slot on scoring it.
//!
//! **Hot-swap protocol.** The live model sits behind a [`ModelSlot`]:
//! a mutex-guarded `Arc<Generation>` with a monotonically increasing
//! generation id. `POST /reload` validates a candidate model document
//! (typed parse, feature-schema equality with the live generation,
//! byte-deterministic render round-trip) and only then swaps the slot;
//! a corrupt candidate is refused with a typed 422 while the old
//! generation keeps serving. The batcher pins one `Arc<Generation>`
//! per batch, so a batch is never scored by a mix of generations, and
//! every response records the generation that scored it.
//!
//! Shutdown ([`ServerHandle::shutdown`]) is the SIGTERM-equivalent:
//! it sets the drain flag, wakes the listener with a loopback connect,
//! refuses new scoring work with 503, scores everything already
//! admitted, and joins every thread before returning.

use crate::batcher::{batch_size_bucket, BatchPolicy, BatcherCore};
use crate::clock::{Clock, SystemClock};
use crate::http::{self, HttpLimits, ReadError, Request};
use crate::latency::{STAGE_BATCH_WAIT, STAGE_QUEUE_WAIT, STAGE_SCORE, STAGE_TOTAL, STAGE_WRITE};
use crate::queue::{Bounded, Pop, PushError};
use crate::wire::{self, RowScore};
use obs::jsonv::JsonV;
use obs::{DriftMonitor, DRIFT_BUCKETS};
use serve::SavedModel;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Connection-handling worker threads.
    pub workers: usize,
    /// Admission-queue capacity K: at most K score requests queued
    /// ahead of the batcher; excess requests shed with 429.
    pub queue_capacity: usize,
    /// Micro-batcher flush policy.
    pub batch: BatchPolicy,
    /// Maximum feature rows in one request (413 beyond).
    pub max_rows_per_request: usize,
    /// HTTP framing limits.
    pub http: HttpLimits,
    /// Socket read-timeout granularity; bounds how long an idle
    /// keep-alive connection can delay drain.
    pub idle_timeout_ms: u64,
    /// Per-request scoring deadline in milliseconds; `0` disables.
    /// A request that waited in the admission queue longer than this
    /// is answered 503 at flush time instead of being scored — late
    /// work is shed before it wastes a batcher slot.
    pub request_deadline_ms: u64,
    /// Base seed for request trace ids: request N gets
    /// `forest::parallel::derive_seed(trace_seed, N)`, echoed back as
    /// an `x-trace-id` response header and stamped on the request's
    /// lifecycle events.
    pub trace_seed: u64,
    /// Training-time score histogram seeding the drift monitor's
    /// reference side (`deterministic.probability_histogram` from
    /// `scoring.json`, via `serve::training_score_histogram`). `None`
    /// disables drift monitoring entirely; an all-zero reference
    /// still counts live scores but reports zero divergence.
    pub drift_reference: Option<[u64; DRIFT_BUCKETS]>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 128,
            batch: BatchPolicy::default(),
            max_rows_per_request: 1024,
            http: HttpLimits::default(),
            idle_timeout_ms: 200,
            request_deadline_ms: 0,
            trace_seed: 0x05DB_2018,
            drift_reference: None,
        }
    }
}

/// Monotonic counters, all relaxed — totals are read after joins.
#[derive(Default)]
struct Stats {
    connections: AtomicU64,
    http_requests: AtomicU64,
    score_ok: AtomicU64,
    score_shed: AtomicU64,
    score_unavailable: AtomicU64,
    score_degraded: AtomicU64,
    bad_requests: AtomicU64,
    not_found: AtomicU64,
    rows_scored: AtomicU64,
    batches: AtomicU64,
    drained_jobs: AtomicU64,
    reloads_ok: AtomicU64,
    reloads_rejected: AtomicU64,
}

/// A point-in-time copy of the daemon's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted and handled.
    pub connections: u64,
    /// HTTP requests parsed (all endpoints).
    pub http_requests: u64,
    /// `/score` requests answered 200.
    pub score_ok: u64,
    /// `/score` requests shed with 429 (queue full).
    pub score_shed: u64,
    /// `/score` requests refused with 503 (draining).
    pub score_unavailable: u64,
    /// `/score` requests answered 503 because they aged past the
    /// per-request deadline before the batcher reached them.
    pub score_degraded: u64,
    /// Requests answered 400/405/408/413/431/501.
    pub bad_requests: u64,
    /// Requests answered 404.
    pub not_found: u64,
    /// Rows scored by the batcher.
    pub rows_scored: u64,
    /// Micro-batches flushed.
    pub batches: u64,
    /// Jobs scored after drain began (admitted before shutdown).
    pub drained_jobs: u64,
    /// `/reload` requests that validated and swapped the model.
    pub reloads_ok: u64,
    /// `/reload` requests refused with a typed 422.
    pub reloads_rejected: u64,
    /// Admission-queue high-water mark; never exceeds capacity K.
    pub queue_peak: u64,
}

impl Stats {
    fn snapshot(&self, queue_peak: usize) -> StatsSnapshot {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        StatsSnapshot {
            connections: get(&self.connections),
            http_requests: get(&self.http_requests),
            score_ok: get(&self.score_ok),
            score_shed: get(&self.score_shed),
            score_unavailable: get(&self.score_unavailable),
            score_degraded: get(&self.score_degraded),
            bad_requests: get(&self.bad_requests),
            not_found: get(&self.not_found),
            rows_scored: get(&self.rows_scored),
            batches: get(&self.batches),
            drained_jobs: get(&self.drained_jobs),
            reloads_ok: get(&self.reloads_ok),
            reloads_rejected: get(&self.reloads_rejected),
            queue_peak: queue_peak as u64,
        }
    }
}

/// One immutable model generation: the unit the hot-swap protocol
/// exchanges. Ids start at 1 and increase by one per admitted reload.
pub struct Generation {
    /// Monotonic generation counter.
    pub id: u64,
    /// The model serving this generation.
    pub model: SavedModel,
}

/// The swappable model slot. Readers clone the `Arc` (one lock hold,
/// no copy of the forest); a swap installs a new `Arc` atomically
/// under the same lock. In-flight batches keep their pinned `Arc`, so
/// old generations die only after their last batch completes.
pub struct ModelSlot {
    current: Mutex<Arc<Generation>>,
}

impl ModelSlot {
    /// Wraps `model` as generation 1. Forces the model's inference
    /// kernel so the first batch never pays the layout-build cost.
    pub fn new(model: SavedModel) -> ModelSlot {
        model.kernel();
        ModelSlot {
            current: Mutex::new(Arc::new(Generation { id: 1, model })),
        }
    }

    /// The live generation.
    pub fn current(&self) -> Arc<Generation> {
        Arc::clone(&self.current.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Installs `model` as the next generation; returns its id. The
    /// kernel is built *before* taking the lock, so a slow layout
    /// build never stalls concurrent batch flushes pinning the
    /// current generation.
    pub fn swap(&self, model: SavedModel) -> u64 {
        model.kernel();
        let mut guard = self.current.lock().unwrap_or_else(|e| e.into_inner());
        let id = guard.id + 1;
        *guard = Arc::new(Generation { id, model });
        id
    }
}

/// Batcher-side lifecycle timings for one scored request, handed back
/// with the reply so the worker can finish the trace (write + total)
/// and emit the per-request lifecycle event.
#[derive(Debug, Clone, Copy)]
struct Lifecycle {
    /// Admission push → batcher pop, milliseconds.
    queue_wait_ms: f64,
    /// Batcher pop → flush start, milliseconds.
    batch_wait_ms: f64,
    /// This request's share of the batch's kernel time (per-row share
    /// × its rows), milliseconds.
    score_ms: f64,
}

/// What the batcher hands back through a response slot.
enum Reply {
    /// Scored by exactly one generation.
    Scored {
        generation: u64,
        threshold: f64,
        scores: Vec<RowScore>,
        lifecycle: Lifecycle,
    },
    /// Aged past the per-request deadline before scoring; the worker
    /// answers 503 without the batcher having spent a slot on it.
    Degraded,
}

/// A response slot one worker waits on and the batcher fulfills.
struct Slot {
    result: Mutex<Option<Reply>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fulfill(&self, reply: Reply) {
        *self.result.lock().unwrap_or_else(|e| e.into_inner()) = Some(reply);
        self.ready.notify_all();
    }

    fn wait(&self) -> Reply {
        let mut guard = self.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(reply) = guard.take() {
                return reply;
            }
            guard = self.ready.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// One admitted score request.
struct Job {
    rows: Vec<Vec<f64>>,
    slot: Arc<Slot>,
    admitted_ms: u64,
    /// Stamped by the batcher when it pops the job; `admitted_ms`
    /// until then.
    popped_ms: u64,
}

struct Shared {
    model: ModelSlot,
    config: ServerConfig,
    clock: Arc<dyn Clock>,
    admission: Bounded<Job>,
    draining: AtomicBool,
    stats: Stats,
    registry: Option<Arc<obs::Registry>>,
    /// Monotonic request sequence feeding trace-id derivation.
    trace_seq: AtomicU64,
    drift: Option<Arc<DriftMonitor>>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

/// A running daemon. Dropping the handle without calling
/// [`ServerHandle::shutdown`] detaches the threads (they keep
/// serving); call `shutdown` for a graceful, fully joined stop.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    conns: Arc<Bounded<TcpStream>>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
}

/// Starts the daemon: binds, spawns the acceptor, `config.workers`
/// connection workers, and the batcher thread, then returns.
///
/// `registry` is what `GET /metrics` renders; pass the registry the
/// caller installed (or `None` to serve an empty exposition). The
/// server never installs a registry itself — observation scoping stays
/// with the caller.
pub fn start(
    model: SavedModel,
    config: ServerConfig,
    registry: Option<Arc<obs::Registry>>,
) -> io::Result<ServerHandle> {
    start_with_clock(model, config, registry, Arc::new(SystemClock::new()))
}

/// [`start`] with an injected [`Clock`] — lifecycle timestamps (admit,
/// queue-wait, batch-wait, score, write) all read this clock, so tests
/// can drive a `ManualClock` instead of sleeping.
pub fn start_with_clock(
    model: SavedModel,
    config: ServerConfig,
    registry: Option<Arc<obs::Registry>>,
    clock: Arc<dyn Clock>,
) -> io::Result<ServerHandle> {
    assert!(config.workers > 0, "need at least one worker");
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;

    let conns = Arc::new(Bounded::<TcpStream>::new(config.workers.max(1) * 4));
    let drift = config
        .drift_reference
        .map(|reference| Arc::new(DriftMonitor::new(reference)));
    let shared = Arc::new(Shared {
        admission: Bounded::new(config.queue_capacity),
        model: ModelSlot::new(model),
        config,
        clock,
        draining: AtomicBool::new(false),
        stats: Stats::default(),
        registry,
        trace_seq: AtomicU64::new(0),
        drift,
    });

    let acceptor = {
        let shared = Arc::clone(&shared);
        let conns = Arc::clone(&conns);
        std::thread::Builder::new()
            .name("survd-accept".to_string())
            .spawn(move || acceptor_loop(&listener, &shared, &conns))?
    };

    let mut workers = Vec::with_capacity(shared.config.workers);
    for i in 0..shared.config.workers {
        let shared = Arc::clone(&shared);
        let conns = Arc::clone(&conns);
        workers.push(
            std::thread::Builder::new()
                .name(format!("survd-worker-{i}"))
                .spawn(move || worker_loop(&shared, &conns))?,
        );
    }

    let batcher = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("survd-batch".to_string())
            .spawn(move || batcher_loop(&shared))?
    };

    Ok(ServerHandle {
        addr,
        shared,
        conns,
        acceptor: Some(acceptor),
        workers,
        batcher: Some(batcher),
    })
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counter values.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared
            .stats
            .snapshot(self.shared.admission.peak_depth())
    }

    /// The live model generation id (1 until the first reload).
    pub fn generation(&self) -> u64 {
        self.shared.model.current().id
    }

    /// The prediction-drift monitor, when the config seeded one
    /// (`drift_reference`). Clone the `Arc` before
    /// [`ServerHandle::shutdown`] to snapshot the final histograms
    /// after every thread has joined.
    pub fn drift_monitor(&self) -> Option<Arc<DriftMonitor>> {
        self.shared.drift.clone()
    }

    /// Pauses the batcher's intake: admitted jobs stay queued (still
    /// occupying their admission slots) until
    /// [`ServerHandle::resume_batcher`]. The pause is atomic under the
    /// admission-queue lock, so with the batcher paused exactly
    /// `queue_capacity` requests are admitted and every further one
    /// sheds — the deterministic overload hook for tests and drills.
    pub fn pause_batcher(&self) {
        self.shared.admission.pause();
    }

    /// Resumes a paused batcher intake.
    pub fn resume_batcher(&self) {
        self.shared.admission.resume();
    }

    /// Graceful shutdown: stop accepting, refuse new scoring work with
    /// 503, score everything already admitted, join all threads.
    /// Returns the final counters.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Listener wakeup: the acceptor is blocked in accept(); one
        // loopback connect makes it re-check the drain flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // No new connections are coming; drain the hand-off queue into
        // the workers and let them finish their keep-alive loops
        // (draining makes every response a `connection: close`).
        self.conns.close();
        // Admitted jobs drain through the batcher; close overrides a
        // paused queue, so a pause cannot hold shutdown hostage.
        self.shared.admission.close();
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.stats()
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared, conns: &Bounded<TcpStream>) {
    for stream in listener.incoming() {
        if shared.draining() {
            break;
        }
        match stream {
            Ok(stream) => {
                obs::count("survd.connections_accepted", 1);
                if conns.push_wait(stream).is_err() {
                    break; // hand-off queue closed: shutting down
                }
            }
            Err(_) => continue,
        }
    }
}

fn worker_loop(shared: &Shared, conns: &Bounded<TcpStream>) {
    loop {
        match conns.pop_wait(None) {
            Pop::Item(stream) => handle_connection(shared, stream),
            Pop::TimedOut => unreachable!("untimed pop"),
            Pop::Drained => break,
        }
    }
}

/// The obs counter a protocol refusal increments, by status class.
fn refusal_counter(status: u16) -> &'static str {
    match status {
        408 => "survd.http_408",
        413 => "survd.http_413",
        431 => "survd.http_431",
        501 => "survd.http_501",
        _ => "survd.http_400",
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    shared.stats.connections.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        shared.config.idle_timeout_ms.max(1),
    )));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match http::read_request(&mut reader, &shared.config.http) {
            Ok(request) => {
                shared.stats.http_requests.fetch_add(1, Ordering::Relaxed);
                // Close after this exchange when the client asked to
                // or the daemon is draining.
                let close = request.wants_close() || shared.draining();
                if dispatch(shared, &request, &mut writer, close).is_err() || close {
                    break;
                }
            }
            Err(ReadError::Closed) => break,
            Err(ReadError::IdleTimeout) => {
                if shared.draining() {
                    break;
                }
            }
            Err(ReadError::Malformed { status, message }) => {
                shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                obs::count(refusal_counter(status), 1);
                let _ = respond_error(&mut writer, status, &message, true);
                break;
            }
            Err(ReadError::Io(_)) => break,
        }
    }
}

fn respond_error(
    writer: &mut impl Write,
    status: u16,
    message: &str,
    close: bool,
) -> io::Result<()> {
    http::write_response(
        writer,
        status,
        "application/json",
        &[],
        wire::render_error(message).as_bytes(),
        close,
    )
}

fn dispatch(
    shared: &Shared,
    request: &Request,
    writer: &mut impl Write,
    close: bool,
) -> io::Result<()> {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/score") => handle_score(shared, request, writer, close),
        ("POST", "/reload") => handle_reload(shared, request, writer, close),
        ("GET", "/score") => {
            shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            obs::count("survd.http_405", 1);
            respond_error(
                writer,
                405,
                "POST a {\"rows\": [...]} body to /score",
                close,
            )
        }
        ("GET", "/reload") => {
            shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            obs::count("survd.http_405", 1);
            respond_error(
                writer,
                405,
                "POST a survdb-model/v1 document to /reload",
                close,
            )
        }
        ("GET", "/healthz") => {
            obs::count("survd.http_healthz", 1);
            let body = healthz_body(shared);
            http::write_response(writer, 200, "application/json", &[], body.as_bytes(), close)
        }
        ("GET", "/metrics") => {
            obs::count("survd.http_metrics", 1);
            let body = match &shared.registry {
                Some(registry) => obs::render_metrics(&registry.snapshot()),
                None => "# no registry installed\n".to_string(),
            };
            http::write_response(writer, 200, "text/plain", &[], body.as_bytes(), close)
        }
        _ => {
            shared.stats.not_found.fetch_add(1, Ordering::Relaxed);
            obs::count("survd.http_404", 1);
            respond_error(writer, 404, "unknown endpoint", close)
        }
    }
}

fn healthz_body(shared: &Shared) -> String {
    let generation = shared.model.current();
    JsonV::obj(vec![
        (
            "status",
            JsonV::Str(if shared.draining() { "draining" } else { "ok" }.to_string()),
        ),
        ("generation", JsonV::UInt(generation.id)),
        ("queue_depth", JsonV::UInt(shared.admission.len() as u64)),
        (
            "queue_capacity",
            JsonV::UInt(shared.admission.capacity() as u64),
        ),
        (
            "model_trees",
            JsonV::UInt(generation.model.forest.tree_count() as u64),
        ),
        (
            "model_features",
            JsonV::UInt(generation.model.forest.feature_names().len() as u64),
        ),
        ("threshold", JsonV::Float(generation.model.threshold())),
    ])
    .render()
}

fn handle_score(
    shared: &Shared,
    request: &Request,
    writer: &mut impl Write,
    close: bool,
) -> io::Result<()> {
    obs::count("survd.http_score", 1);
    let parsed = {
        let _span = obs::span!("survd_parse");
        let body = match std::str::from_utf8(&request.body) {
            Ok(body) => body,
            Err(_) => {
                shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
                obs::count("survd.http_400", 1);
                return respond_error(writer, 400, "body is not UTF-8", close);
            }
        };
        // The feature schema is a swap invariant (reload enforces
        // equality), so validating against the current generation is
        // race-free even while a swap is in flight.
        wire::parse_score_request(
            body,
            shared.model.current().model.forest.feature_names().len(),
            shared.config.max_rows_per_request,
        )
    };
    let score_request = match parsed {
        Ok(r) => r,
        Err(message) => {
            shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            let oversized = message.contains("per-request limit");
            obs::count("survd.http_400", 1);
            return respond_error(writer, if oversized { 413 } else { 400 }, &message, close);
        }
    };

    if shared.draining() {
        shared
            .stats
            .score_unavailable
            .fetch_add(1, Ordering::Relaxed);
        obs::count("survd.http_503", 1);
        return respond_error(writer, 503, "draining: not accepting new work", close);
    }

    // Lifecycle trace: every admitted-or-refused request carries a
    // splitmix64-derived id, echoed back as `x-trace-id` so a client
    // latency outlier can be joined against the daemon's event log.
    let trace_id = forest::parallel::derive_seed(
        shared.config.trace_seed,
        shared.trace_seq.fetch_add(1, Ordering::Relaxed),
    );
    let trace_header = || ("x-trace-id", format!("{trace_id:016x}"));

    let slot = Arc::new(Slot::new());
    let admitted_ms = shared.clock.now_ms();
    let job = Job {
        rows: score_request.rows,
        slot: Arc::clone(&slot),
        admitted_ms,
        popped_ms: admitted_ms,
    };
    match shared.admission.try_push(job) {
        Ok(depth) => {
            obs::gauge("survd.queue_depth", depth as f64);
            let reply = {
                let _span = obs::span!("survd_wait");
                slot.wait()
            };
            match reply {
                Reply::Scored {
                    generation,
                    threshold,
                    scores,
                    lifecycle,
                } => {
                    shared.stats.score_ok.fetch_add(1, Ordering::Relaxed);
                    obs::count("survd.http_200", 1);
                    let reply_ms = shared.clock.now_ms();
                    let result = {
                        let _span = obs::span!("survd_respond");
                        let body = wire::render_score_response(generation, threshold, &scores);
                        http::write_response(
                            writer,
                            200,
                            "application/json",
                            &[trace_header()],
                            body.as_bytes(),
                            close,
                        )
                    };
                    if obs::enabled() {
                        let written_ms = shared.clock.now_ms();
                        let write_ms = written_ms.saturating_sub(reply_ms) as f64;
                        let total_ms = written_ms.saturating_sub(admitted_ms) as f64;
                        obs::observe(STAGE_WRITE, write_ms);
                        obs::observe(STAGE_TOTAL, total_ms);
                        obs::debug!(
                            "survd",
                            "trace={trace_id:016x} queue_wait_ms={} batch_wait_ms={} \
                             score_ms={} write_ms={write_ms} total_ms={total_ms}",
                            lifecycle.queue_wait_ms,
                            lifecycle.batch_wait_ms,
                            lifecycle.score_ms,
                        );
                    }
                    result
                }
                Reply::Degraded => {
                    shared.stats.score_degraded.fetch_add(1, Ordering::Relaxed);
                    obs::count("survd.degraded_503", 1);
                    http::write_retry_response(
                        writer,
                        503,
                        &[trace_header()],
                        wire::render_error("deadline exceeded before scoring, retry later")
                            .as_bytes(),
                        close,
                    )
                }
            }
        }
        Err(PushError::Full(_)) => {
            shared.stats.score_shed.fetch_add(1, Ordering::Relaxed);
            obs::count("survd.shed_429", 1);
            http::write_retry_response(
                writer,
                429,
                &[trace_header()],
                wire::render_error("admission queue full, retry later").as_bytes(),
                close,
            )
        }
        Err(PushError::Closed(_)) => {
            shared
                .stats
                .score_unavailable
                .fetch_add(1, Ordering::Relaxed);
            obs::count("survd.http_503", 1);
            respond_error(writer, 503, "draining: not accepting new work", close)
        }
    }
}

/// Validates a reload candidate against the live generation. Returns
/// the parsed model on success, the 422 error body message otherwise.
fn validate_candidate(shared: &Shared, body: &str) -> Result<SavedModel, String> {
    let candidate =
        SavedModel::parse(body).map_err(|e| format!("candidate model rejected: {e}"))?;
    let live = shared.model.current();
    let live_features = live.model.forest.feature_names();
    if candidate.forest.feature_names() != live_features {
        return Err(format!(
            "candidate feature schema {:?} differs from the live generation's {:?}",
            candidate.forest.feature_names(),
            live_features
        ));
    }
    // Byte-deterministic round-trip: the canonical render must parse
    // back and re-render identically, or the candidate would not be
    // crash-safe to persist and reload.
    let first = candidate.render();
    let reparsed = SavedModel::parse(&first)
        .map_err(|e| format!("candidate render does not re-parse: {e}"))?;
    if reparsed.render() != first {
        return Err("candidate model does not round-trip byte-deterministically".to_string());
    }
    Ok(candidate)
}

fn handle_reload(
    shared: &Shared,
    request: &Request,
    writer: &mut impl Write,
    close: bool,
) -> io::Result<()> {
    obs::count("survd.http_reload", 1);
    if shared.draining() {
        shared
            .stats
            .score_unavailable
            .fetch_add(1, Ordering::Relaxed);
        obs::count("survd.http_503", 1);
        return respond_error(writer, 503, "draining: not accepting new work", close);
    }
    let body = match std::str::from_utf8(&request.body) {
        Ok(body) => body,
        Err(_) => {
            shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            obs::count("survd.http_400", 1);
            return respond_error(writer, 400, "body is not UTF-8", close);
        }
    };
    let candidate = {
        let _span = obs::span!("survd_reload_validate");
        validate_candidate(shared, body)
    };
    match candidate {
        Ok(model) => {
            let tree_count = model.forest.tree_count();
            let feature_count = model.forest.feature_names().len();
            let generation = shared.model.swap(model);
            shared.stats.reloads_ok.fetch_add(1, Ordering::Relaxed);
            obs::count("survd.reload_200", 1);
            let body = wire::render_reload_response(generation, tree_count, feature_count);
            http::write_response(writer, 200, "application/json", &[], body.as_bytes(), close)
        }
        Err(message) => {
            shared
                .stats
                .reloads_rejected
                .fetch_add(1, Ordering::Relaxed);
            obs::count("survd.reload_422", 1);
            respond_error(writer, 422, &message, close)
        }
    }
}

fn batcher_loop(shared: &Shared) {
    let mut core: BatcherCore<Job> = BatcherCore::new(shared.config.batch);
    loop {
        let now = shared.clock.now_ms();
        if core.due(now) {
            flush(shared, &mut core);
            continue;
        }
        let timeout = core
            .deadline_ms()
            .map(|deadline| Duration::from_millis(deadline.saturating_sub(now).max(1)));
        match shared.admission.pop_wait(timeout) {
            Pop::Item(mut job) => {
                let rows = job.rows.len();
                let popped = shared.clock.now_ms();
                job.popped_ms = popped;
                core.push(job, rows, popped);
                obs::gauge("survd.queue_depth", shared.admission.len() as f64);
            }
            Pop::TimedOut => {} // due() decides on the next pass
            Pop::Drained => {
                while !core.is_empty() {
                    flush(shared, &mut core);
                }
                break;
            }
        }
    }
}

fn flush(shared: &Shared, core: &mut BatcherCore<Job>) {
    let jobs = core.take_batch();
    if jobs.is_empty() {
        return;
    }
    if shared.draining() {
        shared
            .stats
            .drained_jobs
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
    }

    // Degradation: answer work that aged past its deadline with 503
    // *before* spending scoring time on it. Disabled when the deadline
    // is 0. Drain overrides degradation — an admitted request must be
    // scored and answered during shutdown, never dropped.
    let deadline = shared.config.request_deadline_ms;
    let (live, late): (Vec<Job>, Vec<Job>) = if deadline == 0 || shared.draining() {
        (jobs, Vec::new())
    } else {
        let now = shared.clock.now_ms();
        jobs.into_iter()
            .partition(|job| now.saturating_sub(job.admitted_ms) <= deadline)
    };
    for job in late {
        job.slot.fulfill(Reply::Degraded);
    }
    if live.is_empty() {
        return;
    }

    // Pin ONE generation for the whole batch: every row in a batch is
    // scored by the same model, and the response records its id.
    let generation = shared.model.current();
    let total_rows: usize = live.iter().map(|j| j.rows.len()).sum();
    let mut all_rows = Vec::with_capacity(total_rows);
    for job in &live {
        all_rows.extend(job.rows.iter().cloned());
    }
    // Queue-wait (push → pop) and batch-wait (pop → flush) close here,
    // one observation per live job — the counting identity the latency
    // artifact validator pins (observations == 200 responses).
    let flush_ms = shared.clock.now_ms();
    if obs::enabled() {
        for job in &live {
            obs::observe(
                STAGE_QUEUE_WAIT,
                job.popped_ms.saturating_sub(job.admitted_ms) as f64,
            );
            obs::observe(
                STAGE_BATCH_WAIT,
                flush_ms.saturating_sub(job.popped_ms) as f64,
            );
        }
    }
    let batch = {
        let _span = obs::span!("survd_score");
        serve::score_rows_with(
            &generation.model.kernel(),
            &all_rows,
            generation.model.meta.positive_fraction,
        )
    };
    debug_assert_eq!(batch.rows.len(), total_rows);
    let score_ms = shared.clock.now_ms().saturating_sub(flush_ms) as f64;
    // One score-stage observation per row (each carrying the per-row
    // share of the kernel time), so the sketch's observation count
    // equals rows scored.
    let score_per_row_ms = score_ms / total_rows.max(1) as f64;
    if obs::enabled() {
        obs::observe_n(STAGE_SCORE, score_per_row_ms, total_rows as u64);
    }

    // Feed every scored probability into the drift monitor and mirror
    // the calibration buckets into registry counters.
    if let Some(monitor) = &shared.drift {
        let mut buckets = [0u64; DRIFT_BUCKETS];
        for row in &batch.rows {
            buckets[monitor.record(row.positive)] += 1;
        }
        if obs::enabled() {
            const BUCKET_COUNTERS: [&str; DRIFT_BUCKETS] = [
                "survd.drift.bucket_0",
                "survd.drift.bucket_1",
                "survd.drift.bucket_2",
                "survd.drift.bucket_3",
                "survd.drift.bucket_4",
                "survd.drift.bucket_5",
                "survd.drift.bucket_6",
                "survd.drift.bucket_7",
                "survd.drift.bucket_8",
                "survd.drift.bucket_9",
            ];
            let increments: Vec<(&'static str, u64)> = BUCKET_COUNTERS
                .iter()
                .zip(buckets)
                .filter(|&(_, count)| count > 0)
                .map(|(&name, count)| (name, count))
                .collect();
            obs::count_many(&increments);
            obs::gauge("survd.drift.divergence", monitor.snapshot().divergence());
        }
    }

    shared.stats.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .rows_scored
        .fetch_add(total_rows as u64, Ordering::Relaxed);
    if obs::enabled() {
        obs::count_many(&[
            ("survd.batches", 1),
            ("survd.rows_scored", total_rows as u64),
            (batch_size_bucket(total_rows), 1),
        ]);
    }

    let threshold = generation.model.threshold();
    let mut scored = batch.rows.into_iter();
    for job in live {
        let scores: Vec<RowScore> = scored
            .by_ref()
            .take(job.rows.len())
            .map(|row| RowScore::from_scored(&row))
            .collect();
        job.slot.fulfill(Reply::Scored {
            generation: generation.id,
            threshold,
            scores,
            lifecycle: Lifecycle {
                queue_wait_ms: job.popped_ms.saturating_sub(job.admitted_ms) as f64,
                batch_wait_ms: flush_ms.saturating_sub(job.popped_ms) as f64,
                score_ms: score_per_row_ms * job.rows.len() as f64,
            },
        });
    }
}
