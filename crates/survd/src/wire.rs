//! The `/score` request/response JSON, over `obs::jsonv` so rendering
//! is byte-deterministic.
//!
//! Request body:
//!
//! ```json
//! { "rows": [[0.1, 0.2, ...], ...] }
//! ```
//!
//! Response body (`survdb-score-response/v2`):
//!
//! ```json
//! {
//!   "schema": "survdb-score-response/v2",
//!   "generation": 1,
//!   "threshold": 0.75,
//!   "results": [
//!     { "positive": 0.25, "predicted": 0, "confident": true },
//!     ...
//!   ]
//! }
//! ```
//!
//! `generation` is the hot-swap generation counter of the model that
//! scored this request (see [`crate::server`]): every admitted request
//! is scored by exactly one generation, and the response records which
//! one, so a client racing a `/reload` can attribute each answer. v1
//! of this schema had no `generation` field; per the format-evolution
//! rules the breaking addition bumped the id.
//!
//! `positive` renders in Rust's shortest-roundtrip form, so a client
//! parsing it back recovers the server's `f64` bitwise — the loopback
//! tests compare daemon responses against offline `serve::score_rows`
//! output with `==`, no tolerance.

use forest::ConfidenceSplit;
use obs::jsonv::{self, JsonV};
use serve::ScoredRow;

/// Response schema identifier.
pub const RESPONSE_SCHEMA: &str = "survdb-score-response/v2";

/// A parsed `/score` request: one or more feature rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreRequest {
    /// Feature rows, each exactly `feature_count` finite values.
    pub rows: Vec<Vec<f64>>,
}

/// One row of a `/score` response.
#[derive(Debug, Clone, PartialEq)]
pub struct RowScore {
    /// Positive-class probability.
    pub positive: f64,
    /// Predicted class under `p > 0.5`.
    pub predicted: usize,
    /// Whether the row is confident under `t = max(q, 1 - q)`.
    pub confident: bool,
}

impl RowScore {
    /// Projects the wire view out of a scored row.
    pub fn from_scored(row: &ScoredRow) -> RowScore {
        RowScore {
            positive: row.positive,
            predicted: row.predicted,
            confident: row.split == ConfidenceSplit::Confident,
        }
    }
}

/// A parsed `/score` response: which model generation scored it, the
/// confidence threshold in force, and the per-row scores.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreResponse {
    /// Hot-swap generation of the scoring model.
    pub generation: u64,
    /// Confidence threshold `max(q, 1 - q)` of that generation.
    pub threshold: f64,
    /// Per-row scores, in request order.
    pub results: Vec<RowScore>,
}

fn number(v: &JsonV, what: &str) -> Result<f64, String> {
    match v {
        JsonV::Float(f) => Ok(*f),
        JsonV::UInt(u) => Ok(*u as f64),
        other => Err(format!("{what} must be a number, found {other:?}")),
    }
}

/// Parses and validates a `/score` request body against the model's
/// feature schema. Rejections here become HTTP 400s — downstream
/// scoring (`Dataset::push`) panics on malformed rows, so nothing
/// invalid may pass.
pub fn parse_score_request(
    body: &str,
    feature_count: usize,
    max_rows: usize,
) -> Result<ScoreRequest, String> {
    let root = jsonv::parse(body)?;
    let JsonV::Obj(fields) = &root else {
        return Err("request must be a JSON object".to_string());
    };
    if fields.len() != 1 || fields[0].0 != "rows" {
        return Err("request must have exactly one key, \"rows\"".to_string());
    }
    let JsonV::Arr(raw_rows) = &fields[0].1 else {
        return Err("\"rows\" must be an array".to_string());
    };
    if raw_rows.is_empty() {
        return Err("\"rows\" must not be empty".to_string());
    }
    if raw_rows.len() > max_rows {
        return Err(format!(
            "{} rows exceed the per-request limit of {max_rows}",
            raw_rows.len()
        ));
    }
    let mut rows = Vec::with_capacity(raw_rows.len());
    for (i, raw) in raw_rows.iter().enumerate() {
        let JsonV::Arr(values) = raw else {
            return Err(format!("rows[{i}] must be an array"));
        };
        if values.len() != feature_count {
            return Err(format!(
                "rows[{i}] has {} features, the model expects {feature_count}",
                values.len()
            ));
        }
        let mut row = Vec::with_capacity(values.len());
        for (j, value) in values.iter().enumerate() {
            let v = number(value, &format!("rows[{i}][{j}]"))?;
            if !v.is_finite() {
                return Err(format!("rows[{i}][{j}] is not finite"));
            }
            row.push(v);
        }
        rows.push(row);
    }
    Ok(ScoreRequest { rows })
}

/// Renders a `/score` request body (the loadgen client side).
pub fn render_score_request(rows: &[Vec<f64>]) -> String {
    JsonV::obj(vec![(
        "rows",
        JsonV::Arr(
            rows.iter()
                .map(|row| JsonV::Arr(row.iter().map(|&v| JsonV::Float(v)).collect()))
                .collect(),
        ),
    )])
    .render()
}

/// Renders a `/score` response body for the model generation that
/// scored it.
pub fn render_score_response(generation: u64, threshold: f64, results: &[RowScore]) -> String {
    JsonV::obj(vec![
        ("schema", JsonV::Str(RESPONSE_SCHEMA.to_string())),
        ("generation", JsonV::UInt(generation)),
        ("threshold", JsonV::Float(threshold)),
        (
            "results",
            JsonV::Arr(
                results
                    .iter()
                    .map(|r| {
                        JsonV::obj(vec![
                            ("positive", JsonV::Float(r.positive)),
                            ("predicted", JsonV::UInt(r.predicted as u64)),
                            ("confident", JsonV::Bool(r.confident)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render()
}

/// Parses a `/score` response body — the loadgen client side and the
/// loopback tests.
pub fn parse_score_response(text: &str) -> Result<ScoreResponse, String> {
    let root = jsonv::parse(text)?;
    match root.get("schema") {
        Some(JsonV::Str(s)) if s == RESPONSE_SCHEMA => {}
        other => {
            return Err(format!(
                "schema must be {RESPONSE_SCHEMA:?}, found {other:?}"
            ))
        }
    }
    let generation = match root.get("generation") {
        Some(JsonV::UInt(g)) => *g,
        other => return Err(format!("generation must be a uint, found {other:?}")),
    };
    let threshold = number(
        root.get("threshold").ok_or("missing threshold")?,
        "threshold",
    )?;
    let Some(JsonV::Arr(raw)) = root.get("results") else {
        return Err("results must be an array".to_string());
    };
    let mut results = Vec::with_capacity(raw.len());
    for (i, item) in raw.iter().enumerate() {
        let positive = number(
            item.get("positive")
                .ok_or(format!("results[{i}]: missing positive"))?,
            "positive",
        )?;
        let predicted = match item.get("predicted") {
            Some(JsonV::UInt(v)) => *v as usize,
            other => {
                return Err(format!(
                    "results[{i}].predicted must be a uint, found {other:?}"
                ))
            }
        };
        let confident = match item.get("confident") {
            Some(JsonV::Bool(b)) => *b,
            other => {
                return Err(format!(
                    "results[{i}].confident must be a bool, found {other:?}"
                ))
            }
        };
        results.push(RowScore {
            positive,
            predicted,
            confident,
        });
    }
    Ok(ScoreResponse {
        generation,
        threshold,
        results,
    })
}

/// Renders an error body: `{"error": "<message>"}`.
pub fn render_error(message: &str) -> String {
    JsonV::obj(vec![("error", JsonV::Str(message.to_string()))]).render()
}

/// Renders the `/reload` success body: which generation is now live.
pub fn render_reload_response(generation: u64, tree_count: usize, feature_count: usize) -> String {
    JsonV::obj(vec![
        ("generation", JsonV::UInt(generation)),
        ("model_trees", JsonV::UInt(tree_count as u64)),
        ("model_features", JsonV::UInt(feature_count as u64)),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        let rows = vec![vec![0.25, 1.0, -3.5], vec![0.1, 0.2, 0.3]];
        let body = render_score_request(&rows);
        let parsed = parse_score_request(&body, 3, 16).expect("valid");
        assert_eq!(parsed.rows, rows);
    }

    #[test]
    fn request_rejections() {
        assert!(parse_score_request("nonsense", 2, 16).is_err());
        assert!(parse_score_request("[]", 2, 16).is_err());
        assert!(parse_score_request("{\"rows\": []}", 2, 16).is_err());
        assert!(parse_score_request("{\"extra\": 1}", 2, 16).is_err());
        // Feature-count mismatch.
        assert!(parse_score_request("{\"rows\": [[1.0]]}", 2, 16).is_err());
        // Non-finite feature.
        assert!(parse_score_request("{\"rows\": [[1.0, null]]}", 2, 16).is_err());
        // Row cap.
        let body = render_score_request(&vec![vec![0.0, 0.0]; 17]);
        assert!(parse_score_request(&body, 2, 16).is_err());
    }

    #[test]
    fn response_roundtrips_bitwise() {
        let results = vec![
            RowScore {
                positive: 1.0 / 3.0,
                predicted: 0,
                confident: false,
            },
            RowScore {
                positive: 0.925,
                predicted: 1,
                confident: true,
            },
        ];
        let body = render_score_response(3, 0.75, &results);
        let back = parse_score_response(&body).expect("valid");
        assert_eq!(back.generation, 3);
        assert_eq!(back.threshold, 0.75);
        assert_eq!(back.results, results); // f64 == — shortest roundtrip is exact
    }

    #[test]
    fn response_rejections() {
        assert!(parse_score_response("{}").is_err());
        let good = render_score_response(1, 0.75, &[]);
        assert!(parse_score_response(&good.replace(RESPONSE_SCHEMA, "v0")).is_err());
        // A v1 body (no generation) is refused, not misread.
        let v1 = good
            .replace(RESPONSE_SCHEMA, "survdb-score-response/v1")
            .replace("  \"generation\": 1,\n", "");
        assert!(parse_score_response(&v1).is_err());
    }

    #[test]
    fn error_body_renders() {
        assert_eq!(
            render_error("queue full"),
            "{\n  \"error\": \"queue full\"\n}\n"
        );
    }

    #[test]
    fn reload_body_renders() {
        let body = render_reload_response(2, 10, 3);
        let json = jsonv::parse(&body).expect("valid json");
        assert_eq!(json.get("generation"), Some(&JsonV::UInt(2)));
        assert_eq!(json.get("model_trees"), Some(&JsonV::UInt(10)));
    }
}
