//! `batcher_transparency` — property tests pinning that micro-batching
//! is an invisible optimization.
//!
//! Two properties, over randomly partitioned request streams:
//!
//! 1. **Order preservation** — flushing the batcher yields the requests
//!    in exactly their arrival order, partitioned into contiguous runs.
//! 2. **Bitwise identity** — scoring the coalesced batches and
//!    splitting the results back per request reproduces, `f64 ==`
//!    exact, what scoring each request alone produces — across batch
//!    policies `max_rows ∈ {1, 7, 64}` and forest thread limits
//!    `{1, 8}` (the daemon's "1 vs 8 workers" axis: scoring
//!    parallelism must not leak into probabilities).
//!
//! The forest thread limit is process-global, so everything runs in
//! one `#[test]` body; batch-policy and thread-limit sweeps nest
//! inside the property closure.

use proptest::prelude::*;
use survd::{BatchPolicy, BatcherCore};

/// A small but non-trivial model over a deterministic synthetic
/// dataset, plus a scoring corpus drawn from the same feature space.
fn fixture() -> (serve::SavedModel, Vec<Vec<f64>>) {
    let mut data = forest::Dataset::new(vec!["x0".into(), "x1".into(), "x2".into()], 2);
    for i in 0..160 {
        let x0 = i as f64 / 160.0;
        let x1 = ((i * 37) % 160) as f64 / 160.0;
        let x2 = ((i * 11) % 13) as f64 / 13.0;
        let label = (x0 + x1 * 0.5 > 0.6) as usize;
        data.push(vec![x0, x1, x2], label);
    }
    let params = forest::RandomForestParams {
        n_trees: 8,
        ..forest::RandomForestParams::default()
    };
    let forest = forest::RandomForest::fit(&data, &params, 7);
    let model = serve::SavedModel::new(
        forest,
        serve::ModelMeta {
            positive_fraction: data.class_fraction(1),
            seed: 7,
            params,
            grid: None,
        },
    );
    let corpus: Vec<Vec<f64>> = (0..data.len()).map(|i| data.row(i)).collect();
    (model, corpus)
}

/// Drains `core` completely, batch by batch, asserting each batch is
/// non-empty; returns the flushed batches.
fn drain(core: &mut BatcherCore<(usize, Vec<Vec<f64>>)>) -> Vec<Vec<(usize, Vec<Vec<f64>>)>> {
    let mut batches = Vec::new();
    while !core.is_empty() {
        let batch = core.take_batch();
        assert!(!batch.is_empty(), "take_batch on a non-empty core");
        batches.push(batch);
    }
    batches
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batcher_transparency(
        // Request sizes: up to 10 requests of 1..=9 rows each.
        sizes in prop::collection::vec(1usize..=9, 1..=10),
        offset in 0usize..160,
    ) {
        let (model, corpus) = fixture();
        let q = model.meta.positive_fraction;

        // Cut the request stream out of the corpus: request r takes
        // the next `sizes[r]` rows starting at a random offset.
        let mut cursor = offset;
        let requests: Vec<(usize, Vec<Vec<f64>>)> = sizes
            .iter()
            .enumerate()
            .map(|(r, &rows)| {
                let slice: Vec<Vec<f64>> = (0..rows)
                    .map(|j| corpus[(cursor + j) % corpus.len()].clone())
                    .collect();
                cursor += rows;
                (r, slice)
            })
            .collect();

        for &threads in &[1usize, 8] {
            forest::parallel::set_thread_limit(Some(threads));

            // Ground truth at this thread limit: each request scored
            // alone, no coalescing.
            let alone: Vec<Vec<f64>> = requests
                .iter()
                .map(|(_, rows)| serve::score_rows(&model.forest, rows, q).positives())
                .collect();

            for &max_rows in &[1usize, 7, 64] {
                let mut core = BatcherCore::new(BatchPolicy { max_rows, max_wait_ms: 2 });
                for (r, rows) in &requests {
                    core.push((*r, rows.clone()), rows.len(), 0);
                }
                let batches = drain(&mut core);

                // Property 1: batches partition arrival order.
                let flat: Vec<usize> = batches
                    .iter()
                    .flat_map(|b| b.iter().map(|(r, _)| *r))
                    .collect();
                let expected_order: Vec<usize> = (0..requests.len()).collect();
                prop_assert_eq!(&flat, &expected_order,
                    "request order broke at max_rows {}", max_rows);

                // Property 2: score each coalesced batch, split the
                // rows back per request, compare bitwise.
                for batch in &batches {
                    let all_rows: Vec<Vec<f64>> = batch
                        .iter()
                        .flat_map(|(_, rows)| rows.iter().cloned())
                        .collect();
                    let scored = serve::score_rows(&model.forest, &all_rows, q).positives();
                    let mut taken = 0usize;
                    for (r, rows) in batch {
                        let part = &scored[taken..taken + rows.len()];
                        prop_assert_eq!(part, alone[*r].as_slice(),
                            "request {} diverged at max_rows {} threads {}",
                            r, max_rows, threads);
                        taken += rows.len();
                    }
                    prop_assert_eq!(taken, scored.len());
                }
            }
        }

        // Cross-thread-limit identity: 1-thread ground truth equals
        // 8-thread ground truth (set above ends at 8; recompute at 1).
        forest::parallel::set_thread_limit(Some(1));
        for (r, rows) in &requests {
            let single = serve::score_rows(&model.forest, rows, q).positives();
            forest::parallel::set_thread_limit(Some(8));
            let multi = serve::score_rows(&model.forest, rows, q).positives();
            forest::parallel::set_thread_limit(Some(1));
            prop_assert_eq!(&single, &multi, "request {} varies with thread limit", r);
        }
        forest::parallel::set_thread_limit(None);
    }
}
