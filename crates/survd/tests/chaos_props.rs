//! `chaos_props` — property tests for protocol-level robustness.
//!
//! Three properties:
//!
//! 1. **No panic on arbitrary bytes** — `http::read_request` fed any
//!    byte stream returns a typed verdict (`Request` or `ReadError`),
//!    never panics, and never hands back a body larger than the
//!    configured limit.
//! 2. **No panic on chaos-corrupted requests** — a valid `/score`
//!    request mangled the way `survd::chaos` mangles wire traffic
//!    (truncation, garbage splices, header-size inflation) still
//!    yields a typed verdict, and any `Malformed` verdict carries one
//!    of the daemon's refusal statuses.
//! 3. **Plan determinism** — `ChaosPlan::action` is a pure function
//!    of (seed, ordinal): replaying a seed reproduces the decision
//!    stream bit-for-bit, rate 0 never fires, rate 1 always fires,
//!    and the injected class frequency tracks the configured rate.

use proptest::prelude::*;
use std::io::Cursor;
use survd::chaos::{garbage_bytes, ChaosClass, ChaosPlan};
use survd::http::{read_request, HttpLimits, ReadError};

/// Statuses `ReadError::Malformed` is allowed to carry — the typed
/// refusal vocabulary of the daemon.
const REFUSAL_STATUSES: [u16; 5] = [400, 408, 413, 431, 501];

/// Feeds one byte stream through `read_request` and checks the typed
/// contract; returns whether a request parsed.
fn feed(bytes: &[u8], limits: &HttpLimits) -> bool {
    let mut reader = Cursor::new(bytes.to_vec());
    match read_request(&mut reader, limits) {
        Ok(request) => {
            assert!(
                request.body.len() <= limits.max_body_bytes,
                "parsed body exceeds the configured limit"
            );
            assert!(!request.method.is_empty(), "parsed an empty method");
            true
        }
        Err(ReadError::Malformed { status, message }) => {
            assert!(
                REFUSAL_STATUSES.contains(&status),
                "malformed verdict carries untyped status {status}: {message}"
            );
            assert!(!message.is_empty(), "refusal without a message");
            false
        }
        Err(ReadError::Closed | ReadError::IdleTimeout | ReadError::Io(_)) => false,
    }
}

/// A well-formed `/score` request over `rows`, the daemon's own wire
/// rendering.
fn valid_request(rows: &[Vec<f64>]) -> Vec<u8> {
    let body = survd::render_score_request(rows);
    format!(
        "POST /score HTTP/1.1\r\nhost: props\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property 1: any byte stream yields a typed verdict, no panic.
    #[test]
    fn arbitrary_bytes_never_panic_the_reader(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let limits = HttpLimits::default();
        feed(&bytes, &limits);
        // Tiny limits exercise the over-budget paths on the same input.
        let tiny = HttpLimits { max_head_bytes: 64, max_body_bytes: 32, max_stall_reads: 2 };
        feed(&bytes, &tiny);
    }

    /// Property 2: chaos-style corruption of a valid request still
    /// yields a typed verdict.
    #[test]
    fn corrupted_requests_never_panic_the_reader(
        seed in any::<u64>(),
        ordinal in 0u64..1024,
        cut in 0usize..512,
        garbage_len in 1usize..128,
        n_rows in 1usize..4,
    ) {
        let rows: Vec<Vec<f64>> = (0..n_rows)
            .map(|r| vec![r as f64 * 0.25, 0.5, 1.0 - r as f64 * 0.125])
            .collect();
        let clean = valid_request(&rows);
        let limits = HttpLimits::default();

        // Clean request parses; echoed body matches what was framed.
        prop_assert!(feed(&clean, &limits), "clean request must parse");

        // Truncation at every offset: typed verdict, usually an error.
        let truncated = &clean[..cut.min(clean.len())];
        feed(truncated, &limits);

        // Garbage prefix (what GarbageFrame sends): typed refusal.
        let mut garbled = garbage_bytes(seed, ordinal, garbage_len);
        garbled.extend_from_slice(b"\r\n\r\n");
        prop_assert!(!feed(&garbled, &limits), "garbage must not parse as a request");

        // Garbage spliced into the middle of the head.
        let mut spliced = clean.clone();
        let at = cut.min(spliced.len());
        let splice = garbage_bytes(seed ^ 1, ordinal, garbage_len);
        spliced.splice(at..at, splice);
        feed(&spliced, &limits);

        // Oversized declared length (what OversizedFrame sends).
        let huge = format!(
            "POST /score HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            limits.max_body_bytes + 1
        );
        prop_assert!(!feed(huge.as_bytes(), &limits), "oversized frame must be refused");
    }

    /// Property 3: plan decisions replay exactly and track their rate.
    #[test]
    fn plans_are_deterministic_and_rate_faithful(
        seed in any::<u64>(),
        class_index in 0usize..7,
        rate in 0.0f64..=1.0,
    ) {
        let class = ChaosClass::ALL[class_index];
        let plan = ChaosPlan::single(class, rate, seed);
        plan.validate();

        let first: Vec<Option<ChaosClass>> = (0..256).map(|o| plan.action(o)).collect();
        let replay: Vec<Option<ChaosClass>> = (0..256).map(|o| plan.action(o)).collect();
        prop_assert_eq!(&first, &replay, "replaying a seed must reproduce decisions");

        let fired = first.iter().filter(|a| a.is_some()).count();
        for action in &first {
            prop_assert!(
                action.is_none() || *action == Some(class),
                "single-class plan injected a different class"
            );
        }
        if rate == 0.0 {
            prop_assert_eq!(fired, 0, "rate 0 must never fire");
        }
        if rate == 1.0 {
            prop_assert_eq!(fired, 256, "rate 1 must always fire");
        }
        // Frequency tracks rate (binomial, n=256: ±0.2 is > 6 sigma).
        let frequency = fired as f64 / 256.0;
        prop_assert!(
            (frequency - rate).abs() < 0.2,
            "frequency {frequency} far from rate {rate}"
        );

        // A fresh plan with a different seed is its own stream — but
        // the clean plan never fires regardless of seed.
        let clean = ChaosPlan::none(seed ^ 0xDEAD_BEEF);
        prop_assert!((0..256).all(|o| clean.action(o).is_none()));
    }
}
