//! Cox proportional-hazards regression (extension).
//!
//! The paper measures factor effects indirectly through random-forest
//! feature importance; Cox regression measures them directly as hazard
//! ratios. We implement the Breslow tie approximation with Newton–
//! Raphson optimization of the partial likelihood — adequate for the
//! handful of covariates the study report uses (edition, DTUs,
//! automation signals).

use stats::hypothesis::normal_two_sided_p;

/// Model specification: covariate rows plus survival outcomes.
#[derive(Debug, Clone, Default)]
pub struct CoxModel {
    rows: Vec<Vec<f64>>,
    durations: Vec<f64>,
    events: Vec<bool>,
    names: Vec<String>,
}

impl CoxModel {
    /// Creates an empty model with named covariates.
    pub fn new(covariate_names: &[&str]) -> CoxModel {
        CoxModel {
            rows: Vec::new(),
            durations: Vec::new(),
            events: Vec::new(),
            names: covariate_names.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Adds one subject.
    ///
    /// # Panics
    ///
    /// Panics if the covariate count mismatches or the duration is
    /// negative/non-finite.
    pub fn push(&mut self, covariates: &[f64], duration: f64, event: bool) {
        assert_eq!(
            covariates.len(),
            self.names.len(),
            "expected {} covariates, got {}",
            self.names.len(),
            covariates.len()
        );
        assert!(
            duration.is_finite() && duration >= 0.0,
            "invalid duration {duration}"
        );
        self.rows.push(covariates.to_vec());
        self.durations.push(duration);
        self.events.push(event);
    }

    /// Number of subjects.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no subjects were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Covariate names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Fits the model by Newton–Raphson on the Breslow partial
    /// likelihood.
    ///
    /// # Panics
    ///
    /// Panics if there are no events or no covariates.
    pub fn fit(&self) -> CoxFit {
        let p = self.names.len();
        assert!(p > 0, "Cox model needs at least one covariate");
        let n_events = self.events.iter().filter(|&&e| e).count();
        assert!(n_events > 0, "Cox model needs at least one event");

        // Standardize covariates for optimization stability; un-scale
        // the coefficients afterwards.
        let mut means = vec![0.0_f64; p];
        let mut sds = vec![0.0_f64; p];
        for j in 0..p {
            let mut s = stats::Summary::new();
            for row in &self.rows {
                s.push(row[j]);
            }
            means[j] = s.mean();
            sds[j] = if s.std_dev() > 1e-12 {
                s.std_dev()
            } else {
                1.0
            };
        }
        let std_rows: Vec<Vec<f64>> = self
            .rows
            .iter()
            .map(|row| (0..p).map(|j| (row[j] - means[j]) / sds[j]).collect())
            .collect();

        // Order subjects by duration descending so the risk set grows as
        // we sweep forward.
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by(|&a, &b| {
            self.durations[b]
                .partial_cmp(&self.durations[a])
                .expect("finite durations")
        });

        let mut beta = vec![0.0_f64; p];
        let mut last_hess = vec![vec![0.0_f64; p]; p];
        let mut ll = f64::NEG_INFINITY;

        for _iter in 0..50 {
            let (new_ll, grad, hess) = self.breslow_derivatives(&std_rows, &order, &beta);
            last_hess = hess.clone();

            // Newton step: solve H δ = g (H is negative-definite; we
            // solve with −H to keep pivots positive).
            let neg_hess: Vec<Vec<f64>> = hess
                .iter()
                .map(|row| row.iter().map(|v| -v).collect())
                .collect();
            let delta = solve(&neg_hess, &grad);

            // Step-halving line search on the partial likelihood.
            let mut step = 1.0;
            let mut improved = false;
            for _ in 0..30 {
                let cand: Vec<f64> = beta.iter().zip(&delta).map(|(b, d)| b + step * d).collect();
                let (cand_ll, _, _) = self.breslow_derivatives(&std_rows, &order, &cand);
                if cand_ll > new_ll - 1e-12 {
                    beta = cand;
                    ll = cand_ll;
                    improved = true;
                    break;
                }
                step *= 0.5;
            }
            if !improved {
                ll = new_ll;
                break;
            }
            let grad_norm: f64 = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
            if grad_norm < 1e-8 {
                break;
            }
        }

        // Standard errors from the inverse negative Hessian, then
        // un-standardize coefficients and SEs.
        let neg_hess: Vec<Vec<f64>> = last_hess
            .iter()
            .map(|row| row.iter().map(|v| -v).collect())
            .collect();
        let cov = invert(&neg_hess);
        let mut coefficients = vec![0.0_f64; p];
        let mut std_errors = vec![0.0_f64; p];
        for j in 0..p {
            coefficients[j] = beta[j] / sds[j];
            std_errors[j] = cov[j][j].max(0.0).sqrt() / sds[j];
        }

        CoxFit {
            names: self.names.clone(),
            coefficients,
            std_errors,
            log_likelihood: ll,
            n: self.len(),
            events: n_events,
        }
    }

    /// Breslow partial log-likelihood with gradient and Hessian at
    /// `beta`, over standardized rows.
    fn breslow_derivatives(
        &self,
        rows: &[Vec<f64>],
        order: &[usize],
        beta: &[f64],
    ) -> (f64, Vec<f64>, Vec<Vec<f64>>) {
        let p = beta.len();
        let mut ll = 0.0;
        let mut grad = vec![0.0_f64; p];
        let mut hess = vec![vec![0.0_f64; p]; p];

        // Risk-set accumulators.
        let mut s0 = 0.0_f64;
        let mut s1 = vec![0.0_f64; p];
        let mut s2 = vec![vec![0.0_f64; p]; p];

        let n = order.len();
        let mut i = 0;
        while i < n {
            let t = self.durations[order[i]];
            // Add everyone with this duration to the risk set.
            let mut j = i;
            while j < n && self.durations[order[j]] == t {
                let idx = order[j];
                let eta: f64 = rows[idx].iter().zip(beta).map(|(x, b)| x * b).sum();
                let w = eta.exp();
                s0 += w;
                for a in 0..p {
                    s1[a] += w * rows[idx][a];
                    for b in 0..p {
                        s2[a][b] += w * rows[idx][a] * rows[idx][b];
                    }
                }
                j += 1;
            }
            // Process deaths at this time.
            let mut d = 0usize;
            let mut death_x_sum = vec![0.0_f64; p];
            let mut death_eta_sum = 0.0;
            for &idx in &order[i..j] {
                if self.events[idx] {
                    d += 1;
                    death_eta_sum += rows[idx].iter().zip(beta).map(|(x, b)| x * b).sum::<f64>();
                    for a in 0..p {
                        death_x_sum[a] += rows[idx][a];
                    }
                }
            }
            if d > 0 {
                let df = d as f64;
                ll += death_eta_sum - df * s0.ln();
                for a in 0..p {
                    let mean_a = s1[a] / s0;
                    grad[a] += death_x_sum[a] - df * mean_a;
                    for b in 0..p {
                        let mean_b = s1[b] / s0;
                        hess[a][b] -= df * (s2[a][b] / s0 - mean_a * mean_b);
                    }
                }
            }
            i = j;
        }
        (ll, grad, hess)
    }
}

/// A fitted Cox model.
#[derive(Debug, Clone, PartialEq)]
pub struct CoxFit {
    names: Vec<String>,
    coefficients: Vec<f64>,
    std_errors: Vec<f64>,
    log_likelihood: f64,
    n: usize,
    events: usize,
}

impl CoxFit {
    /// Covariate names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Log hazard-ratio coefficients β̂.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Hazard ratios `exp(β̂)`.
    pub fn hazard_ratios(&self) -> Vec<f64> {
        self.coefficients.iter().map(|b| b.exp()).collect()
    }

    /// Standard errors of the coefficients.
    pub fn std_errors(&self) -> &[f64] {
        &self.std_errors
    }

    /// Wald two-sided p-values per coefficient.
    pub fn p_values(&self) -> Vec<f64> {
        self.coefficients
            .iter()
            .zip(&self.std_errors)
            .map(|(b, se)| {
                if *se > 0.0 {
                    normal_two_sided_p(b / se)
                } else {
                    1.0
                }
            })
            .collect()
    }

    /// Maximized partial log-likelihood.
    pub fn log_likelihood(&self) -> f64 {
        self.log_likelihood
    }

    /// Subjects / events in the fit.
    pub fn counts(&self) -> (usize, usize) {
        (self.n, self.events)
    }
}

/// Solves `A x = b` for small dense symmetric positive-definite-ish `A`
/// with partial-pivot Gaussian elimination. Singular columns get a
/// zero solution component (dropped covariate).
#[allow(clippy::needless_range_loop)] // elimination reads clearest with row/col indices
fn solve(a: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let n = b.len();
    let mut m: Vec<Vec<f64>> = a.to_vec();
    let mut rhs = b.to_vec();
    let mut perm: Vec<usize> = (0..n).collect();

    for col in 0..n {
        let mut pivot = col;
        for row in col + 1..n {
            if m[row][col].abs() > m[pivot][col].abs() {
                pivot = row;
            }
        }
        if m[pivot][col].abs() < 1e-12 {
            // Singular direction: freeze it.
            m[col][col] = 1.0;
            for r in col + 1..n {
                m[r][col] = 0.0;
            }
            rhs[col] = 0.0;
            continue;
        }
        m.swap(col, pivot);
        rhs.swap(col, pivot);
        perm.swap(col, pivot);
        for row in col + 1..n {
            let f = m[row][col] / m[col][col];
            for c in col..n {
                m[row][c] -= f * m[col][c];
            }
            rhs[row] -= f * rhs[col];
        }
    }
    let mut x = vec![0.0_f64; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for c in row + 1..n {
            acc -= m[row][c] * x[c];
        }
        x[row] = acc / m[row][row];
    }
    x
}

/// Inverts a small dense matrix column-by-column via [`solve`].
fn invert(a: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    let mut inv = vec![vec![0.0_f64; n]; n];
    for col in 0..n {
        let mut e = vec![0.0_f64; n];
        e[col] = 1.0;
        let x = solve(a, &e);
        for row in 0..n {
            inv[row][col] = x[row];
        }
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Simulates exponential lifetimes whose rate is `exp(β x)`, the
    /// exact proportional-hazards data-generating process.
    fn ph_sample(beta: &[f64], n: usize, censor: f64, seed: u64) -> CoxModel {
        let names: Vec<String> = (0..beta.len()).map(|j| format!("x{j}")).collect();
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let mut model = CoxModel::new(&name_refs);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..n {
            let x: Vec<f64> = beta.iter().map(|_| rng.gen_range(-1.0..1.0)).collect();
            let eta: f64 = x.iter().zip(beta).map(|(xi, b)| xi * b).sum();
            let rate = 0.1 * eta.exp();
            let t = -(1.0 - rng.gen::<f64>()).ln() / rate;
            if t <= censor {
                model.push(&x, t, true);
            } else {
                model.push(&x, censor, false);
            }
        }
        model
    }

    #[test]
    fn recovers_single_coefficient() {
        let model = ph_sample(&[0.8], 3000, 60.0, 21);
        let fit = model.fit();
        let b = fit.coefficients()[0];
        assert!((b - 0.8).abs() < 0.12, "beta = {b}");
        assert!(fit.p_values()[0] < 1e-6);
    }

    #[test]
    fn recovers_multiple_coefficients() {
        let model = ph_sample(&[0.5, -1.0, 0.0], 4000, 80.0, 22);
        let fit = model.fit();
        let b = fit.coefficients();
        assert!((b[0] - 0.5).abs() < 0.15, "b0 = {}", b[0]);
        assert!((b[1] + 1.0).abs() < 0.15, "b1 = {}", b[1]);
        assert!(b[2].abs() < 0.15, "b2 = {}", b[2]);
        // Null covariate should not be significant.
        assert!(fit.p_values()[2] > 0.01);
    }

    #[test]
    fn hazard_ratios_exponentiate() {
        let model = ph_sample(&[0.7], 1500, 60.0, 23);
        let fit = model.fit();
        let hr = fit.hazard_ratios()[0];
        assert!((hr - fit.coefficients()[0].exp()).abs() < 1e-12);
        assert!(hr > 1.0);
    }

    #[test]
    fn null_model_coefficient_near_zero() {
        let model = ph_sample(&[0.0], 2000, 50.0, 24);
        let fit = model.fit();
        assert!(fit.coefficients()[0].abs() < 0.1);
    }

    #[test]
    fn counts_reported() {
        let model = ph_sample(&[0.3], 500, 30.0, 25);
        let fit = model.fit();
        let (n, events) = fit.counts();
        assert_eq!(n, 500);
        assert!(events > 0 && events <= 500);
    }

    #[test]
    #[should_panic]
    fn rejects_covariate_mismatch() {
        let mut m = CoxModel::new(&["a", "b"]);
        m.push(&[1.0], 5.0, true);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // 2×2 identity check with explicit indices
    fn solve_and_invert_small_system() {
        let a = vec![vec![4.0, 1.0], vec![1.0, 3.0]];
        let x = solve(&a, &[1.0, 2.0]);
        assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-10);
        assert!((x[0] + 3.0 * x[1] - 2.0).abs() < 1e-10);
        let inv = invert(&a);
        // A · A⁻¹ = I.
        for i in 0..2 {
            for j in 0..2 {
                let v: f64 = (0..2).map(|k| a[i][k] * inv[k][j]).sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((v - expected).abs() < 1e-10);
            }
        }
    }
}
