//! The Kaplan–Meier product-limit estimator.

use crate::types::SurvivalData;
use stats::special::std_normal_quantile;

/// A fitted Kaplan–Meier survival curve.
///
/// `S(t)` is estimated as `∏_{i: t_i <= t} (n_i − d_i) / n_i` over the
/// distinct event times `t_i`, with `n_i` subjects at risk and `d_i`
/// events (paper §3.2). Right-censored subjects shrink later risk sets
/// without contributing steps.
///
/// The fit also carries Greenwood's variance estimate, from which
/// [`KaplanMeier::confidence_interval_at`] derives log-log transformed
/// pointwise confidence bounds (the transform keeps bounds inside
/// `[0, 1]`, matching Lifelines' default).
#[derive(Debug, Clone, PartialEq)]
pub struct KaplanMeier {
    /// Distinct event times, ascending.
    times: Vec<f64>,
    /// `S(t_i)` after the drop at each event time.
    survival: Vec<f64>,
    /// Greenwood cumulative sum `Σ d / (n (n − d))` at each event time.
    greenwood: Vec<f64>,
    /// Subjects at risk just before each event time.
    at_risk: Vec<usize>,
    /// Events at each event time.
    deaths: Vec<usize>,
    /// Total subjects in the fit.
    n: usize,
}

impl KaplanMeier {
    /// Fits the estimator to survival data.
    ///
    /// An empty sample yields a degenerate curve with `S(t) = 1`
    /// everywhere.
    pub fn fit(data: &SurvivalData) -> KaplanMeier {
        let table = data.event_table();
        let mut times = Vec::new();
        let mut survival = Vec::new();
        let mut greenwood = Vec::new();
        let mut at_risk = Vec::new();
        let mut deaths = Vec::new();

        let mut s = 1.0_f64;
        let mut gw = 0.0_f64;
        for row in table.death_rows() {
            let n_i = row.at_risk as f64;
            let d_i = row.deaths as f64;
            s *= (n_i - d_i) / n_i;
            if n_i > d_i {
                gw += d_i / (n_i * (n_i - d_i));
            } else {
                // Curve hit zero; variance of log is undefined — carry a
                // sentinel that yields a zero-width interval at S = 0.
                gw = f64::INFINITY;
            }
            times.push(row.time);
            survival.push(s);
            greenwood.push(gw);
            at_risk.push(row.at_risk);
            deaths.push(row.deaths);
        }

        KaplanMeier {
            times,
            survival,
            greenwood,
            at_risk,
            deaths,
            n: data.len(),
        }
    }

    /// Number of subjects the curve was fitted on.
    pub fn subjects(&self) -> usize {
        self.n
    }

    /// The distinct event times (curve step locations), ascending.
    pub fn event_times(&self) -> &[f64] {
        &self.times
    }

    /// The survival probabilities after each event time, aligned with
    /// [`KaplanMeier::event_times`].
    pub fn survival_probabilities(&self) -> &[f64] {
        &self.survival
    }

    /// `S(t)`: the estimated probability of surviving beyond `t`.
    ///
    /// The estimate is a right-continuous step function equal to 1
    /// before the first event time.
    pub fn survival_at(&self, t: f64) -> f64 {
        match self
            .times
            .binary_search_by(|x| x.partial_cmp(&t).expect("finite times"))
        {
            Ok(idx) => self.survival[idx],
            Err(0) => 1.0,
            Err(idx) => self.survival[idx - 1],
        }
    }

    /// Greenwood variance of `S(t)`.
    pub fn variance_at(&self, t: f64) -> f64 {
        let (s, gw) = match self
            .times
            .binary_search_by(|x| x.partial_cmp(&t).expect("finite times"))
        {
            Ok(idx) => (self.survival[idx], self.greenwood[idx]),
            Err(0) => (1.0, 0.0),
            Err(idx) => (self.survival[idx - 1], self.greenwood[idx - 1]),
        };
        if gw.is_infinite() {
            0.0
        } else {
            s * s * gw
        }
    }

    /// Pointwise `(lo, hi)` confidence interval for `S(t)` at level
    /// `1 − alpha`, using the log(−log) transform.
    pub fn confidence_interval_at(&self, t: f64, alpha: f64) -> (f64, f64) {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        let s = self.survival_at(t);
        if s <= 0.0 {
            return (0.0, 0.0);
        }
        if s >= 1.0 {
            return (1.0, 1.0);
        }
        let gw = match self
            .times
            .binary_search_by(|x| x.partial_cmp(&t).expect("finite times"))
        {
            Ok(idx) => self.greenwood[idx],
            Err(0) => 0.0,
            Err(idx) => self.greenwood[idx - 1],
        };
        if gw.is_infinite() {
            return (0.0, s);
        }
        let z = std_normal_quantile(1.0 - alpha / 2.0);
        // θ = z · sqrt(gw) / |ln S|; bounds are S^{exp(±θ)}.
        let theta = z * gw.sqrt() / s.ln().abs();
        let lo = s.powf((theta).exp());
        let hi = s.powf((-theta).exp());
        (lo.min(hi), lo.max(hi))
    }

    /// The smallest time at which `S(t) <= p`, if the curve ever drops
    /// that far. `median_survival()` is `quantile(0.5)`.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");
        self.survival
            .iter()
            .position(|&s| s <= p)
            .map(|idx| self.times[idx])
    }

    /// Median survival time: the first time at which `S(t) <= 0.5`, or
    /// `None` if more than half the population outlives the observation
    /// window (common in our fleets).
    pub fn median_survival(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Restricted mean survival time up to `horizon`: the area under the
    /// step curve over `[0, horizon]`. A standard summary when the
    /// median is not reached.
    pub fn restricted_mean(&self, horizon: f64) -> f64 {
        assert!(horizon >= 0.0, "horizon must be non-negative");
        let mut area = 0.0;
        let mut prev_t = 0.0;
        let mut prev_s = 1.0;
        for (&t, &s) in self.times.iter().zip(&self.survival) {
            if t >= horizon {
                break;
            }
            area += prev_s * (t - prev_t);
            prev_t = t;
            prev_s = s;
        }
        area + prev_s * (horizon - prev_t)
    }

    /// Samples the curve at `points` evenly spaced times over
    /// `[0, max_t]`, returning `(t, S(t))` pairs — the series the bench
    /// harness prints for every KM figure.
    pub fn sample_curve(&self, max_t: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least 2 points");
        (0..points)
            .map(|i| {
                let t = max_t * i as f64 / (points - 1) as f64;
                (t, self.survival_at(t))
            })
            .collect()
    }

    /// At-risk counts aligned with [`KaplanMeier::event_times`].
    pub fn at_risk_counts(&self) -> &[usize] {
        &self.at_risk
    }

    /// Death counts aligned with [`KaplanMeier::event_times`].
    pub fn death_counts(&self) -> &[usize] {
        &self.deaths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SurvivalData;
    use proptest::prelude::*;

    /// Freireich (1963) 6-MP arm: the canonical textbook KM example.
    fn freireich_6mp() -> SurvivalData {
        // Remission durations in weeks; + indicates censored.
        // 6, 6, 6, 6+, 7, 9+, 10, 10+, 11+, 13, 16, 17+, 19+, 20+, 22,
        // 23, 25+, 32+, 32+, 34+, 35+
        SurvivalData::from_pairs(&[
            (6.0, true),
            (6.0, true),
            (6.0, true),
            (6.0, false),
            (7.0, true),
            (9.0, false),
            (10.0, true),
            (10.0, false),
            (11.0, false),
            (13.0, true),
            (16.0, true),
            (17.0, false),
            (19.0, false),
            (20.0, false),
            (22.0, true),
            (23.0, true),
            (25.0, false),
            (32.0, false),
            (32.0, false),
            (34.0, false),
            (35.0, false),
        ])
    }

    #[test]
    fn freireich_reference_values() {
        // Published KM values for this arm (Kleinbaum & Klein).
        let km = KaplanMeier::fit(&freireich_6mp());
        let close = |t: f64, expected: f64| {
            let got = km.survival_at(t);
            assert!(
                (got - expected).abs() < 5e-4,
                "S({t}) = {got}, want {expected}"
            );
        };
        close(6.0, 0.8571);
        close(7.0, 0.8067);
        close(10.0, 0.7529);
        close(13.0, 0.6902);
        close(16.0, 0.6275);
        close(22.0, 0.5378);
        close(23.0, 0.4482);
        // Median is reached at t = 23.
        assert_eq!(km.median_survival(), Some(23.0));
    }

    #[test]
    fn no_censoring_matches_empirical_survivor() {
        let d = SurvivalData::from_pairs(&[(1.0, true), (2.0, true), (3.0, true), (4.0, true)]);
        let km = KaplanMeier::fit(&d);
        assert!((km.survival_at(1.0) - 0.75).abs() < 1e-12);
        assert!((km.survival_at(2.5) - 0.5).abs() < 1e-12);
        assert!((km.survival_at(4.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn before_first_event_is_one() {
        let km = KaplanMeier::fit(&freireich_6mp());
        assert_eq!(km.survival_at(0.0), 1.0);
        assert_eq!(km.survival_at(5.9), 1.0);
    }

    #[test]
    fn empty_fit_is_unit_curve() {
        let km = KaplanMeier::fit(&SurvivalData::default());
        assert_eq!(km.survival_at(100.0), 1.0);
        assert_eq!(km.median_survival(), None);
        assert_eq!(km.subjects(), 0);
    }

    #[test]
    fn all_censored_never_drops() {
        let d = SurvivalData::from_pairs(&[(5.0, false), (9.0, false)]);
        let km = KaplanMeier::fit(&d);
        assert_eq!(km.survival_at(100.0), 1.0);
        assert_eq!(km.median_survival(), None);
    }

    #[test]
    fn greenwood_variance_freireich() {
        // Known Greenwood SE at t = 13 for the 6-MP arm is about 0.1060.
        let km = KaplanMeier::fit(&freireich_6mp());
        let se = km.variance_at(13.0).sqrt();
        assert!((se - 0.1060).abs() < 3e-3, "se = {se}");
        // Variance before any event is zero.
        assert_eq!(km.variance_at(0.0), 0.0);
    }

    #[test]
    fn confidence_interval_brackets_estimate() {
        let km = KaplanMeier::fit(&freireich_6mp());
        for &t in &[6.0, 10.0, 16.0, 23.0] {
            let s = km.survival_at(t);
            let (lo, hi) = km.confidence_interval_at(t, 0.05);
            assert!(lo <= s && s <= hi, "S({t}) = {s} outside [{lo}, {hi}]");
            assert!(lo >= 0.0 && hi <= 1.0);
        }
        // Wider alpha → narrower interval.
        let (lo95, hi95) = km.confidence_interval_at(13.0, 0.05);
        let (lo50, hi50) = km.confidence_interval_at(13.0, 0.50);
        assert!(lo50 > lo95 && hi50 < hi95);
    }

    #[test]
    fn restricted_mean_simple() {
        // Single death at t=1 among two subjects: S = 1 on [0,1), 0.5 after.
        let d = SurvivalData::from_pairs(&[(1.0, true), (2.0, false)]);
        let km = KaplanMeier::fit(&d);
        // RMST(2) = 1·1 + 0.5·1 = 1.5.
        assert!((km.restricted_mean(2.0) - 1.5).abs() < 1e-12);
        // Horizon before first event: area = horizon.
        assert!((km.restricted_mean(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sample_curve_shape() {
        let km = KaplanMeier::fit(&freireich_6mp());
        let pts = km.sample_curve(35.0, 36);
        assert_eq!(pts.len(), 36);
        assert_eq!(pts[0], (0.0, 1.0));
        // Non-increasing.
        for w in pts.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12);
        }
    }

    proptest! {
        #[test]
        fn prop_km_is_monotone_in_unit_interval(
            pairs in prop::collection::vec((0.0..100.0_f64, any::<bool>()), 1..120)
        ) {
            let data = SurvivalData::from_pairs(&pairs);
            let km = KaplanMeier::fit(&data);
            let mut prev = 1.0;
            for (&_t, &s) in km.event_times().iter().zip(km.survival_probabilities()) {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&s));
                prop_assert!(s <= prev + 1e-12);
                prev = s;
            }
        }

        #[test]
        fn prop_km_without_censoring_is_empirical(
            durations in prop::collection::vec(0.1..50.0_f64, 1..60)
        ) {
            let pairs: Vec<(f64, bool)> = durations.iter().map(|&d| (d, true)).collect();
            let data = SurvivalData::from_pairs(&pairs);
            let km = KaplanMeier::fit(&data);
            let n = durations.len() as f64;
            for &t in &[0.5, 5.0, 20.0, 49.0] {
                let empirical = durations.iter().filter(|&&d| d > t).count() as f64 / n;
                prop_assert!((km.survival_at(t) - empirical).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_ci_brackets_estimate(
            pairs in prop::collection::vec((0.1..80.0_f64, any::<bool>()), 3..60),
            t in 0.0..90.0_f64,
            alpha in 0.01..0.5_f64,
        ) {
            let km = KaplanMeier::fit(&SurvivalData::from_pairs(&pairs));
            let s = km.survival_at(t);
            let (lo, hi) = km.confidence_interval_at(t, alpha);
            prop_assert!(lo >= -1e-12 && hi <= 1.0 + 1e-12);
            prop_assert!(lo <= s + 1e-9 && s <= hi + 1e-9, "S({t})={s} not in [{lo},{hi}]");
        }

        #[test]
        fn prop_restricted_mean_monotone_in_horizon(
            pairs in prop::collection::vec((0.1..50.0_f64, any::<bool>()), 1..60),
            h1 in 0.0..60.0_f64,
            h2 in 0.0..60.0_f64,
        ) {
            let km = KaplanMeier::fit(&SurvivalData::from_pairs(&pairs));
            let (lo, hi) = if h1 <= h2 { (h1, h2) } else { (h2, h1) };
            prop_assert!(km.restricted_mean(lo) <= km.restricted_mean(hi) + 1e-9);
            // RMST is bounded by the horizon.
            prop_assert!(km.restricted_mean(hi) <= hi + 1e-9);
        }

        #[test]
        fn prop_quantile_consistent_with_curve(
            pairs in prop::collection::vec((0.0..100.0_f64, any::<bool>()), 5..80),
            p in 0.05..0.95_f64,
        ) {
            let km = KaplanMeier::fit(&SurvivalData::from_pairs(&pairs));
            if let Some(t) = km.quantile(p) {
                prop_assert!(km.survival_at(t) <= p + 1e-12);
                // Strictly before t the curve is above p.
                prop_assert!(km.survival_at(t - 1e-9) > p - 1e-12);
            }
        }
    }
}
