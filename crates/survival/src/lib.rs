//! Survival analysis for cloud-database lifespans.
//!
//! Implements, from scratch, the statistical toolkit the paper uses via
//! Python's Lifelines — plus several standard extensions:
//!
//! * [`kaplan_meier`] — the Kaplan–Meier product-limit estimator with
//!   Greenwood variance and log-log confidence intervals, median and
//!   quantile survival times (paper §3.2, Figures 1–3, 6, 8, 9).
//! * [`nelson_aalen`] — the Nelson–Aalen cumulative-hazard estimator.
//! * [`logrank`] — two-sample and k-sample log-rank tests, with the
//!   Gehan–Breslow–Wilcoxon, Tarone–Ware, and Fleming–Harrington
//!   weighted families (paper §5.2/§5.3 significance testing).
//! * [`parametric`] — censored maximum-likelihood fits of exponential
//!   and Weibull lifetime models with AIC model comparison.
//! * [`cox`] — Cox proportional-hazards regression (Breslow ties), an
//!   extension for measuring *factor* effects directly.
//! * [`lifetable`] — actuarial life tables over day-granularity bins.
//!
//! All estimators handle right-censoring, the central data problem the
//! paper highlights: databases still alive when the observation window
//! closes have unknown lifespans.
//!
//! # Example
//!
//! ```
//! use survival::{SurvivalData, KaplanMeier};
//!
//! // Three dropped databases and two still alive at day 40.
//! let data = SurvivalData::from_pairs(&[
//!     (5.0, true), (12.0, true), (33.0, true), (40.0, false), (40.0, false),
//! ]);
//! let km = KaplanMeier::fit(&data);
//! assert!(km.survival_at(10.0) > km.survival_at(35.0));
//! assert_eq!(km.survival_at(0.0), 1.0);
//! ```

pub mod cox;
pub mod kaplan_meier;
pub mod lifetable;
pub mod logrank;
pub mod nelson_aalen;
pub mod parametric;
pub mod types;

pub use cox::{CoxFit, CoxModel};
pub use kaplan_meier::KaplanMeier;
pub use lifetable::LifeTable;
pub use logrank::{logrank_test, logrank_test_k, weighted_logrank_test, LogRankWeight};
pub use nelson_aalen::NelsonAalen;
pub use parametric::{ExponentialFit, WeibullFit};
pub use types::{Observation, SurvivalData};
