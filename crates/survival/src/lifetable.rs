//! Actuarial life tables over fixed-width time intervals.
//!
//! A complement to Kaplan–Meier used in the study report: grouping
//! database lifespans into day/week bins gives interval-level hazard
//! ("what fraction of databases alive at day d die within the next
//! week") which is how provisioning policy thresholds are discussed.

use crate::types::SurvivalData;

/// One interval `[start, start + width)` of a life table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifeTableRow {
    /// Interval start time.
    pub start: f64,
    /// Interval width.
    pub width: f64,
    /// Subjects entering the interval.
    pub entering: usize,
    /// Events within the interval.
    pub deaths: usize,
    /// Censorings within the interval.
    pub censored: usize,
    /// Effective exposure (entering − censored/2, the actuarial
    /// adjustment).
    pub exposure: f64,
    /// Conditional probability of dying in the interval given alive at
    /// its start.
    pub hazard: f64,
    /// Cumulative survival at the interval's **end**.
    pub survival: f64,
}

/// An actuarial life table.
#[derive(Debug, Clone, PartialEq)]
pub struct LifeTable {
    rows: Vec<LifeTableRow>,
}

impl LifeTable {
    /// Builds a life table with `intervals` bins of `width` starting at
    /// zero. Observations beyond the last interval are treated as
    /// censored at the table's end.
    ///
    /// # Panics
    ///
    /// Panics if `width <= 0` or `intervals == 0`.
    pub fn fit(data: &SurvivalData, width: f64, intervals: usize) -> LifeTable {
        assert!(width > 0.0, "width must be positive");
        assert!(intervals > 0, "need at least one interval");

        let mut deaths = vec![0usize; intervals];
        let mut censored = vec![0usize; intervals];
        let mut beyond = 0usize; // survived past the whole table

        for o in data.observations() {
            let idx = (o.duration / width) as usize;
            if idx >= intervals {
                beyond += 1;
            } else if o.event {
                deaths[idx] += 1;
            } else {
                censored[idx] += 1;
            }
        }

        let mut rows = Vec::with_capacity(intervals);
        let mut entering = data.len();
        let mut survival = 1.0_f64;
        for i in 0..intervals {
            let exposure = entering as f64 - censored[i] as f64 / 2.0;
            let hazard = if exposure > 0.0 {
                deaths[i] as f64 / exposure
            } else {
                0.0
            };
            survival *= 1.0 - hazard;
            rows.push(LifeTableRow {
                start: i as f64 * width,
                width,
                entering,
                deaths: deaths[i],
                censored: censored[i],
                exposure,
                hazard,
                survival,
            });
            entering -= deaths[i] + censored[i];
        }
        debug_assert_eq!(entering, beyond);
        LifeTable { rows }
    }

    /// The table rows in time order.
    pub fn rows(&self) -> &[LifeTableRow] {
        &self.rows
    }

    /// Cumulative survival at the end of the interval containing `t`
    /// (1.0 before the table starts).
    pub fn survival_at(&self, t: f64) -> f64 {
        let mut s = 1.0;
        for row in &self.rows {
            if t < row.start {
                break;
            }
            s = row.survival;
            if t < row.start + row.width {
                break;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_two_interval_table() {
        // 4 subjects: deaths at 0.5 and 1.5, censored at 1.2, survives past 2.
        let d = SurvivalData::from_pairs(&[(0.5, true), (1.2, false), (1.5, true), (5.0, false)]);
        let lt = LifeTable::fit(&d, 1.0, 2);
        let rows = lt.rows();
        assert_eq!(rows[0].entering, 4);
        assert_eq!(rows[0].deaths, 1);
        assert_eq!(rows[0].censored, 0);
        assert!((rows[0].hazard - 0.25).abs() < 1e-12);
        assert!((rows[0].survival - 0.75).abs() < 1e-12);

        assert_eq!(rows[1].entering, 3);
        assert_eq!(rows[1].deaths, 1);
        assert_eq!(rows[1].censored, 1);
        // exposure = 3 − 0.5 = 2.5; hazard = 0.4.
        assert!((rows[1].hazard - 0.4).abs() < 1e-12);
        assert!((rows[1].survival - 0.75 * 0.6).abs() < 1e-12);
    }

    #[test]
    fn survival_lookup() {
        let d = SurvivalData::from_pairs(&[(0.5, true), (10.0, false)]);
        let lt = LifeTable::fit(&d, 1.0, 3);
        assert_eq!(lt.survival_at(0.0), 0.5); // first interval's end value
        assert_eq!(lt.survival_at(2.5), lt.rows()[2].survival);
    }

    #[test]
    fn survival_is_monotone() {
        let pairs: Vec<(f64, bool)> = (0..100)
            .map(|i| ((i as f64) * 0.37 % 20.0, i % 3 != 0))
            .collect();
        let lt = LifeTable::fit(&SurvivalData::from_pairs(&pairs), 2.0, 12);
        let mut prev = 1.0;
        for row in lt.rows() {
            assert!(row.survival <= prev + 1e-12);
            assert!((0.0..=1.0).contains(&row.survival));
            prev = row.survival;
        }
    }

    #[test]
    fn empty_data() {
        let lt = LifeTable::fit(&SurvivalData::default(), 1.0, 5);
        assert_eq!(lt.rows().len(), 5);
        assert_eq!(lt.survival_at(3.0), 1.0);
    }
}
