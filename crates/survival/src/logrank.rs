//! Log-rank tests comparing the survival distributions of groups.
//!
//! The paper uses the (unweighted) two-sample log-rank test to certify
//! that predicted short-lived vs long-lived groupings differ
//! significantly (Figures 6, 8, 9 and Table 2). We also provide the
//! standard weighted family and the k-sample generalization.

use crate::kaplan_meier::KaplanMeier;
use crate::types::SurvivalData;
use stats::hypothesis::{chi_squared_sf, TestResult};

/// Weight function families for the weighted log-rank test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LogRankWeight {
    /// `w = 1`: the classic log-rank test (equal weight at all times).
    LogRank,
    /// `w = n_j`: Gehan–Breslow–Wilcoxon, emphasizing early differences.
    GehanBreslow,
    /// `w = sqrt(n_j)`: Tarone–Ware, intermediate emphasis.
    TaroneWare,
    /// `w = S(t−)^p (1 − S(t−))^q` with the pooled left-continuous KM
    /// estimate: Fleming–Harrington, tunable early/late emphasis.
    FlemingHarrington {
        /// Early-difference exponent `p`.
        p: f64,
        /// Late-difference exponent `q`.
        q: f64,
    },
}

/// Classic two-sample log-rank test.
///
/// Null hypothesis: the two groups share one survival distribution.
/// Returns a chi-squared statistic with 1 degree of freedom.
///
/// # Panics
///
/// Panics if either group is empty.
pub fn logrank_test(a: &SurvivalData, b: &SurvivalData) -> TestResult {
    weighted_logrank_test(a, b, LogRankWeight::LogRank)
}

/// Two-sample weighted log-rank test.
///
/// # Panics
///
/// Panics if either group is empty.
pub fn weighted_logrank_test(
    a: &SurvivalData,
    b: &SurvivalData,
    weight: LogRankWeight,
) -> TestResult {
    assert!(
        !a.is_empty() && !b.is_empty(),
        "both groups must be non-empty"
    );

    // Pool the samples, remembering group membership.
    let mut subjects: Vec<(f64, bool, usize)> = Vec::with_capacity(a.len() + b.len());
    for o in a.observations() {
        subjects.push((o.duration, o.event, 0));
    }
    for o in b.observations() {
        subjects.push((o.duration, o.event, 1));
    }
    subjects.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("finite durations"));

    // Pooled KM (left-continuous) for Fleming–Harrington weights.
    let pooled_km = match weight {
        LogRankWeight::FlemingHarrington { .. } => {
            let mut pooled = a.clone();
            for o in b.observations() {
                pooled.push(*o);
            }
            Some(KaplanMeier::fit(&pooled))
        }
        _ => None,
    };

    let total = subjects.len();
    let mut at_risk_a = a.len();
    let mut at_risk = total;
    let mut u = 0.0_f64; // Σ w (d_a − E[d_a])
    let mut var = 0.0_f64; // Σ w² V

    let mut i = 0;
    while i < total {
        let t = subjects[i].0;
        let mut deaths = 0usize;
        let mut deaths_a = 0usize;
        let mut leaving = 0usize;
        let mut leaving_a = 0usize;
        let mut j = i;
        while j < total && subjects[j].0 == t {
            let (_, event, group) = subjects[j];
            leaving += 1;
            if group == 0 {
                leaving_a += 1;
            }
            if event {
                deaths += 1;
                if group == 0 {
                    deaths_a += 1;
                }
            }
            j += 1;
        }

        if deaths > 0 && at_risk > 1 {
            let n = at_risk as f64;
            let n_a = at_risk_a as f64;
            let d = deaths as f64;
            let expected_a = d * n_a / n;
            let v = d * (n_a / n) * (1.0 - n_a / n) * (n - d) / (n - 1.0);
            let w = match weight {
                LogRankWeight::LogRank => 1.0,
                LogRankWeight::GehanBreslow => n,
                LogRankWeight::TaroneWare => n.sqrt(),
                LogRankWeight::FlemingHarrington { p, q } => {
                    // Left-continuous survival: value just before t.
                    let s_minus = pooled_km
                        .as_ref()
                        .expect("pooled KM built for FH")
                        .survival_at(t - f64::EPSILON.max(t * 1e-12));
                    s_minus.powf(p) * (1.0 - s_minus).powf(q)
                }
            };
            u += w * (deaths_a as f64 - expected_a);
            var += w * w * v;
        }

        at_risk -= leaving;
        at_risk_a -= leaving_a;
        i = j;
    }

    let statistic = if var > 0.0 { u * u / var } else { 0.0 };
    TestResult {
        statistic,
        p_value: chi_squared_sf(statistic, 1.0),
        dof: 1.0,
    }
}

/// K-sample log-rank test: are `k` survival distributions identical?
///
/// Uses the vector of observed-minus-expected death counts over the
/// first `k − 1` groups with its estimated covariance; the statistic is
/// chi-squared with `k − 1` degrees of freedom.
///
/// # Panics
///
/// Panics if fewer than two groups are given or any group is empty.
pub fn logrank_test_k(groups: &[&SurvivalData]) -> TestResult {
    assert!(groups.len() >= 2, "need at least two groups");
    for (g, data) in groups.iter().enumerate() {
        assert!(!data.is_empty(), "group {g} is empty");
    }
    let k = groups.len();

    let mut subjects: Vec<(f64, bool, usize)> = Vec::new();
    for (g, data) in groups.iter().enumerate() {
        for o in data.observations() {
            subjects.push((o.duration, o.event, g));
        }
    }
    subjects.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("finite durations"));

    let total = subjects.len();
    let mut at_risk_g: Vec<usize> = groups.iter().map(|d| d.len()).collect();
    let mut at_risk = total;

    // z = O − E over first k−1 groups; v = covariance matrix.
    let dim = k - 1;
    let mut z = vec![0.0_f64; dim];
    let mut cov = vec![vec![0.0_f64; dim]; dim];

    let mut i = 0;
    while i < total {
        let t = subjects[i].0;
        let mut deaths = 0usize;
        let mut deaths_g = vec![0usize; k];
        let mut leaving = 0usize;
        let mut leaving_g = vec![0usize; k];
        let mut j = i;
        while j < total && subjects[j].0 == t {
            let (_, event, group) = subjects[j];
            leaving += 1;
            leaving_g[group] += 1;
            if event {
                deaths += 1;
                deaths_g[group] += 1;
            }
            j += 1;
        }

        if deaths > 0 && at_risk > 1 {
            let n = at_risk as f64;
            let d = deaths as f64;
            let frac = d * (n - d) / (n - 1.0);
            for a in 0..dim {
                let p_a = at_risk_g[a] as f64 / n;
                z[a] += deaths_g[a] as f64 - d * p_a;
                for b in 0..dim {
                    let p_b = at_risk_g[b] as f64 / n;
                    let delta = if a == b { 1.0 } else { 0.0 };
                    cov[a][b] += frac * p_a * (delta - p_b);
                }
            }
        }

        at_risk -= leaving;
        for g in 0..k {
            at_risk_g[g] -= leaving_g[g];
        }
        i = j;
    }

    let statistic = quadratic_form_inv(&z, &cov);
    TestResult {
        statistic,
        p_value: chi_squared_sf(statistic, dim as f64),
        dof: dim as f64,
    }
}

/// Computes `z' C⁻¹ z` by solving `C x = z` with partial-pivot Gaussian
/// elimination (C is (k−1)×(k−1), tiny in practice). Returns 0 when C is
/// singular (all groups identical at every event time).
#[allow(clippy::needless_range_loop)] // elimination reads clearest with row/col indices
fn quadratic_form_inv(z: &[f64], cov: &[Vec<f64>]) -> f64 {
    let n = z.len();
    let mut a: Vec<Vec<f64>> = cov.to_vec();
    let mut x: Vec<f64> = z.to_vec();

    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        for row in col + 1..n {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-12 {
            return 0.0;
        }
        a.swap(col, pivot);
        x.swap(col, pivot);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            for c in col..n {
                a[row][c] -= f * a[col][c];
            }
            x[row] -= f * x[col];
        }
    }
    // Back substitution.
    let mut sol = vec![0.0_f64; n];
    for row in (0..n).rev() {
        let mut acc = x[row];
        for c in row + 1..n {
            acc -= a[row][c] * sol[c];
        }
        sol[row] = acc / a[row][row];
    }
    z.iter().zip(&sol).map(|(zi, si)| zi * si).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Textbook example (Kleinbaum & Klein ch. 2): two small remission
    /// groups with a known log-rank statistic around 3.77.
    fn kk_groups() -> (SurvivalData, SurvivalData) {
        // Group 1 (treatment-like), group 2 (control-like).
        let g1 = SurvivalData::from_pairs(&[
            (6.0, true),
            (6.0, true),
            (6.0, true),
            (7.0, true),
            (10.0, true),
            (13.0, true),
            (16.0, true),
            (22.0, true),
            (23.0, true),
            (6.0, false),
            (9.0, false),
            (10.0, false),
            (11.0, false),
            (17.0, false),
            (19.0, false),
            (20.0, false),
            (25.0, false),
            (32.0, false),
            (32.0, false),
            (34.0, false),
            (35.0, false),
        ]);
        let g2 = SurvivalData::from_pairs(&[
            (1.0, true),
            (1.0, true),
            (2.0, true),
            (2.0, true),
            (3.0, true),
            (4.0, true),
            (4.0, true),
            (5.0, true),
            (5.0, true),
            (8.0, true),
            (8.0, true),
            (8.0, true),
            (8.0, true),
            (11.0, true),
            (11.0, true),
            (12.0, true),
            (12.0, true),
            (15.0, true),
            (17.0, true),
            (22.0, true),
            (23.0, true),
        ]);
        (g1, g2)
    }

    #[test]
    fn remission_example_is_highly_significant() {
        let (g1, g2) = kk_groups();
        let r = logrank_test(&g1, &g2);
        // Published chi-squared for this dataset is 16.79.
        assert!((r.statistic - 16.79).abs() < 0.05, "stat = {}", r.statistic);
        assert!(r.p_value < 1e-4);
        assert_eq!(r.dof, 1.0);
    }

    #[test]
    fn identical_groups_not_significant() {
        let d = SurvivalData::from_pairs(&[
            (1.0, true),
            (2.0, true),
            (3.0, false),
            (4.0, true),
            (9.0, false),
        ]);
        let r = logrank_test(&d, &d.clone());
        assert!(r.statistic < 1e-9);
        assert!(r.p_value > 0.99);
    }

    #[test]
    fn symmetric_in_group_order() {
        let (g1, g2) = kk_groups();
        let ab = logrank_test(&g1, &g2);
        let ba = logrank_test(&g2, &g1);
        assert!((ab.statistic - ba.statistic).abs() < 1e-9);
        assert!((ab.p_value - ba.p_value).abs() < 1e-12);
    }

    #[test]
    fn k_sample_reduces_to_two_sample() {
        let (g1, g2) = kk_groups();
        let two = logrank_test(&g1, &g2);
        let k = logrank_test_k(&[&g1, &g2]);
        assert!((two.statistic - k.statistic).abs() < 1e-6);
        assert_eq!(k.dof, 1.0);
    }

    #[test]
    fn k_sample_three_groups() {
        let mut rng = SmallRng::seed_from_u64(4);
        let gen = |scale: f64, rng: &mut SmallRng| {
            SurvivalData::from_pairs(
                &(0..200)
                    .map(|_| {
                        let t: f64 = -(1.0 - rng.gen::<f64>()).ln() * scale;
                        (t, t < 50.0)
                    })
                    .collect::<Vec<_>>(),
            )
        };
        let a = gen(5.0, &mut rng);
        let b = gen(5.0, &mut rng);
        let c = gen(25.0, &mut rng);
        // a vs b similar; adding c makes it significant.
        let same = logrank_test_k(&[&a, &b]);
        assert!(same.p_value > 0.01);
        let diff = logrank_test_k(&[&a, &b, &c]);
        assert_eq!(diff.dof, 2.0);
        assert!(diff.p_value < 1e-6);
    }

    #[test]
    fn weighted_variants_agree_on_direction() {
        let (g1, g2) = kk_groups();
        for w in [
            LogRankWeight::LogRank,
            LogRankWeight::GehanBreslow,
            LogRankWeight::TaroneWare,
            LogRankWeight::FlemingHarrington { p: 1.0, q: 0.0 },
        ] {
            let r = weighted_logrank_test(&g1, &g2, w);
            assert!(r.p_value < 0.01, "{w:?}: p = {}", r.p_value);
        }
    }

    #[test]
    fn detects_separated_exponentials() {
        let mut rng = SmallRng::seed_from_u64(9);
        let sample = |mean: f64, rng: &mut SmallRng| {
            SurvivalData::from_pairs(
                &(0..500)
                    .map(|_| {
                        let t: f64 = -(1.0 - rng.gen::<f64>()).ln() * mean;
                        let c = 100.0;
                        if t <= c {
                            (t, true)
                        } else {
                            (c, false)
                        }
                    })
                    .collect::<Vec<_>>(),
            )
        };
        let short = sample(10.0, &mut rng);
        let long = sample(40.0, &mut rng);
        let r = logrank_test(&short, &long);
        assert!(r.p_value < 1e-10, "p = {}", r.p_value);
    }

    proptest! {
        #[test]
        fn prop_statistic_nonnegative_p_in_unit(
            a in prop::collection::vec((0.1..50.0_f64, any::<bool>()), 2..60),
            b in prop::collection::vec((0.1..50.0_f64, any::<bool>()), 2..60),
        ) {
            let r = logrank_test(
                &SurvivalData::from_pairs(&a),
                &SurvivalData::from_pairs(&b),
            );
            prop_assert!(r.statistic >= 0.0);
            prop_assert!(r.p_value >= 0.0 && r.p_value <= 1.0);
        }

        #[test]
        fn prop_symmetry(
            a in prop::collection::vec((0.1..50.0_f64, any::<bool>()), 2..40),
            b in prop::collection::vec((0.1..50.0_f64, any::<bool>()), 2..40),
        ) {
            let da = SurvivalData::from_pairs(&a);
            let db = SurvivalData::from_pairs(&b);
            let ab = logrank_test(&da, &db);
            let ba = logrank_test(&db, &da);
            prop_assert!((ab.statistic - ba.statistic).abs() < 1e-7);
        }
    }
}
