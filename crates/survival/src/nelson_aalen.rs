//! The Nelson–Aalen cumulative-hazard estimator.

use crate::types::SurvivalData;

/// A fitted Nelson–Aalen cumulative hazard `H(t) = Σ_{t_i <= t} d_i / n_i`.
///
/// Complements Kaplan–Meier: hazard slopes make "infant mortality vs
/// incentive-cliff" regimes in the database population visible directly.
/// `exp(−H(t))` is the Fleming–Harrington survival estimate, which
/// agrees closely with KM on large samples.
#[derive(Debug, Clone, PartialEq)]
pub struct NelsonAalen {
    times: Vec<f64>,
    cumulative_hazard: Vec<f64>,
    variance: Vec<f64>,
    n: usize,
}

impl NelsonAalen {
    /// Fits the estimator.
    pub fn fit(data: &SurvivalData) -> NelsonAalen {
        let table = data.event_table();
        let mut times = Vec::new();
        let mut cumulative_hazard = Vec::new();
        let mut variance = Vec::new();
        let mut h = 0.0;
        let mut v = 0.0;
        for row in table.death_rows() {
            let n_i = row.at_risk as f64;
            let d_i = row.deaths as f64;
            h += d_i / n_i;
            // Aalen's variance estimator.
            v += d_i * (n_i - d_i) / (n_i * n_i * n_i);
            times.push(row.time);
            cumulative_hazard.push(h);
            variance.push(v);
        }
        NelsonAalen {
            times,
            cumulative_hazard,
            variance,
            n: data.len(),
        }
    }

    /// Event times (step locations).
    pub fn event_times(&self) -> &[f64] {
        &self.times
    }

    /// Cumulative hazards aligned with [`NelsonAalen::event_times`].
    pub fn cumulative_hazards(&self) -> &[f64] {
        &self.cumulative_hazard
    }

    /// `H(t)`: cumulative hazard at `t` (0 before the first event).
    pub fn cumulative_hazard_at(&self, t: f64) -> f64 {
        match self
            .times
            .binary_search_by(|x| x.partial_cmp(&t).expect("finite times"))
        {
            Ok(idx) => self.cumulative_hazard[idx],
            Err(0) => 0.0,
            Err(idx) => self.cumulative_hazard[idx - 1],
        }
    }

    /// Variance of `H(t)`.
    pub fn variance_at(&self, t: f64) -> f64 {
        match self
            .times
            .binary_search_by(|x| x.partial_cmp(&t).expect("finite times"))
        {
            Ok(idx) => self.variance[idx],
            Err(0) => 0.0,
            Err(idx) => self.variance[idx - 1],
        }
    }

    /// The Fleming–Harrington survival estimate `exp(−H(t))`.
    pub fn survival_at(&self, t: f64) -> f64 {
        (-self.cumulative_hazard_at(t)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kaplan_meier::KaplanMeier;
    use crate::types::SurvivalData;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn hand_computed_example() {
        // Deaths at 1 (n=4), 3 (n=2): H = 1/4 + 1/2 = 0.75.
        let d = SurvivalData::from_pairs(&[(1.0, true), (2.0, false), (3.0, true), (4.0, false)]);
        let na = NelsonAalen::fit(&d);
        assert!((na.cumulative_hazard_at(0.5) - 0.0).abs() < 1e-12);
        assert!((na.cumulative_hazard_at(1.0) - 0.25).abs() < 1e-12);
        assert!((na.cumulative_hazard_at(10.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn hazard_is_nondecreasing() {
        let d = SurvivalData::from_pairs(&[(1.0, true), (1.0, true), (2.0, true), (5.0, false)]);
        let na = NelsonAalen::fit(&d);
        let mut prev = 0.0;
        for &h in na.cumulative_hazards() {
            assert!(h >= prev);
            prev = h;
        }
    }

    #[test]
    fn agrees_with_km_on_large_samples() {
        // Exponential lifetimes, 30% random censoring.
        let mut rng = SmallRng::seed_from_u64(17);
        let pairs: Vec<(f64, bool)> = (0..5000)
            .map(|_| {
                let t: f64 = -(1.0 - rng.gen::<f64>()).ln() * 10.0;
                let c: f64 = rng.gen::<f64>() * 30.0;
                if t <= c {
                    (t, true)
                } else {
                    (c, false)
                }
            })
            .collect();
        let data = SurvivalData::from_pairs(&pairs);
        let km = KaplanMeier::fit(&data);
        let na = NelsonAalen::fit(&data);
        for &t in &[1.0, 5.0, 10.0, 20.0] {
            let diff = (km.survival_at(t) - na.survival_at(t)).abs();
            assert!(diff < 0.01, "at t={t}: km vs fh differ by {diff}");
        }
    }

    proptest! {
        #[test]
        fn prop_variance_nonnegative_and_monotone(
            pairs in prop::collection::vec((0.0..50.0_f64, any::<bool>()), 1..100)
        ) {
            let na = NelsonAalen::fit(&SurvivalData::from_pairs(&pairs));
            let mut prev = 0.0;
            for (&t, _) in na.event_times().iter().zip(na.cumulative_hazards()) {
                let v = na.variance_at(t);
                prop_assert!(v >= prev - 1e-15);
                prev = v;
            }
        }
    }
}
