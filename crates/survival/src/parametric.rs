//! Censored maximum-likelihood fits of parametric lifetime models.
//!
//! An extension over the paper's purely nonparametric analysis: fitting
//! exponential and Weibull models to database lifespans quantifies the
//! "infant mortality" regime (Weibull shape < 1) and supports AIC-based
//! model comparison in the study report.

use crate::types::SurvivalData;
use stats::distributions::{ContinuousDistribution, Exponential, Weibull};

/// Maximum-likelihood exponential fit under right-censoring.
///
/// The MLE has the closed form `λ̂ = events / total observed time`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialFit {
    rate: f64,
    log_likelihood: f64,
    events: usize,
    n: usize,
}

impl ExponentialFit {
    /// Fits the model.
    ///
    /// # Panics
    ///
    /// Panics if there are no events or the total observed time is zero
    /// (the likelihood is then unbounded / undefined).
    pub fn fit(data: &SurvivalData) -> ExponentialFit {
        let events = data.event_count();
        let total_time: f64 = data.observations().iter().map(|o| o.duration).sum();
        assert!(events > 0, "exponential MLE requires at least one event");
        assert!(
            total_time > 0.0,
            "exponential MLE requires positive total time"
        );
        let rate = events as f64 / total_time;
        let log_likelihood = events as f64 * rate.ln() - rate * total_time;
        ExponentialFit {
            rate,
            log_likelihood,
            events,
            n: data.len(),
        }
    }

    /// Fitted rate λ̂.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The fitted distribution.
    pub fn distribution(&self) -> Exponential {
        Exponential::new(self.rate)
    }

    /// Maximized log-likelihood.
    pub fn log_likelihood(&self) -> f64 {
        self.log_likelihood
    }

    /// Akaike information criterion (`2k − 2 ln L`, k = 1).
    pub fn aic(&self) -> f64 {
        2.0 - 2.0 * self.log_likelihood
    }

    /// Model survival function at `t`.
    pub fn survival_at(&self, t: f64) -> f64 {
        self.distribution().sf(t)
    }
}

/// Maximum-likelihood Weibull fit under right-censoring.
///
/// Solves the profile-likelihood equation for the shape `k` by a
/// safeguarded bisection, then recovers the scale in closed form:
/// `λ̂ = (Σ tᵢᵏ / events)^{1/k}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeibullFit {
    shape: f64,
    scale: f64,
    log_likelihood: f64,
    events: usize,
    n: usize,
}

impl WeibullFit {
    /// Fits the model. Durations of zero are nudged to a small positive
    /// value (the Weibull likelihood needs `t > 0`).
    ///
    /// # Panics
    ///
    /// Panics if there are no events.
    pub fn fit(data: &SurvivalData) -> WeibullFit {
        let events = data.event_count();
        assert!(events > 0, "Weibull MLE requires at least one event");
        let r = events as f64;

        const T_FLOOR: f64 = 1e-6;
        let obs: Vec<(f64, bool)> = data
            .observations()
            .iter()
            .map(|o| (o.duration.max(T_FLOOR), o.event))
            .collect();

        let sum_delta_ln: f64 = obs.iter().filter(|(_, e)| *e).map(|(t, _)| t.ln()).sum();

        // Profile score in k:
        //   g(k) = Σ t^k ln t / Σ t^k − 1/k − (Σ δ ln t)/r
        // g is increasing in k; bracket a root and bisect.
        let g = |k: f64| -> f64 {
            let mut sum_tk = 0.0;
            let mut sum_tk_ln = 0.0;
            for (t, _) in &obs {
                let tk = t.powf(k);
                sum_tk += tk;
                sum_tk_ln += tk * t.ln();
            }
            sum_tk_ln / sum_tk - 1.0 / k - sum_delta_ln / r
        };

        let mut lo = 1e-3;
        let mut hi = 1.0;
        while g(hi) < 0.0 && hi < 1e3 {
            hi *= 2.0;
        }
        while g(lo) > 0.0 && lo > 1e-9 {
            lo /= 2.0;
        }
        let mut shape = 1.0;
        if g(lo) <= 0.0 && g(hi) >= 0.0 {
            for _ in 0..200 {
                let mid = 0.5 * (lo + hi);
                if g(mid) < 0.0 {
                    lo = mid;
                } else {
                    hi = mid;
                }
                if hi - lo < 1e-12 * (1.0 + hi) {
                    break;
                }
            }
            shape = 0.5 * (lo + hi);
        }

        let sum_tk: f64 = obs.iter().map(|(t, _)| t.powf(shape)).sum();
        let scale = (sum_tk / r).powf(1.0 / shape);

        // Log-likelihood at the MLE.
        let mut ll = 0.0;
        for (t, event) in &obs {
            let z = t / scale;
            if *event {
                ll += shape.ln() - scale.ln() + (shape - 1.0) * z.ln();
            }
            ll -= z.powf(shape);
        }

        WeibullFit {
            shape,
            scale,
            log_likelihood: ll,
            events,
            n: data.len(),
        }
    }

    /// Fitted shape k̂ (< 1 means decreasing hazard / infant mortality).
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Fitted scale λ̂.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The fitted distribution.
    pub fn distribution(&self) -> Weibull {
        Weibull::new(self.shape, self.scale)
    }

    /// Maximized log-likelihood.
    pub fn log_likelihood(&self) -> f64 {
        self.log_likelihood
    }

    /// Akaike information criterion (`2k − 2 ln L`, k = 2).
    pub fn aic(&self) -> f64 {
        4.0 - 2.0 * self.log_likelihood
    }

    /// Model survival function at `t`.
    pub fn survival_at(&self, t: f64) -> f64 {
        self.distribution().sf(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::SurvivalData;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use stats::distributions::{ContinuousDistribution, Weibull};

    fn censored_sample<D: ContinuousDistribution>(
        dist: &D,
        censor_at: f64,
        n: usize,
        seed: u64,
    ) -> SurvivalData {
        let mut rng = SmallRng::seed_from_u64(seed);
        SurvivalData::from_pairs(
            &(0..n)
                .map(|_| {
                    let t = dist.sample(&mut rng);
                    if t <= censor_at {
                        (t, true)
                    } else {
                        (censor_at, false)
                    }
                })
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn exponential_recovers_rate() {
        let truth = Exponential::new(0.25);
        let data = censored_sample(&truth, 12.0, 4000, 1);
        let fit = ExponentialFit::fit(&data);
        assert!((fit.rate() - 0.25).abs() < 0.02, "rate = {}", fit.rate());
    }

    #[test]
    fn exponential_closed_form_no_censoring() {
        let data = SurvivalData::from_pairs(&[(1.0, true), (2.0, true), (3.0, true)]);
        let fit = ExponentialFit::fit(&data);
        assert!((fit.rate() - 3.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn weibull_recovers_parameters() {
        let truth = Weibull::new(0.7, 20.0);
        let data = censored_sample(&truth, 60.0, 6000, 2);
        let fit = WeibullFit::fit(&data);
        assert!((fit.shape() - 0.7).abs() < 0.05, "shape = {}", fit.shape());
        assert!((fit.scale() - 20.0).abs() < 2.0, "scale = {}", fit.scale());
    }

    #[test]
    fn weibull_shape_one_close_to_exponential() {
        let truth = Exponential::new(0.1);
        let data = censored_sample(&truth, 50.0, 6000, 3);
        let fit = WeibullFit::fit(&data);
        assert!((fit.shape() - 1.0).abs() < 0.06, "shape = {}", fit.shape());
    }

    #[test]
    fn aic_prefers_true_model_family() {
        // Strongly non-exponential Weibull data: Weibull AIC must win.
        let truth = Weibull::new(0.5, 10.0);
        let data = censored_sample(&truth, 100.0, 3000, 4);
        let weib = WeibullFit::fit(&data);
        let expo = ExponentialFit::fit(&data);
        assert!(
            weib.aic() < expo.aic(),
            "weibull aic {} vs exponential aic {}",
            weib.aic(),
            expo.aic()
        );
    }

    #[test]
    fn survival_functions_are_proper() {
        let data = censored_sample(&Weibull::new(0.8, 15.0), 40.0, 500, 5);
        let fit = WeibullFit::fit(&data);
        assert!(fit.survival_at(0.0) > 0.999);
        let mut prev = 1.0;
        for d in 1..50 {
            let s = fit.survival_at(d as f64);
            assert!(s <= prev && (0.0..=1.0).contains(&s));
            prev = s;
        }
    }

    #[test]
    #[should_panic]
    fn exponential_rejects_all_censored() {
        ExponentialFit::fit(&SurvivalData::from_pairs(&[(5.0, false)]));
    }
}
