//! Core survival-data types.

/// One subject's follow-up: how long it was observed and whether the
/// event of interest (for us: "the database was dropped") occurred at
/// the end of that span.
///
/// `event == false` means the subject is **right-censored**: it was
/// still alive when observation ended, so its true lifespan is only
/// known to exceed `duration`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Observed duration (days, in this workspace's convention).
    pub duration: f64,
    /// Whether the event occurred (`true`) or the subject was censored
    /// (`false`).
    pub event: bool,
}

impl Observation {
    /// An observed event (death / drop) at `duration`.
    pub fn event(duration: f64) -> Observation {
        Observation {
            duration,
            event: true,
        }
    }

    /// A right-censored observation at `duration`.
    pub fn censored(duration: f64) -> Observation {
        Observation {
            duration,
            event: false,
        }
    }
}

/// A sample of survival observations.
///
/// Construction validates that durations are finite and non-negative;
/// every estimator in this crate relies on that invariant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SurvivalData {
    observations: Vec<Observation>,
}

impl SurvivalData {
    /// Creates survival data from observations.
    ///
    /// # Panics
    ///
    /// Panics if any duration is negative or non-finite.
    pub fn new(observations: Vec<Observation>) -> SurvivalData {
        for o in &observations {
            assert!(
                o.duration.is_finite() && o.duration >= 0.0,
                "invalid duration {}",
                o.duration
            );
        }
        SurvivalData { observations }
    }

    /// Creates survival data from `(duration, event)` pairs.
    pub fn from_pairs(pairs: &[(f64, bool)]) -> SurvivalData {
        SurvivalData::new(
            pairs
                .iter()
                .map(|&(duration, event)| Observation { duration, event })
                .collect(),
        )
    }

    /// All durations where the event occurred.
    pub fn event_durations(&self) -> impl Iterator<Item = f64> + '_ {
        self.observations
            .iter()
            .filter(|o| o.event)
            .map(|o| o.duration)
    }

    /// The observations.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Number of subjects.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True if there are no subjects.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// Number of events (non-censored observations).
    pub fn event_count(&self) -> usize {
        self.observations.iter().filter(|o| o.event).count()
    }

    /// Number of censored observations.
    pub fn censored_count(&self) -> usize {
        self.len() - self.event_count()
    }

    /// Adds one observation.
    pub fn push(&mut self, obs: Observation) {
        assert!(
            obs.duration.is_finite() && obs.duration >= 0.0,
            "invalid duration {}",
            obs.duration
        );
        self.observations.push(obs);
    }

    /// The distinct event times in ascending order together with, at
    /// each time `t`: the number at risk just before `t` and the number
    /// of events at `t`. Censored subjects leave the risk set *after*
    /// events at the same time (the standard convention).
    ///
    /// This is the shared preprocessing step for KM, Nelson–Aalen, the
    /// life table, and log-rank.
    pub fn event_table(&self) -> EventTable {
        let mut sorted: Vec<Observation> = self.observations.clone();
        sorted.sort_by(|a, b| {
            a.duration
                .partial_cmp(&b.duration)
                .expect("durations are finite")
        });
        let n = sorted.len();
        let mut rows: Vec<EventTableRow> = Vec::new();
        let mut i = 0;
        let mut removed_before = 0usize; // subjects that left the risk set
        while i < n {
            let t = sorted[i].duration;
            let mut deaths = 0usize;
            let mut censored = 0usize;
            let mut j = i;
            while j < n && sorted[j].duration == t {
                if sorted[j].event {
                    deaths += 1;
                } else {
                    censored += 1;
                }
                j += 1;
            }
            let at_risk = n - removed_before;
            if deaths > 0 {
                rows.push(EventTableRow {
                    time: t,
                    at_risk,
                    deaths,
                    censored,
                });
            } else {
                // Pure-censoring times don't get KM steps but still
                // shrink the risk set; record them for life tables.
                rows.push(EventTableRow {
                    time: t,
                    at_risk,
                    deaths: 0,
                    censored,
                });
            }
            removed_before += deaths + censored;
            i = j;
        }
        EventTable { rows, total: n }
    }
}

/// One row of an [`EventTable`]: the risk-set accounting at one distinct
/// observed time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventTableRow {
    /// The distinct observation time.
    pub time: f64,
    /// Subjects at risk just before `time`.
    pub at_risk: usize,
    /// Events (deaths) at `time`.
    pub deaths: usize,
    /// Censorings at `time`.
    pub censored: usize,
}

/// Risk-set accounting at every distinct observed time, sorted
/// ascending.
#[derive(Debug, Clone, PartialEq)]
pub struct EventTable {
    rows: Vec<EventTableRow>,
    total: usize,
}

impl EventTable {
    /// The rows, ascending in time.
    pub fn rows(&self) -> &[EventTableRow] {
        &self.rows
    }

    /// Total number of subjects.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Rows at which at least one event occurred.
    pub fn death_rows(&self) -> impl Iterator<Item = &EventTableRow> {
        self.rows.iter().filter(|r| r.deaths > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let d = SurvivalData::from_pairs(&[(1.0, true), (2.0, false), (2.0, true)]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.event_count(), 2);
        assert_eq!(d.censored_count(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn event_table_groups_ties() {
        let d = SurvivalData::from_pairs(&[
            (1.0, true),
            (1.0, true),
            (1.0, false),
            (3.0, false),
            (5.0, true),
        ]);
        let t = d.event_table();
        let rows = t.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows[0],
            EventTableRow {
                time: 1.0,
                at_risk: 5,
                deaths: 2,
                censored: 1
            }
        );
        assert_eq!(
            rows[1],
            EventTableRow {
                time: 3.0,
                at_risk: 2,
                deaths: 0,
                censored: 1
            }
        );
        assert_eq!(
            rows[2],
            EventTableRow {
                time: 5.0,
                at_risk: 1,
                deaths: 1,
                censored: 0
            }
        );
        assert_eq!(t.death_rows().count(), 2);
    }

    #[test]
    fn empty_data_is_fine() {
        let d = SurvivalData::default();
        assert!(d.is_empty());
        assert!(d.event_table().rows().is_empty());
    }

    #[test]
    #[should_panic]
    fn rejects_negative_duration() {
        SurvivalData::from_pairs(&[(-1.0, true)]);
    }

    #[test]
    #[should_panic]
    fn rejects_nan_duration() {
        SurvivalData::from_pairs(&[(f64::NAN, true)]);
    }

    #[test]
    fn constructors() {
        assert!(Observation::event(3.0).event);
        assert!(!Observation::censored(3.0).event);
        let mut d = SurvivalData::default();
        d.push(Observation::event(1.0));
        assert_eq!(d.len(), 1);
    }
}
