//! Cross-estimator property tests (PR 4 satellite).
//!
//! Each property here ties two estimators together rather than checking
//! one in isolation:
//!
//! 1. the Kaplan–Meier curve is non-increasing and stays in `[0, 1]`;
//! 2. on integral-duration, fully-observed samples the unit-width life
//!    table reproduces KM exactly (ties included) — the actuarial
//!    censoring adjustment vanishes when nobody is censored;
//! 3. the Fleming–Harrington transform of Nelson–Aalen dominates KM
//!    pointwise (`1 − x ≤ e⁻ˣ` term by term);
//! 4. the log-rank statistic is invariant under relabeling the groups,
//!    both two-sample and k-sample.

use proptest::prelude::*;
use survival::{logrank_test, logrank_test_k, KaplanMeier, LifeTable, NelsonAalen, SurvivalData};

/// The bounded follow-up window every strategy below draws from.
const MAX_T: f64 = 60.0;

fn data(pairs: &[(f64, bool)]) -> SurvivalData {
    SurvivalData::from_pairs(pairs)
}

proptest! {
    /// Property 1: S(t) starts at 1, never increases, and never leaves
    /// the unit interval — checked at every step and between steps.
    #[test]
    fn km_survival_is_nonincreasing(
        pairs in prop::collection::vec((0.0..MAX_T, any::<bool>()), 1..150)
    ) {
        let km = KaplanMeier::fit(&data(&pairs));
        prop_assert_eq!(km.survival_at(0.0), 1.0);
        let mut prev = 1.0_f64;
        for &t in km.event_times() {
            // Just before the step the curve still holds its old value.
            prop_assert!(km.survival_at(t - 1e-9) >= km.survival_at(t) - 1e-12);
            let s = km.survival_at(t);
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&s), "S({t}) = {s}");
            prop_assert!(s <= prev + 1e-12, "S({t}) = {s} rose above {prev}");
            prev = s;
        }
        // Beyond the last event the curve is flat.
        prop_assert_eq!(km.survival_at(MAX_T * 2.0), prev);
    }

    /// Property 2: with integral durations and no censoring, deaths at
    /// time `i` are exactly the deaths of life-table interval
    /// `[i, i+1)`, and the risk set entering that interval is the KM
    /// risk set at `i` — so the two survival curves agree at every
    /// interval end, ties and all.
    #[test]
    fn km_matches_unit_lifetable_on_tied_uncensored_data(
        raw in prop::collection::vec(any::<u8>(), 1..120)
    ) {
        // Integral durations in 0..30 with heavy ties.
        let pairs: Vec<(f64, bool)> = raw.iter().map(|&b| ((b % 30) as f64, true)).collect();
        let sample = data(&pairs);
        let km = KaplanMeier::fit(&sample);
        let lt = LifeTable::fit(&sample, 1.0, 30);
        for (i, row) in lt.rows().iter().enumerate() {
            let t = i as f64;
            // KM is a right-continuous step function, so its value at the
            // integer time equals the life-table survival at interval end.
            prop_assert!(
                (km.survival_at(t) - row.survival).abs() < 1e-9,
                "interval {i}: km {} vs lifetable {}",
                km.survival_at(t),
                row.survival
            );
        }
    }

    /// Property 3: exp(−H(t)) ≥ S(t) pointwise. Term by term,
    /// `1 − d/n ≤ exp(−d/n)`, and both estimators multiply/sum over the
    /// same event table, so the ordering is exact up to rounding.
    #[test]
    fn fleming_harrington_dominates_km(
        pairs in prop::collection::vec((0.0..MAX_T, any::<bool>()), 1..150),
        probe in 0.0..(2.0 * MAX_T),
    ) {
        let sample = data(&pairs);
        let km = KaplanMeier::fit(&sample);
        let na = NelsonAalen::fit(&sample);
        for &t in km.event_times() {
            prop_assert!(
                na.survival_at(t) >= km.survival_at(t) - 1e-12,
                "at t={t}: fh {} < km {}",
                na.survival_at(t),
                km.survival_at(t)
            );
        }
        // Also at an arbitrary probe time, not just the step locations.
        prop_assert!(na.survival_at(probe) >= km.survival_at(probe) - 1e-12);
        // And H itself is nonnegative and nondecreasing.
        let mut prev = 0.0;
        for &h in na.cumulative_hazards() {
            prop_assert!(h >= prev - 1e-15);
            prev = h;
        }
    }

    /// Property 4a: swapping the two groups leaves the two-sample
    /// statistic (and hence the p-value) unchanged.
    #[test]
    fn logrank_is_invariant_under_group_swap(
        a in prop::collection::vec((0.1..MAX_T, any::<bool>()), 2..60),
        b in prop::collection::vec((0.1..MAX_T, any::<bool>()), 2..60),
    ) {
        let (da, db) = (data(&a), data(&b));
        let ab = logrank_test(&da, &db);
        let ba = logrank_test(&db, &da);
        prop_assert!(
            (ab.statistic - ba.statistic).abs() < 1e-7 * (1.0 + ab.statistic),
            "{} vs {}",
            ab.statistic,
            ba.statistic
        );
        prop_assert!((ab.p_value - ba.p_value).abs() < 1e-9);
        prop_assert_eq!(ab.dof, ba.dof);
    }

    /// Property 4b: the k-sample statistic is a function of the
    /// *partition*, not the group labels — every permutation of three
    /// groups yields the same chi-squared value, even though the
    /// internal O−E vector and covariance matrix are built over
    /// different "first k−1 groups" each time.
    #[test]
    fn logrank_k_is_invariant_under_relabeling(
        a in prop::collection::vec((0.1..MAX_T, any::<bool>()), 2..40),
        b in prop::collection::vec((0.1..MAX_T, any::<bool>()), 2..40),
        c in prop::collection::vec((0.1..MAX_T, any::<bool>()), 2..40),
    ) {
        let (da, db, dc) = (data(&a), data(&b), data(&c));
        let reference = logrank_test_k(&[&da, &db, &dc]);
        prop_assert_eq!(reference.dof, 2.0);
        for order in [
            [&da, &dc, &db],
            [&db, &da, &dc],
            [&db, &dc, &da],
            [&dc, &da, &db],
            [&dc, &db, &da],
        ] {
            let permuted = logrank_test_k(&order);
            prop_assert!(
                (permuted.statistic - reference.statistic).abs()
                    < 1e-6 * (1.0 + reference.statistic),
                "relabeled statistic {} != {}",
                permuted.statistic,
                reference.statistic
            );
        }
    }
}

/// Deterministic spot-check of property 2 on a hand-built tied sample,
/// so a proptest regression has a minimal companion to bisect against.
#[test]
fn tied_uncensored_example_agrees_exactly() {
    // Deaths: 3 at t=1, 2 at t=2, 1 at t=4 — n = 6.
    let sample = data(&[
        (1.0, true),
        (1.0, true),
        (1.0, true),
        (2.0, true),
        (2.0, true),
        (4.0, true),
    ]);
    let km = KaplanMeier::fit(&sample);
    let lt = LifeTable::fit(&sample, 1.0, 5);
    // S(1) = 3/6, S(2) = 3/6 · 1/3 = 1/6, S(4) = 0.
    assert!((km.survival_at(1.0) - 0.5).abs() < 1e-12);
    assert!((km.survival_at(2.0) - 1.0 / 6.0).abs() < 1e-12);
    assert_eq!(km.survival_at(4.0), 0.0);
    for (i, row) in lt.rows().iter().enumerate() {
        assert!(
            (km.survival_at(i as f64) - row.survival).abs() < 1e-12,
            "interval {i}"
        );
    }
}
