//! The edition / service-level-objective catalog.
//!
//! Mirrors the public Azure SQL DB singleton-database offering at the
//! time of the paper: three editions (Basic on remote storage, Standard
//! on remote storage, Premium on local storage), each with one or more
//! service level objectives (SLOs) rated in database transaction units
//! (DTUs) and a maximum database size.

/// Database edition (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Edition {
    /// Entry tier, remote storage.
    Basic,
    /// Mid tier, remote storage.
    Standard,
    /// Top tier, local storage.
    Premium,
}

impl Edition {
    /// All editions, cheapest first.
    pub const ALL: [Edition; 3] = [Edition::Basic, Edition::Standard, Edition::Premium];

    /// Ladder position (Basic = 0 … Premium = 2); the feature pipeline
    /// uses the difference of these as "edition difference".
    pub fn rank(self) -> usize {
        match self {
            Edition::Basic => 0,
            Edition::Standard => 1,
            Edition::Premium => 2,
        }
    }
}

impl std::fmt::Display for Edition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Edition::Basic => write!(f, "Basic"),
            Edition::Standard => write!(f, "Standard"),
            Edition::Premium => write!(f, "Premium"),
        }
    }
}

/// One purchasable service level objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceLevelObjective {
    /// SLO name as sold (e.g. "S2").
    pub name: &'static str,
    /// Owning edition.
    pub edition: Edition,
    /// Database transaction units (the paper's DTU feature source).
    pub dtus: u32,
    /// Maximum database size in megabytes.
    pub max_size_mb: f64,
}

/// The full SLO ladder, ascending in DTUs within each edition.
///
/// DTU ratings and size caps match the public 2017-era catalog.
pub const SLOS: [ServiceLevelObjective; 13] = [
    ServiceLevelObjective {
        name: "B",
        edition: Edition::Basic,
        dtus: 5,
        max_size_mb: 2_048.0,
    },
    ServiceLevelObjective {
        name: "S0",
        edition: Edition::Standard,
        dtus: 10,
        max_size_mb: 256_000.0,
    },
    ServiceLevelObjective {
        name: "S1",
        edition: Edition::Standard,
        dtus: 20,
        max_size_mb: 256_000.0,
    },
    ServiceLevelObjective {
        name: "S2",
        edition: Edition::Standard,
        dtus: 50,
        max_size_mb: 256_000.0,
    },
    ServiceLevelObjective {
        name: "S3",
        edition: Edition::Standard,
        dtus: 100,
        max_size_mb: 256_000.0,
    },
    ServiceLevelObjective {
        name: "P1",
        edition: Edition::Premium,
        dtus: 125,
        max_size_mb: 512_000.0,
    },
    ServiceLevelObjective {
        name: "P2",
        edition: Edition::Premium,
        dtus: 250,
        max_size_mb: 512_000.0,
    },
    ServiceLevelObjective {
        name: "P4",
        edition: Edition::Premium,
        dtus: 500,
        max_size_mb: 512_000.0,
    },
    ServiceLevelObjective {
        name: "P6",
        edition: Edition::Premium,
        dtus: 1_000,
        max_size_mb: 512_000.0,
    },
    ServiceLevelObjective {
        name: "P11",
        edition: Edition::Premium,
        dtus: 1_750,
        max_size_mb: 1_048_576.0,
    },
    ServiceLevelObjective {
        name: "P15",
        edition: Edition::Premium,
        dtus: 4_000,
        max_size_mb: 1_048_576.0,
    },
    // Extended Standard rungs sold late in the trace period.
    ServiceLevelObjective {
        name: "S4",
        edition: Edition::Standard,
        dtus: 200,
        max_size_mb: 256_000.0,
    },
    ServiceLevelObjective {
        name: "S6",
        edition: Edition::Standard,
        dtus: 400,
        max_size_mb: 256_000.0,
    },
];

/// Catalog lookup helpers.
#[derive(Debug, Clone, Copy, Default)]
pub struct SloCatalog;

impl SloCatalog {
    /// Index of an SLO in [`SLOS`] by name.
    pub fn index_of(name: &str) -> Option<usize> {
        SLOS.iter().position(|s| s.name == name)
    }

    /// The SLO at a [`SLOS`] index.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn get(index: usize) -> &'static ServiceLevelObjective {
        &SLOS[index]
    }

    /// Indices of all SLOs in one edition, ascending by DTUs.
    pub fn edition_slos(edition: Edition) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..SLOS.len())
            .filter(|&i| SLOS[i].edition == edition)
            .collect();
        idx.sort_by_key(|&i| SLOS[i].dtus);
        idx
    }

    /// The cheapest SLO index of an edition.
    pub fn entry_slo(edition: Edition) -> usize {
        Self::edition_slos(edition)[0]
    }

    /// A neighbouring SLO one rung up (`up = true`) or down within the
    /// same edition, or `None` at the ladder's end.
    pub fn neighbour(index: usize, up: bool) -> Option<usize> {
        let ladder = Self::edition_slos(SLOS[index].edition);
        let pos = ladder.iter().position(|&i| i == index)?;
        if up {
            ladder.get(pos + 1).copied()
        } else {
            pos.checked_sub(1).map(|p| ladder[p])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn editions_are_ordered() {
        assert!(Edition::Basic.rank() < Edition::Standard.rank());
        assert!(Edition::Standard.rank() < Edition::Premium.rank());
        assert_eq!(Edition::Premium.to_string(), "Premium");
    }

    #[test]
    fn lookup_by_name() {
        let idx = SloCatalog::index_of("P11").unwrap();
        let slo = SloCatalog::get(idx);
        assert_eq!(slo.dtus, 1750);
        assert_eq!(slo.edition, Edition::Premium);
        assert!(SloCatalog::index_of("nope").is_none());
    }

    #[test]
    fn edition_ladders_ascend() {
        for edition in Edition::ALL {
            let ladder = SloCatalog::edition_slos(edition);
            assert!(!ladder.is_empty());
            for w in ladder.windows(2) {
                assert!(SLOS[w[0]].dtus < SLOS[w[1]].dtus);
            }
            assert!(ladder.iter().all(|&i| SLOS[i].edition == edition));
        }
    }

    #[test]
    fn entry_slos() {
        assert_eq!(
            SloCatalog::get(SloCatalog::entry_slo(Edition::Basic)).name,
            "B"
        );
        assert_eq!(
            SloCatalog::get(SloCatalog::entry_slo(Edition::Standard)).name,
            "S0"
        );
        assert_eq!(
            SloCatalog::get(SloCatalog::entry_slo(Edition::Premium)).name,
            "P1"
        );
    }

    #[test]
    fn neighbours_walk_the_ladder() {
        let s0 = SloCatalog::index_of("S0").unwrap();
        let s1 = SloCatalog::neighbour(s0, true).unwrap();
        assert_eq!(SloCatalog::get(s1).name, "S1");
        assert!(SloCatalog::neighbour(s0, false).is_none());
        let s6 = SloCatalog::index_of("S6").unwrap();
        assert!(SloCatalog::neighbour(s6, true).is_none());
        // Neighbours never cross editions.
        let b = SloCatalog::index_of("B").unwrap();
        assert!(SloCatalog::neighbour(b, true).is_none());
    }
}
