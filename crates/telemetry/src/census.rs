//! Census: the paper's population filters and lifespan labels.
//!
//! From §3.3: "Let T be the lifespan of database I. We label I as
//! ephemeral if T ≤ 2 days, short-lived if 2 < T ≤ 30 days, and
//! long-lived if T > 30 days." The census applies the study filters —
//! **singleton** databases only (elastic-pool databases are excluded,
//! §2) belonging to **external** clients only (internal subscriptions
//! are excluded, §3.3), plus, for survival curves, the 2-day survival
//! minimum — and derives labeled views of a fleet using only
//! information observable inside the window.

use crate::catalog::Edition;
use crate::database::DatabaseRecord;
use crate::fleet::Fleet;
use crate::subscription::SubscriptionId;
use simtime::{Duration, Timestamp};
use std::collections::HashMap;

/// Lifespan class boundaries (days).
pub const EPHEMERAL_MAX_DAYS: f64 = 2.0;
/// Short-lived / long-lived boundary (days), the paper's `y`.
pub const LONG_LIVED_MIN_DAYS: f64 = 30.0;

/// The paper's lifespan classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LifespanClass {
    /// `T <= 2` days.
    Ephemeral,
    /// `2 < T <= 30` days.
    ShortLived,
    /// `T > 30` days.
    LongLived,
}

impl std::fmt::Display for LifespanClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LifespanClass::Ephemeral => write!(f, "ephemeral"),
            LifespanClass::ShortLived => write!(f, "short-lived"),
            LifespanClass::LongLived => write!(f, "long-lived"),
        }
    }
}

/// A view over a generated fleet applying the paper's filters and
/// labels. All judgments use only telemetry observable inside the
/// window (a censored database whose 30th day lies beyond the window
/// end has an *unknown* class).
#[derive(Debug, Clone, Copy)]
pub struct Census<'a> {
    fleet: &'a Fleet,
    window_end: Timestamp,
}

impl<'a> Census<'a> {
    /// Builds a census over a fleet.
    pub fn new(fleet: &'a Fleet) -> Census<'a> {
        Census {
            fleet,
            window_end: fleet.window_end(),
        }
    }

    /// The underlying fleet.
    pub fn fleet(&self) -> &'a Fleet {
        self.fleet
    }

    /// Observation horizon.
    pub fn window_end(&self) -> Timestamp {
        self.window_end
    }

    /// The paper's population filter: singleton (non-pooled) databases
    /// of external (non-internal) subscriptions.
    pub fn in_study(&self, db: &DatabaseRecord) -> bool {
        db.elastic_pool.is_none() && !db.is_internal
    }

    /// Iterator over `(index, record)` pairs of the study population.
    pub fn study_population(&self) -> impl Iterator<Item = (usize, &'a DatabaseRecord)> + '_ {
        self.fleet
            .databases
            .iter()
            .enumerate()
            .filter(|(_, db)| self.in_study(db))
    }

    /// Number of databases in the study population (after filters).
    pub fn study_population_size(&self) -> usize {
        self.study_population().count()
    }

    /// The lifespan class of a record, when decidable inside the
    /// window:
    ///
    /// * dropped at `T` → its class;
    /// * alive with ≥ 30 observed days → `LongLived` (already outlived
    ///   the boundary);
    /// * alive with < 30 observed days → `None` (unknown).
    pub fn classify(&self, db: &DatabaseRecord) -> Option<LifespanClass> {
        self.classify_with_boundary(db, LONG_LIVED_MIN_DAYS)
    }

    /// [`Census::classify`] with a custom short/long boundary `y` (the
    /// paper's §4.1 `y`, which it also varied experimentally).
    ///
    /// # Panics
    ///
    /// Panics unless `boundary_days > EPHEMERAL_MAX_DAYS`.
    pub fn classify_with_boundary(
        &self,
        db: &DatabaseRecord,
        boundary_days: f64,
    ) -> Option<LifespanClass> {
        assert!(
            boundary_days > EPHEMERAL_MAX_DAYS,
            "boundary must exceed the ephemeral threshold"
        );
        let (duration, event) = db.observed_lifespan(self.window_end);
        let days = duration.as_days_f64();
        if event {
            Some(if days <= EPHEMERAL_MAX_DAYS {
                LifespanClass::Ephemeral
            } else if days <= boundary_days {
                LifespanClass::ShortLived
            } else {
                LifespanClass::LongLived
            })
        } else if days > boundary_days {
            Some(LifespanClass::LongLived)
        } else {
            None
        }
    }

    /// `(observed days, event)` pairs for all databases surviving at
    /// least `min_days` — the input to Kaplan–Meier fits. Figure 1 uses
    /// `min_days = 2` ("2 day survival minimum").
    pub fn survival_pairs(&self, min_days: f64) -> Vec<(f64, bool)> {
        self.survival_pairs_where(min_days, |_| true)
    }

    /// Like [`Census::survival_pairs`] but filtered by a predicate.
    pub fn survival_pairs_where(
        &self,
        min_days: f64,
        mut pred: impl FnMut(&DatabaseRecord) -> bool,
    ) -> Vec<(f64, bool)> {
        self.fleet
            .databases
            .iter()
            .filter_map(|db| {
                if !self.in_study(db) || !pred(db) {
                    return None;
                }
                let (duration, event) = db.observed_lifespan(self.window_end);
                let days = duration.as_days_f64();
                (days >= min_days).then_some((days, event))
            })
            .collect()
    }

    /// Indices of databases in the prediction population for observation
    /// prefix `x_days`: alive at `created + x_days` with the full prefix
    /// inside the window, and with a decidable class label.
    ///
    /// (The paper: "As we are making a prediction x days after database
    /// I is created, we assume that I lives longer than x days.")
    pub fn prediction_population(&self, x_days: f64) -> Vec<usize> {
        self.prediction_population_with_boundary(x_days, LONG_LIVED_MIN_DAYS)
    }

    /// [`Census::prediction_population`] with a custom class boundary
    /// `y` (decidability depends on `y`: alive databases need `y`
    /// observed days before their label is known).
    pub fn prediction_population_with_boundary(
        &self,
        x_days: f64,
        boundary_days: f64,
    ) -> Vec<usize> {
        let x = Duration::days_f64(x_days);
        self.fleet
            .databases
            .iter()
            .enumerate()
            .filter_map(|(i, db)| {
                if !self.in_study(db) {
                    return None;
                }
                let prediction_at = db.created_at + x;
                if prediction_at > self.window_end {
                    return None;
                }
                if !db.alive_at(prediction_at) {
                    return None;
                }
                self.classify_with_boundary(db, boundary_days).map(|_| i)
            })
            .collect()
    }

    /// Binary label for the prediction task: `true` = long-lived
    /// (positive class).
    ///
    /// # Panics
    ///
    /// Panics if the record's class is undecidable (callers must first
    /// filter with [`Census::prediction_population`]).
    pub fn is_long_lived(&self, db: &DatabaseRecord) -> bool {
        match self.classify(db) {
            Some(LifespanClass::LongLived) => true,
            Some(_) => false,
            None => panic!("undecidable class for database {}", db.id),
        }
    }

    /// Per-subscription class sets: for every subscription with at least
    /// one decidable database, which classes it produced.
    pub fn subscription_class_sets(&self) -> HashMap<SubscriptionId, Vec<LifespanClass>> {
        let mut map: HashMap<SubscriptionId, Vec<LifespanClass>> = HashMap::new();
        for (_, db) in self.study_population() {
            if let Some(class) = self.classify(db) {
                let classes = map.entry(db.subscription_id).or_default();
                if !classes.contains(&class) {
                    classes.push(class);
                }
            }
        }
        map
    }

    /// Observation 3.1 accounting: `(ephemeral-only subscription share,
    /// share of all databases owned by those subscriptions)`.
    pub fn ephemeral_only_stats(&self) -> (f64, f64) {
        let sets = self.subscription_class_sets();
        if sets.is_empty() {
            return (0.0, 0.0);
        }
        let ephemeral_only: std::collections::HashSet<SubscriptionId> = sets
            .iter()
            .filter(|(_, classes)| classes == &&vec![LifespanClass::Ephemeral])
            .map(|(&id, _)| id)
            .collect();
        let sub_share = ephemeral_only.len() as f64 / sets.len() as f64;
        let total_dbs = self.study_population_size();
        let owned = self
            .study_population()
            .filter(|(_, db)| ephemeral_only.contains(&db.subscription_id))
            .count();
        (sub_share, owned as f64 / total_dbs.max(1) as f64)
    }

    /// Fraction of databases (per creation edition) that changed edition
    /// during their observed life — Observation 3.3's quantity.
    pub fn edition_change_rate(&self, edition: Edition) -> f64 {
        let mut total = 0usize;
        let mut changed = 0usize;
        for (_, db) in self.study_population() {
            if db.creation_edition() == edition {
                total += 1;
                if db.changed_edition() {
                    changed += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            changed as f64 / total as f64
        }
    }

    /// Iterator over records with their indices, restricted to one
    /// creation edition.
    pub fn edition_records(
        &self,
        edition: Edition,
    ) -> impl Iterator<Item = (usize, &'a DatabaseRecord)> + '_ {
        self.study_population()
            .filter(move |(_, db)| db.creation_edition() == edition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;
    use crate::region::RegionConfig;

    fn fleet() -> Fleet {
        Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.05), 13))
    }

    #[test]
    fn classes_partition_decidable_records() {
        let f = fleet();
        let census = Census::new(&f);
        let mut unknown = 0;
        for db in &f.databases {
            match census.classify(db) {
                Some(_) => {}
                None => {
                    unknown += 1;
                    // Undecidable records must be censored with < 30
                    // observed days.
                    let (d, event) = db.observed_lifespan(census.window_end());
                    assert!(!event && d.as_days_f64() <= LONG_LIVED_MIN_DAYS);
                }
            }
        }
        // A 5-month window leaves only the last ~30 days undecidable.
        assert!(unknown < f.databases.len() / 2);
    }

    #[test]
    fn survival_pairs_respect_minimum() {
        let f = fleet();
        let census = Census::new(&f);
        let pairs = census.survival_pairs(2.0);
        assert!(!pairs.is_empty());
        assert!(pairs.iter().all(|(d, _)| *d >= 2.0));
        // The unfiltered population is strictly larger (cyclers exist).
        assert!(census.survival_pairs(0.0).len() > pairs.len());
    }

    #[test]
    fn prediction_population_is_alive_and_labeled() {
        let f = fleet();
        let census = Census::new(&f);
        let pop = census.prediction_population(2.0);
        assert!(!pop.is_empty());
        for &i in &pop {
            let db = &f.databases[i];
            let at = db.created_at + Duration::days(2);
            assert!(db.alive_at(at));
            // Label must not panic.
            let _ = census.is_long_lived(db);
        }
    }

    #[test]
    fn ephemeral_only_subscriptions_match_obs31() {
        let f = fleet();
        let census = Census::new(&f);
        let (sub_share, db_share) = census.ephemeral_only_stats();
        // "A low percentage of all subscriptions create only ephemeral
        // databases … these databases represent a significant percentage
        // of the total population."
        assert!(sub_share > 0.0 && sub_share < 0.25, "sub share {sub_share}");
        assert!(db_share > 0.10, "db share {db_share}");
        assert!(db_share > 2.0 * sub_share, "{db_share} vs {sub_share}");
    }

    #[test]
    fn premium_changes_edition_most() {
        let f = fleet();
        let census = Census::new(&f);
        let basic = census.edition_change_rate(Edition::Basic);
        let standard = census.edition_change_rate(Edition::Standard);
        let premium = census.edition_change_rate(Edition::Premium);
        assert!(
            premium > standard && premium > basic,
            "{basic} {standard} {premium}"
        );
    }

    #[test]
    fn edition_records_are_exclusive_and_exhaustive() {
        let f = fleet();
        let census = Census::new(&f);
        let total: usize = Edition::ALL
            .iter()
            .map(|&e| census.edition_records(e).count())
            .sum();
        assert_eq!(total, census.study_population_size());
        // The filters are real: some databases are pooled or internal.
        assert!(total < f.databases.len());
    }

    #[test]
    fn study_filters_exclude_pooled_and_internal() {
        let f = fleet();
        let census = Census::new(&f);
        let pooled = f
            .databases
            .iter()
            .filter(|d| d.elastic_pool.is_some())
            .count();
        let internal = f.databases.iter().filter(|d| d.is_internal).count();
        assert!(pooled > 0, "generator produced no pooled databases");
        assert!(internal > 0, "generator produced no internal databases");
        for (_, db) in census.study_population() {
            assert!(db.elastic_pool.is_none() && !db.is_internal);
        }
        // Prediction population respects the filter too.
        for idx in census.prediction_population(2.0) {
            assert!(census.in_study(&f.databases[idx]));
        }
    }
}
