//! Per-database records: the unit of study.

use crate::catalog::{Edition, SloCatalog, SLOS};
use crate::region::RegionId;
use crate::sizetrace::SizeTrace;
use crate::subscription::{SubscriptionId, SubscriptionType};
use crate::utilization::UtilizationTrace;
use simtime::{Duration, Timestamp};

/// One service-level-objective assignment in a database's history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloChange {
    /// When the SLO took effect (the first entry is the creation).
    pub at: Timestamp,
    /// Index into [`SLOS`].
    pub slo_index: usize,
}

impl SloChange {
    /// The edition of this SLO.
    pub fn edition(&self) -> Edition {
        SLOS[self.slo_index].edition
    }

    /// The DTU rating of this SLO.
    pub fn dtus(&self) -> u32 {
        SLOS[self.slo_index].dtus
    }
}

/// The full telemetry-derived record of one singleton database.
#[derive(Debug, Clone, PartialEq)]
pub struct DatabaseRecord {
    /// Unique id within the fleet.
    pub id: u64,
    /// Hosting region.
    pub region: RegionId,
    /// Logical server name (user-chosen).
    pub server_name: String,
    /// Database name (user-chosen).
    pub database_name: String,
    /// Owning subscription.
    pub subscription_id: SubscriptionId,
    /// Offer type of the owning subscription at creation.
    pub subscription_type: SubscriptionType,
    /// Creation instant (region-local).
    pub created_at: Timestamp,
    /// Drop instant, or `None` if still alive at the window end
    /// (right-censored).
    pub dropped_at: Option<Timestamp>,
    /// SLO history; the first entry is at `created_at`. Sorted by time.
    pub slo_history: Vec<SloChange>,
    /// Size telemetry.
    pub size_trace: SizeTrace,
    /// DTU-utilization telemetry.
    pub utilization_trace: UtilizationTrace,
    /// Elastic-pool membership: `Some(pool ordinal within the
    /// subscription)` for pooled databases, `None` for singletons. The
    /// paper studies singletons only.
    pub elastic_pool: Option<u32>,
    /// True when the owning subscription is Microsoft-internal.
    pub is_internal: bool,
}

impl DatabaseRecord {
    /// The edition the database was created under (the paper groups
    /// sub-experiments by creation edition, keeping subgroups mutually
    /// exclusive even when editions change later).
    pub fn creation_edition(&self) -> Edition {
        self.slo_history[0].edition()
    }

    /// The SLO index in effect at `at` (clamped to the creation SLO for
    /// earlier instants).
    pub fn slo_at(&self, at: Timestamp) -> usize {
        let mut current = self.slo_history[0].slo_index;
        for change in &self.slo_history {
            if change.at <= at {
                current = change.slo_index;
            } else {
                break;
            }
        }
        current
    }

    /// The edition in effect at `at`.
    pub fn edition_at(&self, at: Timestamp) -> Edition {
        SLOS[self.slo_at(at)].edition
    }

    /// True if the database ever changed edition during its observed
    /// life (the paper's "changed" vs "always" sub-categorization).
    pub fn changed_edition(&self) -> bool {
        let first = self.creation_edition();
        self.slo_history.iter().any(|c| c.edition() != first)
    }

    /// Number of SLO assignments after creation (i.e. changes).
    pub fn slo_change_count(&self) -> usize {
        self.slo_history.len() - 1
    }

    /// Observed duration and event flag relative to the observation
    /// window end: `(duration, true)` when dropped inside the window,
    /// `(window_end − created_at, false)` when right-censored.
    pub fn observed_lifespan(&self, window_end: Timestamp) -> (Duration, bool) {
        match self.dropped_at {
            Some(dropped) if dropped <= window_end => (dropped - self.created_at, true),
            _ => (window_end - self.created_at, false),
        }
    }

    /// True lifespan in days when the drop was observed.
    pub fn lifespan_days(&self, window_end: Timestamp) -> Option<f64> {
        let (d, event) = self.observed_lifespan(window_end);
        event.then(|| d.as_days_f64())
    }

    /// Whether the database was still alive at `at` (clamped into the
    /// window; creation counts as alive).
    pub fn alive_at(&self, at: Timestamp) -> bool {
        at >= self.created_at && self.dropped_at.is_none_or(|d| d > at)
    }

    /// Minimum/maximum DTUs ever assigned.
    pub fn dtu_range(&self) -> (u32, u32) {
        let mut lo = u32::MAX;
        let mut hi = 0;
        for c in &self.slo_history {
            lo = lo.min(c.dtus());
            hi = hi.max(c.dtus());
        }
        (lo, hi)
    }

    /// Convenience: creation SLO object.
    pub fn creation_slo(&self) -> &'static crate::catalog::ServiceLevelObjective {
        SloCatalog::get(self.slo_history[0].slo_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(dropped: Option<i64>) -> DatabaseRecord {
        let created = Timestamp::from_ymd_hms(2017, 6, 1, 10, 0, 0);
        DatabaseRecord {
            id: 1,
            region: RegionId::Region1,
            server_name: "srv".into(),
            database_name: "db".into(),
            subscription_id: SubscriptionId(7),
            subscription_type: SubscriptionType::PayAsYouGo,
            created_at: created,
            dropped_at: dropped.map(|days| created + Duration::days(days)),
            slo_history: vec![
                SloChange {
                    at: created,
                    slo_index: SloCatalog::index_of("S1").unwrap(),
                },
                SloChange {
                    at: created + Duration::days(10),
                    slo_index: SloCatalog::index_of("S0").unwrap(),
                },
                SloChange {
                    at: created + Duration::days(20),
                    slo_index: SloCatalog::index_of("P1").unwrap(),
                },
            ],
            size_trace: SizeTrace::new(vec![(Duration::seconds(0), 100.0)]),
            utilization_trace: UtilizationTrace::new(vec![(Duration::seconds(0), 50.0)]),
            elastic_pool: None,
            is_internal: false,
        }
    }

    #[test]
    fn creation_edition_and_changes() {
        let r = record(Some(40));
        assert_eq!(r.creation_edition(), Edition::Standard);
        assert!(r.changed_edition());
        assert_eq!(r.slo_change_count(), 2);
        let (lo, hi) = r.dtu_range();
        assert_eq!((lo, hi), (10, 125));
    }

    #[test]
    fn slo_lookup_over_time() {
        let r = record(Some(40));
        let t0 = r.created_at;
        assert_eq!(SLOS[r.slo_at(t0)].name, "S1");
        assert_eq!(SLOS[r.slo_at(t0 + Duration::days(10))].name, "S0");
        assert_eq!(SLOS[r.slo_at(t0 + Duration::days(15))].name, "S0");
        assert_eq!(r.edition_at(t0 + Duration::days(25)), Edition::Premium);
        // Before creation clamps to creation SLO.
        assert_eq!(SLOS[r.slo_at(t0 - Duration::days(1))].name, "S1");
    }

    #[test]
    fn observed_lifespan_event() {
        let r = record(Some(40));
        let window_end = r.created_at + Duration::days(100);
        let (d, event) = r.observed_lifespan(window_end);
        assert!(event);
        assert_eq!(d.whole_days(), 40);
        assert_eq!(r.lifespan_days(window_end), Some(40.0));
    }

    #[test]
    fn observed_lifespan_censored() {
        let r = record(None);
        let window_end = r.created_at + Duration::days(100);
        let (d, event) = r.observed_lifespan(window_end);
        assert!(!event);
        assert_eq!(d.whole_days(), 100);
        assert_eq!(r.lifespan_days(window_end), None);

        // Dropped after the window end also counts as censored.
        let r2 = record(Some(150));
        let (d2, event2) = r2.observed_lifespan(window_end);
        assert!(!event2);
        assert_eq!(d2.whole_days(), 100);
    }

    #[test]
    fn aliveness() {
        let r = record(Some(40));
        assert!(r.alive_at(r.created_at));
        assert!(r.alive_at(r.created_at + Duration::days(39)));
        assert!(!r.alive_at(r.created_at + Duration::days(40)));
        assert!(!r.alive_at(r.created_at - Duration::seconds(1)));
    }
}
