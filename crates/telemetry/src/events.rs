//! Telemetry event streams.
//!
//! The paper's raw input is "telemetry that is emitted from each unique
//! database from its creation through to when it is dropped" (§2). This
//! module flattens a fleet into that stream shape: a time-ordered
//! sequence of create / size / SLO-change / edition-change / drop
//! events. The feature pipeline works from [`DatabaseRecord`]s directly,
//! but the stream is the realistic ingestion surface — the quickstart
//! example consumes it, and tests check it round-trips with the records.

use crate::catalog::Edition;
use crate::database::DatabaseRecord;
use crate::fleet::Fleet;
use crate::subscription::SubscriptionId;
use simtime::Timestamp;

/// One telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryEvent {
    /// A database was created. Carries the creation metadata a real
    /// control-plane event would: identity, placement, offer, names,
    /// and the initial SLO.
    Created {
        /// Database id.
        db_id: u64,
        /// Owning subscription.
        subscription: SubscriptionId,
        /// Offer type of the owning subscription.
        subscription_type: crate::subscription::SubscriptionType,
        /// Hosting region.
        region: crate::region::RegionId,
        /// Logical server name.
        server_name: String,
        /// Database name.
        database_name: String,
        /// Creation edition.
        edition: Edition,
        /// Initial SLO name.
        slo: &'static str,
        /// Elastic-pool membership at creation.
        elastic_pool: Option<u32>,
        /// True for Microsoft-internal subscriptions.
        is_internal: bool,
    },
    /// A periodic size report.
    SizeSample {
        /// Database id.
        db_id: u64,
        /// Reported size in MB.
        size_mb: f64,
    },
    /// A periodic DTU-utilization report.
    UtilizationSample {
        /// Database id.
        db_id: u64,
        /// DTU percentage in [0, 100].
        dtu_percent: f64,
    },
    /// The database moved to a different SLO (same or new edition).
    SloChanged {
        /// Database id.
        db_id: u64,
        /// New SLO name.
        slo: &'static str,
        /// True when the move crossed editions.
        edition_changed: bool,
    },
    /// The database was dropped.
    Dropped {
        /// Database id.
        db_id: u64,
    },
}

impl TelemetryEvent {
    /// The database this event belongs to.
    pub fn db_id(&self) -> u64 {
        match self {
            TelemetryEvent::Created { db_id, .. }
            | TelemetryEvent::SizeSample { db_id, .. }
            | TelemetryEvent::UtilizationSample { db_id, .. }
            | TelemetryEvent::SloChanged { db_id, .. }
            | TelemetryEvent::Dropped { db_id } => *db_id,
        }
    }

    /// The SLO label the event carries, if any.
    pub fn slo_name(&self) -> Option<&'static str> {
        match self {
            TelemetryEvent::Created { slo, .. } | TelemetryEvent::SloChanged { slo, .. } => {
                Some(slo)
            }
            _ => None,
        }
    }

    /// Replaces the SLO label on label-carrying events; a no-op on the
    /// rest. Used by fault injection to corrupt labels.
    pub fn set_slo_name(&mut self, name: &'static str) {
        match self {
            TelemetryEvent::Created { slo, .. } | TelemetryEvent::SloChanged { slo, .. } => {
                *slo = name;
            }
            _ => {}
        }
    }
}

/// Ordering rank for events sharing a timestamp: creations first,
/// drops last.
pub(crate) fn event_rank(e: &TelemetryEvent) -> u8 {
    match e {
        TelemetryEvent::Created { .. } => 0,
        TelemetryEvent::SloChanged { .. } => 1,
        TelemetryEvent::SizeSample { .. } => 2,
        TelemetryEvent::UtilizationSample { .. } => 3,
        TelemetryEvent::Dropped { .. } => 4,
    }
}

/// A time-ordered telemetry stream.
#[derive(Debug, Clone, PartialEq)]
pub struct EventStream {
    events: Vec<(Timestamp, TelemetryEvent)>,
}

impl EventStream {
    /// Builds the stream for one database.
    pub fn of_database(db: &DatabaseRecord) -> EventStream {
        let mut events: Vec<(Timestamp, TelemetryEvent)> = Vec::new();
        events.push((
            db.created_at,
            TelemetryEvent::Created {
                db_id: db.id,
                subscription: db.subscription_id,
                subscription_type: db.subscription_type,
                region: db.region,
                server_name: db.server_name.clone(),
                database_name: db.database_name.clone(),
                edition: db.creation_edition(),
                slo: db.creation_slo().name,
                elastic_pool: db.elastic_pool,
                is_internal: db.is_internal,
            },
        ));
        let mut prev_edition = db.creation_edition();
        for change in &db.slo_history[1..] {
            let edition = change.edition();
            events.push((
                change.at,
                TelemetryEvent::SloChanged {
                    db_id: db.id,
                    slo: crate::catalog::SloCatalog::get(change.slo_index).name,
                    edition_changed: edition != prev_edition,
                },
            ));
            prev_edition = edition;
        }
        // Every trace sample is emitted (including the offset-0 report)
        // so the stream fully determines the record — the ingestion
        // module reconstructs records from streams and round-trips.
        for &(offset, size_mb) in db.size_trace.samples() {
            events.push((
                db.created_at + offset,
                TelemetryEvent::SizeSample {
                    db_id: db.id,
                    size_mb,
                },
            ));
        }
        for &(offset, dtu_percent) in db.utilization_trace.samples() {
            events.push((
                db.created_at + offset,
                TelemetryEvent::UtilizationSample {
                    db_id: db.id,
                    dtu_percent,
                },
            ));
        }
        if let Some(at) = db.dropped_at {
            events.push((at, TelemetryEvent::Dropped { db_id: db.id }));
        }
        events.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| event_rank(&a.1).cmp(&event_rank(&b.1)))
        });
        EventStream { events }
    }

    /// Builds the merged stream of a set of databases, time-ordered
    /// (stable over the per-database streams). This is the
    /// per-subscription unit of the streaming pipeline: both the
    /// streamed and the materialized paths build subscription streams
    /// with it, so fault injection sees identical input either way.
    pub fn of_databases(databases: &[DatabaseRecord]) -> EventStream {
        let mut events: Vec<(Timestamp, TelemetryEvent)> = Vec::new();
        for db in databases {
            events.extend(EventStream::of_database(db).events);
        }
        events.sort_by_key(|(t, _)| *t);
        EventStream { events }
    }

    /// Builds the merged stream of a whole fleet, time-ordered.
    pub fn of_fleet(fleet: &Fleet) -> EventStream {
        EventStream::of_databases(&fleet.databases)
    }

    /// Builds a stream from pre-collected events, re-sorting into
    /// canonical order (used by ingestion tests and external loaders).
    pub fn from_events(mut events: Vec<(Timestamp, TelemetryEvent)>) -> EventStream {
        events.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| event_rank(&a.1).cmp(&event_rank(&b.1)))
        });
        EventStream { events }
    }

    /// Builds a stream that preserves the given *arrival* order
    /// verbatim — no sorting. Fault injection uses this so reordering
    /// perturbations survive into ingestion instead of being silently
    /// repaired by the constructor.
    pub fn from_events_unsorted(events: Vec<(Timestamp, TelemetryEvent)>) -> EventStream {
        EventStream { events }
    }

    /// The events.
    pub fn events(&self) -> &[(Timestamp, TelemetryEvent)] {
        &self.events
    }

    /// Consumes the stream, yielding its events in arrival order —
    /// used by the chunked pipeline to concatenate subscription
    /// streams without copying.
    pub fn into_events(self) -> Vec<(Timestamp, TelemetryEvent)> {
        self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if there are no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Counts events matching a predicate.
    pub fn count_where(&self, mut pred: impl FnMut(&TelemetryEvent) -> bool) -> usize {
        self.events.iter().filter(|(_, e)| pred(e)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetConfig;
    use crate::region::RegionConfig;

    fn fleet() -> Fleet {
        Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.02), 11))
    }

    #[test]
    fn stream_is_time_ordered() {
        let f = fleet();
        let s = EventStream::of_fleet(&f);
        for w in s.events().windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn creates_match_databases_and_drops_match_observed() {
        let f = fleet();
        let s = EventStream::of_fleet(&f);
        let creates = s.count_where(|e| matches!(e, TelemetryEvent::Created { .. }));
        let drops = s.count_where(|e| matches!(e, TelemetryEvent::Dropped { .. }));
        assert_eq!(creates, f.databases.len());
        let observed_drops = f
            .databases
            .iter()
            .filter(|d| d.dropped_at.is_some())
            .count();
        assert_eq!(drops, observed_drops);
    }

    #[test]
    fn per_database_stream_brackets_lifetime() {
        let f = fleet();
        let db = f
            .databases
            .iter()
            .find(|d| d.dropped_at.is_some())
            .expect("some database drops");
        let s = EventStream::of_database(db);
        let events = s.events();
        assert!(matches!(events[0].1, TelemetryEvent::Created { .. }));
        assert_eq!(events[0].0, db.created_at);
        assert!(matches!(
            events.last().unwrap().1,
            TelemetryEvent::Dropped { .. }
        ));
        assert_eq!(events.last().unwrap().0, db.dropped_at.unwrap());
    }

    #[test]
    fn edition_change_flags_are_consistent() {
        let f = fleet();
        let s = EventStream::of_fleet(&f);
        let edition_changes = s.count_where(|e| {
            matches!(
                e,
                TelemetryEvent::SloChanged {
                    edition_changed: true,
                    ..
                }
            )
        });
        let changed_dbs = f.databases.iter().filter(|d| d.changed_edition()).count();
        // Every edition-changing database contributes at least one
        // edition-change event (it may change back, adding another).
        assert!(edition_changes >= changed_dbs);
        if changed_dbs == 0 {
            assert_eq!(edition_changes, 0);
        }
    }
}
