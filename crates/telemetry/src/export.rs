//! Dataset export / import.
//!
//! A real release of this study ships its (synthetic) dataset so that
//! downstream users can analyze it with their own tooling. This module
//! serializes database records as JSON Lines (one record per line) and
//! as a flat CSV summary, and reads the JSONL form back.
//!
//! Deserialized records are re-validated: JSONL input is data, not a
//! trusted in-process invariant carrier.

use crate::catalog::SLOS;
use crate::database::DatabaseRecord;
use std::io::{BufRead, Write};

/// Errors from reading an exported dataset.
#[derive(Debug)]
pub enum ImportError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line failed to parse as a record.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// A parsed record violated an invariant.
    Invalid {
        /// 1-based line number.
        line: usize,
        /// What was violated.
        message: String,
    },
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Io(e) => write!(f, "i/o error: {e}"),
            ImportError::Parse { line, message } => {
                write!(f, "line {line}: parse error: {message}")
            }
            ImportError::Invalid { line, message } => {
                write!(f, "line {line}: invalid record: {message}")
            }
        }
    }
}

impl std::error::Error for ImportError {}

impl From<std::io::Error> for ImportError {
    fn from(e: std::io::Error) -> Self {
        ImportError::Io(e)
    }
}

/// Writes records as JSON Lines.
pub fn write_records_jsonl<W: Write>(
    records: &[DatabaseRecord],
    mut out: W,
) -> std::io::Result<()> {
    for record in records {
        let line = serde_json::to_string(record).expect("records are serializable");
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// Reads records from JSON Lines, validating invariants the rest of the
/// workspace assumes (non-empty ordered SLO history starting at
/// creation, valid SLO indices, drop after creation).
pub fn read_records_jsonl<R: BufRead>(input: R) -> Result<Vec<DatabaseRecord>, ImportError> {
    let mut out = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let record: DatabaseRecord =
            serde_json::from_str(&line).map_err(|e| ImportError::Parse {
                line: line_no,
                message: e.to_string(),
            })?;
        validate(&record).map_err(|message| ImportError::Invalid {
            line: line_no,
            message,
        })?;
        out.push(record);
    }
    Ok(out)
}

fn validate(record: &DatabaseRecord) -> Result<(), String> {
    if record.slo_history.is_empty() {
        return Err("empty SLO history".into());
    }
    if record.slo_history[0].at != record.created_at {
        return Err("first SLO entry is not at creation".into());
    }
    for w in record.slo_history.windows(2) {
        if w[1].at <= w[0].at {
            return Err("SLO history not strictly ordered".into());
        }
    }
    for change in &record.slo_history {
        if change.slo_index >= SLOS.len() {
            return Err(format!("SLO index {} out of range", change.slo_index));
        }
    }
    if let Some(dropped) = record.dropped_at {
        if dropped <= record.created_at {
            return Err("drop at or before creation".into());
        }
    }
    if record.size_trace.samples().is_empty() {
        return Err("empty size trace".into());
    }
    if record.utilization_trace.samples().is_empty() {
        return Err("empty utilization trace".into());
    }
    Ok(())
}

/// Writes a flat CSV summary (one row per database) for spreadsheet and
/// dataframe consumption: identity, creation metadata, lifespan, and
/// aggregate telemetry. Names are quoted; quotes inside names doubled.
pub fn write_summary_csv<W: Write>(
    records: &[DatabaseRecord],
    window_end: simtime::Timestamp,
    mut out: W,
) -> std::io::Result<()> {
    writeln!(
        out,
        "id,region,subscription_id,subscription_type,server_name,database_name,\
         created_at,creation_edition,creation_slo,observed_days,dropped,\
         changed_edition,slo_changes,initial_size_mb"
    )?;
    for record in records {
        let (duration, event) = record.observed_lifespan(window_end);
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{:.4},{},{},{},{:.1}",
            record.id,
            record.region,
            record.subscription_id.0,
            record.subscription_type,
            csv_quote(&record.server_name),
            csv_quote(&record.database_name),
            record.created_at.epoch_seconds(),
            record.creation_edition(),
            record.creation_slo().name,
            duration.as_days_f64(),
            event,
            record.changed_edition(),
            record.slo_change_count(),
            record.size_trace.initial_size_mb(),
        )?;
    }
    Ok(())
}

fn csv_quote(s: &str) -> String {
    format!("\"{}\"", s.replace('"', "\"\""))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{Fleet, FleetConfig};
    use crate::region::RegionConfig;

    fn fleet() -> Fleet {
        Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.02), 99))
    }

    #[test]
    fn jsonl_roundtrip_is_lossless() {
        let f = fleet();
        let mut buffer = Vec::new();
        write_records_jsonl(&f.databases, &mut buffer).unwrap();
        let back = read_records_jsonl(buffer.as_slice()).unwrap();
        assert_eq!(back, f.databases);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let f = fleet();
        let mut buffer = Vec::new();
        write_records_jsonl(&f.databases[..3], &mut buffer).unwrap();
        buffer.extend_from_slice(b"\n\n");
        let back = read_records_jsonl(buffer.as_slice()).unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn garbage_line_reports_position() {
        let f = fleet();
        let mut buffer = Vec::new();
        write_records_jsonl(&f.databases[..2], &mut buffer).unwrap();
        buffer.extend_from_slice(b"not json\n");
        let err = read_records_jsonl(buffer.as_slice()).unwrap_err();
        match err {
            ImportError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn invalid_records_are_rejected() {
        let f = fleet();
        let mut record = f.databases[0].clone();
        record.slo_history[0].slo_index = 9999;
        let mut buffer = Vec::new();
        write_records_jsonl(&[record], &mut buffer).unwrap();
        let err = read_records_jsonl(buffer.as_slice()).unwrap_err();
        assert!(matches!(err, ImportError::Invalid { line: 1, .. }), "{err}");
    }

    #[test]
    fn drop_before_creation_rejected() {
        let f = fleet();
        let mut record = f
            .databases
            .iter()
            .find(|d| d.dropped_at.is_some())
            .unwrap()
            .clone();
        record.dropped_at = Some(record.created_at - simtime::Duration::days(1));
        let mut buffer = Vec::new();
        write_records_jsonl(&[record], &mut buffer).unwrap();
        assert!(read_records_jsonl(buffer.as_slice()).is_err());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let f = fleet();
        let mut buffer = Vec::new();
        write_summary_csv(&f.databases[..5], f.window_end(), &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].starts_with("id,region,"));
        // Every data row has the full column count.
        let cols = lines[0].split(',').count();
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), cols, "{row}");
        }
    }

    #[test]
    fn csv_quotes_names() {
        assert_eq!(csv_quote("plain"), "\"plain\"");
        assert_eq!(csv_quote("we\"ird"), "\"we\"\"ird\"");
    }
}
