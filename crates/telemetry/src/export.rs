//! Dataset export / import.
//!
//! A real release of this study ships its (synthetic) dataset so that
//! downstream users can analyze it with their own tooling. This module
//! serializes database records as JSON Lines (one record per line,
//! rendered through the workspace's deterministic JSON tree) and as a
//! flat CSV summary, and reads the JSONL form back.
//!
//! Deserialized records are re-validated: JSONL input is data, not a
//! trusted in-process invariant carrier. Trace samples are checked
//! *before* the trace constructors run, so malformed input surfaces as
//! an [`ImportError`] rather than a panic.

use crate::catalog::SLOS;
use crate::database::{DatabaseRecord, SloChange};
use crate::region::RegionId;
use crate::sizetrace::SizeTrace;
use crate::subscription::{SubscriptionId, SubscriptionType};
use crate::utilization::UtilizationTrace;
use obs::jsonv::{parse as parse_json, JsonV};
use simtime::{Duration, Timestamp};
use std::io::{BufRead, Write};

/// Errors from reading an exported dataset.
#[derive(Debug)]
pub enum ImportError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line failed to parse as a record.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// A parsed record violated an invariant.
    Invalid {
        /// 1-based line number.
        line: usize,
        /// What was violated.
        message: String,
    },
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Io(e) => write!(f, "i/o error: {e}"),
            ImportError::Parse { line, message } => {
                write!(f, "line {line}: parse error: {message}")
            }
            ImportError::Invalid { line, message } => {
                write!(f, "line {line}: invalid record: {message}")
            }
        }
    }
}

impl std::error::Error for ImportError {}

impl From<std::io::Error> for ImportError {
    fn from(e: std::io::Error) -> Self {
        ImportError::Io(e)
    }
}

/// Writes records as JSON Lines.
pub fn write_records_jsonl<W: Write>(
    records: &[DatabaseRecord],
    mut out: W,
) -> std::io::Result<()> {
    for record in records {
        out.write_all(record_to_json(record).render_compact().as_bytes())?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// Reads records from JSON Lines, validating invariants the rest of the
/// workspace assumes (non-empty ordered SLO history starting at
/// creation, valid SLO indices, drop after creation).
pub fn read_records_jsonl<R: BufRead>(input: R) -> Result<Vec<DatabaseRecord>, ImportError> {
    let mut out = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let tree = parse_json(&line).map_err(|message| ImportError::Parse {
            line: line_no,
            message,
        })?;
        let record = record_from_json(&tree).map_err(|message| ImportError::Parse {
            line: line_no,
            message,
        })?;
        validate(&record).map_err(|message| ImportError::Invalid {
            line: line_no,
            message,
        })?;
        out.push(record);
    }
    Ok(out)
}

/// Renders one record as a JSON tree. Timestamps are epoch seconds,
/// trace samples `[offset_seconds, value]` pairs, and enum-like fields
/// their `Display` names.
fn record_to_json(record: &DatabaseRecord) -> JsonV {
    JsonV::obj(vec![
        ("id", JsonV::UInt(record.id)),
        ("region", JsonV::Str(record.region.to_string())),
        ("server_name", JsonV::Str(record.server_name.clone())),
        ("database_name", JsonV::Str(record.database_name.clone())),
        ("subscription_id", JsonV::UInt(record.subscription_id.0)),
        (
            "subscription_type",
            JsonV::Str(record.subscription_type.to_string()),
        ),
        (
            "created_at",
            seconds_json(record.created_at.epoch_seconds()),
        ),
        (
            "dropped_at",
            match record.dropped_at {
                Some(t) => seconds_json(t.epoch_seconds()),
                None => JsonV::Null,
            },
        ),
        (
            "slo_history",
            JsonV::Arr(
                record
                    .slo_history
                    .iter()
                    .map(|change| {
                        JsonV::obj(vec![
                            ("at", seconds_json(change.at.epoch_seconds())),
                            ("slo_index", JsonV::UInt(change.slo_index as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("size_trace", samples_json(record.size_trace.samples())),
        (
            "utilization_trace",
            samples_json(record.utilization_trace.samples()),
        ),
        (
            "elastic_pool",
            match record.elastic_pool {
                Some(pool) => JsonV::UInt(pool as u64),
                None => JsonV::Null,
            },
        ),
        ("is_internal", JsonV::Bool(record.is_internal)),
    ])
}

/// Rebuilds a record from its JSON tree, reporting the first malformed
/// field. Trace invariants (ordering, ranges) are checked here so the
/// panicking trace constructors only ever see valid data.
fn record_from_json(v: &JsonV) -> Result<DatabaseRecord, String> {
    let size_samples = read_samples(field(v, "size_trace")?, "size_trace")?;
    for (_, size) in &size_samples {
        if !size.is_finite() || *size < 0.0 {
            return Err(format!("size_trace: invalid size {size}"));
        }
    }
    let util_samples = read_samples(field(v, "utilization_trace")?, "utilization_trace")?;
    for (_, value) in &util_samples {
        if !value.is_finite() || !(0.0..=100.0).contains(value) {
            return Err(format!("utilization_trace: value {value} out of range"));
        }
    }
    if size_samples.is_empty() || util_samples.is_empty() {
        return Err("empty telemetry trace".into());
    }

    let slo_history = match field(v, "slo_history")? {
        JsonV::Arr(items) => items
            .iter()
            .map(|item| {
                Ok(SloChange {
                    at: Timestamp::from_epoch_seconds(read_i64(field(item, "at")?, "at")?),
                    slo_index: read_u64(field(item, "slo_index")?, "slo_index")? as usize,
                })
            })
            .collect::<Result<Vec<SloChange>, String>>()?,
        _ => return Err("slo_history: expected array".into()),
    };

    Ok(DatabaseRecord {
        id: read_u64(field(v, "id")?, "id")?,
        region: read_region(field(v, "region")?)?,
        server_name: read_str(field(v, "server_name")?, "server_name")?,
        database_name: read_str(field(v, "database_name")?, "database_name")?,
        subscription_id: SubscriptionId(read_u64(field(v, "subscription_id")?, "subscription_id")?),
        subscription_type: read_subscription_type(field(v, "subscription_type")?)?,
        created_at: Timestamp::from_epoch_seconds(read_i64(field(v, "created_at")?, "created_at")?),
        dropped_at: match field(v, "dropped_at")? {
            JsonV::Null => None,
            other => Some(Timestamp::from_epoch_seconds(read_i64(
                other,
                "dropped_at",
            )?)),
        },
        slo_history,
        size_trace: SizeTrace::new(size_samples),
        utilization_trace: UtilizationTrace::new(util_samples),
        elastic_pool: match field(v, "elastic_pool")? {
            JsonV::Null => None,
            other => {
                let pool = read_u64(other, "elastic_pool")?;
                Some(u32::try_from(pool).map_err(|_| "elastic_pool: out of range".to_string())?)
            }
        },
        is_internal: match field(v, "is_internal")? {
            JsonV::Bool(b) => *b,
            _ => return Err("is_internal: expected bool".into()),
        },
    })
}

fn seconds_json(seconds: i64) -> JsonV {
    if seconds >= 0 {
        JsonV::UInt(seconds as u64)
    } else {
        // Negative instants precede the epoch; none occur in generated
        // fleets, but the codec stays total. f64 is exact to ±2^53.
        JsonV::Float(seconds as f64)
    }
}

fn samples_json(samples: &[(Duration, f64)]) -> JsonV {
    JsonV::Arr(
        samples
            .iter()
            .map(|(offset, value)| {
                JsonV::Arr(vec![
                    seconds_json(offset.as_seconds()),
                    JsonV::Float(*value),
                ])
            })
            .collect(),
    )
}

fn field<'a>(v: &'a JsonV, key: &str) -> Result<&'a JsonV, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn read_u64(v: &JsonV, what: &str) -> Result<u64, String> {
    match v {
        JsonV::UInt(u) => Ok(*u),
        _ => Err(format!("{what}: expected unsigned integer")),
    }
}

fn read_i64(v: &JsonV, what: &str) -> Result<i64, String> {
    match v {
        JsonV::UInt(u) => i64::try_from(*u).map_err(|_| format!("{what}: out of range")),
        JsonV::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e15 => Ok(*f as i64),
        _ => Err(format!("{what}: expected integer seconds")),
    }
}

fn read_str(v: &JsonV, what: &str) -> Result<String, String> {
    match v {
        JsonV::Str(s) => Ok(s.clone()),
        _ => Err(format!("{what}: expected string")),
    }
}

fn read_region(v: &JsonV) -> Result<RegionId, String> {
    let name = read_str(v, "region")?;
    RegionId::ALL
        .into_iter()
        .find(|r| r.to_string() == name)
        .ok_or_else(|| format!("region: unknown {name:?}"))
}

fn read_subscription_type(v: &JsonV) -> Result<SubscriptionType, String> {
    let name = read_str(v, "subscription_type")?;
    SubscriptionType::ALL
        .into_iter()
        .find(|t| t.to_string() == name)
        .ok_or_else(|| format!("subscription_type: unknown {name:?}"))
}

fn read_samples(v: &JsonV, what: &str) -> Result<Vec<(Duration, f64)>, String> {
    let items = match v {
        JsonV::Arr(items) => items,
        _ => return Err(format!("{what}: expected array")),
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let pair = match item {
            JsonV::Arr(pair) if pair.len() == 2 => pair,
            _ => return Err(format!("{what}: expected [offset, value] pairs")),
        };
        let offset = Duration::seconds(read_i64(&pair[0], what)?);
        let value = match &pair[1] {
            JsonV::Float(f) => *f,
            JsonV::UInt(u) => *u as f64,
            _ => return Err(format!("{what}: expected numeric sample value")),
        };
        if let Some((last, _)) = out.last() {
            if offset <= *last {
                return Err(format!("{what}: offsets must be strictly increasing"));
            }
        }
        out.push((offset, value));
    }
    Ok(out)
}

fn validate(record: &DatabaseRecord) -> Result<(), String> {
    if record.slo_history.is_empty() {
        return Err("empty SLO history".into());
    }
    if record.slo_history[0].at != record.created_at {
        return Err("first SLO entry is not at creation".into());
    }
    for w in record.slo_history.windows(2) {
        if w[1].at <= w[0].at {
            return Err("SLO history not strictly ordered".into());
        }
    }
    for change in &record.slo_history {
        if change.slo_index >= SLOS.len() {
            return Err(format!("SLO index {} out of range", change.slo_index));
        }
    }
    if let Some(dropped) = record.dropped_at {
        if dropped <= record.created_at {
            return Err("drop at or before creation".into());
        }
    }
    if record.size_trace.samples().is_empty() {
        return Err("empty size trace".into());
    }
    if record.utilization_trace.samples().is_empty() {
        return Err("empty utilization trace".into());
    }
    Ok(())
}

/// Writes a flat CSV summary (one row per database) for spreadsheet and
/// dataframe consumption: identity, creation metadata, lifespan, and
/// aggregate telemetry. Names are quoted; quotes inside names doubled.
pub fn write_summary_csv<W: Write>(
    records: &[DatabaseRecord],
    window_end: simtime::Timestamp,
    mut out: W,
) -> std::io::Result<()> {
    write_summary_csv_header(&mut out)?;
    write_summary_csv_rows(records, window_end, &mut out)
}

/// Writes only the CSV header line. Streaming exporters call this once,
/// then [`write_summary_csv_rows`] per shard.
pub fn write_summary_csv_header<W: Write>(mut out: W) -> std::io::Result<()> {
    writeln!(
        out,
        "id,region,subscription_id,subscription_type,server_name,database_name,\
         created_at,creation_edition,creation_slo,observed_days,dropped,\
         changed_edition,slo_changes,initial_size_mb"
    )
}

/// Writes CSV rows without a header — the per-shard half of a streaming
/// export. `write_summary_csv` = header + one call of this.
pub fn write_summary_csv_rows<W: Write>(
    records: &[DatabaseRecord],
    window_end: simtime::Timestamp,
    mut out: W,
) -> std::io::Result<()> {
    for record in records {
        let (duration, event) = record.observed_lifespan(window_end);
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{:.4},{},{},{},{:.1}",
            record.id,
            record.region,
            record.subscription_id.0,
            record.subscription_type,
            csv_quote(&record.server_name),
            csv_quote(&record.database_name),
            record.created_at.epoch_seconds(),
            record.creation_edition(),
            record.creation_slo().name,
            duration.as_days_f64(),
            event,
            record.changed_edition(),
            record.slo_change_count(),
            record.size_trace.initial_size_mb(),
        )?;
    }
    Ok(())
}

fn csv_quote(s: &str) -> String {
    format!("\"{}\"", s.replace('"', "\"\""))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{Fleet, FleetConfig};
    use crate::region::RegionConfig;

    fn fleet() -> Fleet {
        Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.02), 99))
    }

    #[test]
    fn jsonl_roundtrip_is_lossless() {
        let f = fleet();
        let mut buffer = Vec::new();
        write_records_jsonl(&f.databases, &mut buffer).unwrap();
        let back = read_records_jsonl(buffer.as_slice()).unwrap();
        assert_eq!(back, f.databases);
    }

    #[test]
    fn jsonl_lines_are_single_line_json() {
        let f = fleet();
        let mut buffer = Vec::new();
        write_records_jsonl(&f.databases[..2], &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line.starts_with("{\"id\":"), "{line}");
        }
    }

    #[test]
    fn blank_lines_are_skipped() {
        let f = fleet();
        let mut buffer = Vec::new();
        write_records_jsonl(&f.databases[..3], &mut buffer).unwrap();
        buffer.extend_from_slice(b"\n\n");
        let back = read_records_jsonl(buffer.as_slice()).unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn garbage_line_reports_position() {
        let f = fleet();
        let mut buffer = Vec::new();
        write_records_jsonl(&f.databases[..2], &mut buffer).unwrap();
        buffer.extend_from_slice(b"not json\n");
        let err = read_records_jsonl(buffer.as_slice()).unwrap_err();
        match err {
            ImportError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn invalid_records_are_rejected() {
        let f = fleet();
        let mut record = f.databases[0].clone();
        record.slo_history[0].slo_index = 9999;
        let mut buffer = Vec::new();
        write_records_jsonl(&[record], &mut buffer).unwrap();
        let err = read_records_jsonl(buffer.as_slice()).unwrap_err();
        assert!(matches!(err, ImportError::Invalid { line: 1, .. }), "{err}");
    }

    #[test]
    fn unordered_trace_is_a_parse_error_not_a_panic() {
        let f = fleet();
        let mut buffer = Vec::new();
        write_records_jsonl(&f.databases[..1], &mut buffer).unwrap();
        let line = String::from_utf8(buffer).unwrap();
        // Prepend a huge first offset so the size trace is no longer
        // strictly increasing.
        let broken = line.replace("\"size_trace\":[[", "\"size_trace\":[[999999999,1.0],[");
        assert_ne!(line, broken, "fixture line must contain a size trace");
        let err = read_records_jsonl(broken.as_bytes()).unwrap_err();
        assert!(matches!(err, ImportError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn drop_before_creation_rejected() {
        let f = fleet();
        let mut record = f
            .databases
            .iter()
            .find(|d| d.dropped_at.is_some())
            .unwrap()
            .clone();
        record.dropped_at = Some(record.created_at - simtime::Duration::days(1));
        let mut buffer = Vec::new();
        write_records_jsonl(&[record], &mut buffer).unwrap();
        assert!(read_records_jsonl(buffer.as_slice()).is_err());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let f = fleet();
        let mut buffer = Vec::new();
        write_summary_csv(&f.databases[..5], f.window_end(), &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].starts_with("id,region,"));
        // Every data row has the full column count.
        let cols = lines[0].split(',').count();
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), cols, "{row}");
        }
    }

    #[test]
    fn csv_quotes_names() {
        assert_eq!(csv_quote("plain"), "\"plain\"");
        assert_eq!(csv_quote("we\"ird"), "\"we\"\"ird\"");
    }
}
