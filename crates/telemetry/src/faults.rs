//! Deterministic fault injection for telemetry streams.
//!
//! Production telemetry is lossy: events are dropped, duplicated,
//! reordered by the transport, truncated by collector restarts, and
//! occasionally carry corrupt labels. The paper's pipeline (§2) is
//! built on five months of such production data; this module lets the
//! reproduction *manufacture* those defects on demand so the recovery
//! path in [`crate::ingest`] and the §5 predictions can be evaluated
//! under controlled degradation.
//!
//! All decisions are pure functions of `(plan.seed, db_id, event
//! ordinal, fault kind)` via a splitmix64 hash — no RNG state is
//! threaded through the walk, so the same plan applied to the same
//! stream yields byte-identical output on every platform and in every
//! environment.

use crate::events::{EventStream, TelemetryEvent};
use std::collections::BTreeMap;

/// SLO names guaranteed to be absent from [`crate::catalog::SLOS`],
/// substituted by the label-corruption fault.
pub const CORRUPT_SLO_NAMES: [&str; 4] = ["X9", "Q-EXP", "S99", "P99"];

/// One class of telemetry defect, used to label degradation sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultClass {
    /// Size/utilization reports silently lost in transport.
    DropSamples,
    /// Events delivered more than once.
    DuplicateEvents,
    /// Arrival order locally scrambled within a bounded window.
    ReorderEvents,
    /// A database's stream cut off mid-life (collector restart).
    TruncateStreams,
    /// SLO labels replaced with names outside the catalog.
    CorruptSloNames,
    /// `Created` events lost entirely, orphaning the lifecycle.
    OrphanLifecycles,
}

impl FaultClass {
    /// Every fault class, in sweep order.
    pub const ALL: [FaultClass; 6] = [
        FaultClass::DropSamples,
        FaultClass::DuplicateEvents,
        FaultClass::ReorderEvents,
        FaultClass::TruncateStreams,
        FaultClass::CorruptSloNames,
        FaultClass::OrphanLifecycles,
    ];
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FaultClass::DropSamples => "drop-samples",
            FaultClass::DuplicateEvents => "duplicate-events",
            FaultClass::ReorderEvents => "reorder-events",
            FaultClass::TruncateStreams => "truncate-streams",
            FaultClass::CorruptSloNames => "corrupt-slo-names",
            FaultClass::OrphanLifecycles => "orphan-lifecycles",
        };
        f.write_str(name)
    }
}

/// Per-kind fault rates driving a [`FaultInjector`]. All rates are
/// probabilities in `[0, 1]`; the default plan injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for every injection decision.
    pub seed: u64,
    /// Drop rate for `Created` events (implicitly orphans the rest of
    /// that database's stream).
    pub drop_created: f64,
    /// Drop rate for `SizeSample` events.
    pub drop_size: f64,
    /// Drop rate for `UtilizationSample` events.
    pub drop_utilization: f64,
    /// Drop rate for `SloChanged` events.
    pub drop_slo_changed: f64,
    /// Drop rate for `Dropped` events (the database then looks alive).
    pub drop_dropped: f64,
    /// Probability an event is delivered twice.
    pub duplicate: f64,
    /// Probability an event is displaced from its arrival slot.
    pub reorder: f64,
    /// Maximum displacement distance (arrival slots) for reordering.
    pub reorder_window: usize,
    /// Probability a database's stream is truncated mid-life.
    pub truncate: f64,
    /// Probability an SLO-carrying event gets a corrupt label.
    pub corrupt_slo: f64,
    /// Probability a database loses its `Created` event (orphaned
    /// lifecycle; an explicit alias for targeting only creations).
    pub orphan: f64,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_created: 0.0,
            drop_size: 0.0,
            drop_utilization: 0.0,
            drop_slo_changed: 0.0,
            drop_dropped: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            reorder_window: 16,
            truncate: 0.0,
            corrupt_slo: 0.0,
            orphan: 0.0,
        }
    }

    /// A plan exercising exactly one fault class at `rate` — the unit
    /// the degradation sweep ladders over.
    pub fn single(class: FaultClass, rate: f64, seed: u64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "fault rate out of range");
        let mut plan = FaultPlan::none(seed);
        match class {
            FaultClass::DropSamples => {
                plan.drop_size = rate;
                plan.drop_utilization = rate;
            }
            FaultClass::DuplicateEvents => plan.duplicate = rate,
            FaultClass::ReorderEvents => plan.reorder = rate,
            FaultClass::TruncateStreams => plan.truncate = rate,
            FaultClass::CorruptSloNames => plan.corrupt_slo = rate,
            FaultClass::OrphanLifecycles => plan.orphan = rate,
        }
        plan
    }

    fn validate(&self) {
        for (name, rate) in [
            ("drop_created", self.drop_created),
            ("drop_size", self.drop_size),
            ("drop_utilization", self.drop_utilization),
            ("drop_slo_changed", self.drop_slo_changed),
            ("drop_dropped", self.drop_dropped),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
            ("truncate", self.truncate),
            ("corrupt_slo", self.corrupt_slo),
            ("orphan", self.orphan),
        ] {
            assert!(
                (0.0..=1.0).contains(&rate),
                "{name} rate {rate} out of [0, 1]"
            );
        }
    }
}

/// What an injection pass actually did — useful for asserting fault
/// coverage in tests and reporting sweep intensity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSummary {
    /// Events in the input stream.
    pub events_in: usize,
    /// Events in the perturbed stream.
    pub events_out: usize,
    /// Events removed by per-kind drop rates.
    pub dropped_events: usize,
    /// Events delivered twice.
    pub duplicated_events: usize,
    /// Events displaced from their arrival slot.
    pub reordered_events: usize,
    /// Events whose SLO label was corrupted.
    pub corrupted_slos: usize,
    /// Databases whose stream was truncated mid-life.
    pub truncated_databases: usize,
    /// Events removed by truncation.
    pub truncated_events: usize,
    /// Databases whose `Created` event was removed.
    pub orphaned_databases: usize,
}

impl FaultSummary {
    /// Accumulates another summary's tallies into this one — the
    /// streaming pipeline injects faults per subscription stream and
    /// merges the summaries.
    pub fn absorb(&mut self, other: &FaultSummary) {
        self.events_in += other.events_in;
        self.events_out += other.events_out;
        self.dropped_events += other.dropped_events;
        self.duplicated_events += other.duplicated_events;
        self.reordered_events += other.reordered_events;
        self.corrupted_slos += other.corrupted_slos;
        self.truncated_databases += other.truncated_databases;
        self.truncated_events += other.truncated_events;
        self.orphaned_databases += other.orphaned_databases;
    }
}

/// Applies a [`FaultPlan`] to event streams, reproducibly.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
}

/// splitmix64 finalizer — the mixing core of every decision.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Hashes a decision key into a uniform `[0, 1)` draw.
fn unit(seed: u64, db_id: u64, ordinal: u64, salt: u64) -> f64 {
    let h = mix(mix(mix(seed ^ salt).wrapping_add(db_id)).wrapping_add(ordinal));
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Hashes a decision key into an index in `[0, n)`.
fn pick(seed: u64, db_id: u64, ordinal: u64, salt: u64, n: usize) -> usize {
    let h = mix(mix(mix(seed ^ salt).wrapping_add(db_id)).wrapping_add(ordinal));
    (h % n as u64) as usize
}

/// Deterministically corrupts a byte buffer in place: each of the
/// `count` picks XORs a hash-chosen nonzero mask into a hash-chosen
/// position. Reuses the splitmix64 decision scheme, so the same
/// `(seed, count, buf.len())` always corrupts the same bytes — the
/// robustness tests for the on-disk model format lean on this to
/// enumerate reproducible corruption cases. A no-op on empty buffers.
pub fn flip_bytes(buf: &mut [u8], count: usize, seed: u64) {
    if buf.is_empty() {
        return;
    }
    for k in 0..count as u64 {
        let pos = pick(seed, k, 0, SALT_FLIP_POS, buf.len());
        let mask = (mix(mix(seed ^ SALT_FLIP_MASK).wrapping_add(k)) % 255 + 1) as u8;
        buf[pos] ^= mask;
    }
}

// Decision salts: one namespace per fault kind.
const SALT_FLIP_POS: u64 = 0xF11B;
const SALT_FLIP_MASK: u64 = 0xF11C;
const SALT_DROP: u64 = 0xD809;
const SALT_DUP: u64 = 0xD0B1;
const SALT_REORDER: u64 = 0x5EA7;
const SALT_TRUNCATE: u64 = 0x7A11;
const SALT_TRUNCATE_AT: u64 = 0x7A12;
const SALT_CORRUPT: u64 = 0xC0DE;
const SALT_CORRUPT_PICK: u64 = 0xC0DF;
const SALT_ORPHAN: u64 = 0x0F0A;

impl FaultInjector {
    /// Creates an injector; panics if any plan rate is outside `[0, 1]`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        plan.validate();
        FaultInjector { plan }
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Perturbs `stream` according to the plan. The output preserves
    /// the faulted *arrival* order (it is not re-sorted), so reordering
    /// faults survive into ingestion.
    pub fn inject(&self, stream: &EventStream) -> (EventStream, FaultSummary) {
        let _span = obs::span!("inject_faults");
        let plan = &self.plan;
        let mut summary = FaultSummary {
            events_in: stream.len(),
            ..FaultSummary::default()
        };

        // Per-database decisions need per-database event counts first.
        let mut per_db_total: BTreeMap<u64, u64> = BTreeMap::new();
        for (_, event) in stream.events() {
            *per_db_total.entry(event.db_id()).or_insert(0) += 1;
        }

        // Lifecycle-level choices: orphaned and truncated databases.
        let mut orphaned: BTreeMap<u64, ()> = BTreeMap::new();
        let mut truncation_cut: BTreeMap<u64, u64> = BTreeMap::new();
        for (&db_id, &total) in &per_db_total {
            if plan.orphan > 0.0 && unit(plan.seed, db_id, 0, SALT_ORPHAN) < plan.orphan {
                orphaned.insert(db_id, ());
            }
            if plan.truncate > 0.0
                && total > 1
                && unit(plan.seed, db_id, 0, SALT_TRUNCATE) < plan.truncate
            {
                // Cut somewhere in the middle 25–75% of the stream so
                // the creation survives but the tail (often including
                // the drop event) is lost.
                let f = 0.25 + 0.5 * unit(plan.seed, db_id, 0, SALT_TRUNCATE_AT);
                let cut = 1 + ((total - 1) as f64 * f) as u64;
                truncation_cut.insert(db_id, cut);
                summary.truncated_databases += 1;
            }
        }

        // Event-level pass: drops, truncation, corruption, duplication.
        let mut out: Vec<(simtime::Timestamp, TelemetryEvent)> = Vec::with_capacity(stream.len());
        let mut ordinal: BTreeMap<u64, u64> = BTreeMap::new();
        for (at, event) in stream.events() {
            let db_id = event.db_id();
            let n = ordinal.entry(db_id).or_insert(0);
            let ord = *n;
            *n += 1;

            if orphaned.contains_key(&db_id) && matches!(event, TelemetryEvent::Created { .. }) {
                summary.orphaned_databases += 1;
                continue;
            }
            if let Some(&cut) = truncation_cut.get(&db_id) {
                if ord >= cut {
                    summary.truncated_events += 1;
                    continue;
                }
            }
            let drop_rate = match event {
                TelemetryEvent::Created { .. } => plan.drop_created,
                TelemetryEvent::SizeSample { .. } => plan.drop_size,
                TelemetryEvent::UtilizationSample { .. } => plan.drop_utilization,
                TelemetryEvent::SloChanged { .. } => plan.drop_slo_changed,
                TelemetryEvent::Dropped { .. } => plan.drop_dropped,
            };
            if drop_rate > 0.0 && unit(plan.seed, db_id, ord, SALT_DROP) < drop_rate {
                summary.dropped_events += 1;
                continue;
            }

            let mut event = event.clone();
            if plan.corrupt_slo > 0.0
                && event.slo_name().is_some()
                && unit(plan.seed, db_id, ord, SALT_CORRUPT) < plan.corrupt_slo
            {
                let name = CORRUPT_SLO_NAMES[pick(
                    plan.seed,
                    db_id,
                    ord,
                    SALT_CORRUPT_PICK,
                    CORRUPT_SLO_NAMES.len(),
                )];
                event.set_slo_name(name);
                summary.corrupted_slos += 1;
            }

            let duplicate =
                plan.duplicate > 0.0 && unit(plan.seed, db_id, ord, SALT_DUP) < plan.duplicate;
            out.push((*at, event.clone()));
            if duplicate {
                summary.duplicated_events += 1;
                out.push((*at, event));
            }
        }

        // Arrival-order scrambling: displace selected events forward by
        // a bounded, hash-chosen distance. Timestamps travel with their
        // events, so the stream becomes genuinely out of order.
        if plan.reorder > 0.0 && out.len() > 1 {
            let window = plan.reorder_window.max(1);
            for i in 0..out.len() {
                if unit(plan.seed, i as u64, 0, SALT_REORDER) < plan.reorder {
                    let dist = 1 + pick(plan.seed, i as u64, 0, SALT_REORDER, window);
                    let j = (i + dist).min(out.len() - 1);
                    if i != j {
                        out.swap(i, j);
                        summary.reordered_events += 1;
                    }
                }
            }
        }

        summary.events_out = out.len();
        if obs::enabled() {
            obs::count_many(&[
                ("faults.injections_run", 1),
                ("faults.events_in", summary.events_in as u64),
                ("faults.events_out", summary.events_out as u64),
                ("faults.events_dropped", summary.dropped_events as u64),
                ("faults.events_duplicated", summary.duplicated_events as u64),
                ("faults.events_reordered", summary.reordered_events as u64),
                ("faults.slos_corrupted", summary.corrupted_slos as u64),
                (
                    "faults.databases_truncated",
                    summary.truncated_databases as u64,
                ),
                ("faults.events_truncated", summary.truncated_events as u64),
                (
                    "faults.databases_orphaned",
                    summary.orphaned_databases as u64,
                ),
            ]);
        }
        (EventStream::from_events_unsorted(out), summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{Fleet, FleetConfig};
    use crate::region::RegionConfig;

    fn stream() -> EventStream {
        let f = Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.02), 77));
        EventStream::of_fleet(&f)
    }

    #[test]
    fn null_plan_is_identity() {
        let s = stream();
        let (out, summary) = FaultInjector::new(FaultPlan::none(1)).inject(&s);
        assert_eq!(out.events(), s.events());
        assert_eq!(summary.events_in, summary.events_out);
        assert_eq!(summary.dropped_events, 0);
    }

    #[test]
    fn same_seed_same_output() {
        let s = stream();
        let plan = FaultPlan {
            drop_size: 0.2,
            duplicate: 0.1,
            reorder: 0.1,
            corrupt_slo: 0.05,
            truncate: 0.1,
            orphan: 0.02,
            ..FaultPlan::none(99)
        };
        let (a, sa) = FaultInjector::new(plan).inject(&s);
        let (b, sb) = FaultInjector::new(plan).inject(&s);
        assert_eq!(a.events(), b.events());
        assert_eq!(sa, sb);
    }

    #[test]
    fn different_seed_differs() {
        let s = stream();
        let (a, _) =
            FaultInjector::new(FaultPlan::single(FaultClass::DropSamples, 0.3, 1)).inject(&s);
        let (b, _) =
            FaultInjector::new(FaultPlan::single(FaultClass::DropSamples, 0.3, 2)).inject(&s);
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn drop_rate_scales_losses() {
        let s = stream();
        let sizes = s.count_where(|e| matches!(e, TelemetryEvent::SizeSample { .. }));
        let (_, summary) =
            FaultInjector::new(FaultPlan::single(FaultClass::DropSamples, 0.5, 7)).inject(&s);
        // Half the size+utilization samples, within loose tolerance.
        assert!(summary.dropped_events > sizes / 2);
        assert!(summary.events_out < summary.events_in);
    }

    #[test]
    fn corruption_introduces_unknown_slos() {
        let s = stream();
        let (out, summary) =
            FaultInjector::new(FaultPlan::single(FaultClass::CorruptSloNames, 0.5, 7)).inject(&s);
        assert!(summary.corrupted_slos > 0);
        let corrupt = out.count_where(
            |e| matches!(e, TelemetryEvent::Created { slo, .. } if CORRUPT_SLO_NAMES.contains(slo)),
        );
        assert!(corrupt > 0);
    }

    #[test]
    fn reorder_breaks_time_order_but_keeps_multiset() {
        let s = stream();
        let (out, summary) =
            FaultInjector::new(FaultPlan::single(FaultClass::ReorderEvents, 0.3, 7)).inject(&s);
        assert!(summary.reordered_events > 0);
        assert_eq!(out.len(), s.len());
        let unsorted = out.events().windows(2).any(|w| w[0].0 > w[1].0);
        assert!(unsorted, "expected at least one inversion");
    }

    #[test]
    fn orphan_removes_creates_only() {
        let s = stream();
        let (out, summary) =
            FaultInjector::new(FaultPlan::single(FaultClass::OrphanLifecycles, 0.5, 7)).inject(&s);
        assert!(summary.orphaned_databases > 0);
        let creates_in = s.count_where(|e| matches!(e, TelemetryEvent::Created { .. }));
        let creates_out = out.count_where(|e| matches!(e, TelemetryEvent::Created { .. }));
        assert_eq!(creates_in - creates_out, summary.orphaned_databases);
        assert_eq!(s.len() - out.len(), summary.orphaned_databases);
    }

    #[test]
    fn flip_bytes_is_deterministic_and_bounded() {
        let clean: Vec<u8> = (0u8..=255).cycle().take(4096).collect();

        let mut a = clean.clone();
        let mut b = clean.clone();
        flip_bytes(&mut a, 16, 7);
        flip_bytes(&mut b, 16, 7);
        assert_eq!(a, b, "same seed must corrupt the same bytes");
        assert_ne!(a, clean, "a nonzero mask always changes the buffer");

        let mut c = clean.clone();
        flip_bytes(&mut c, 16, 8);
        assert_ne!(a, c, "different seeds should corrupt differently");

        // At most `count` positions change (fewer if picks collide).
        let changed = a.iter().zip(&clean).filter(|(x, y)| x != y).count();
        assert!((1..=16).contains(&changed), "changed {changed} bytes");

        // Degenerate inputs are no-ops, never panics.
        flip_bytes(&mut [], 10, 1);
        let mut untouched = clean.clone();
        flip_bytes(&mut untouched, 0, 1);
        assert_eq!(untouched, clean);
    }

    #[test]
    fn truncation_preserves_creates() {
        let s = stream();
        let (out, summary) =
            FaultInjector::new(FaultPlan::single(FaultClass::TruncateStreams, 0.6, 7)).inject(&s);
        assert!(summary.truncated_databases > 0);
        assert!(summary.truncated_events > 0);
        let creates_in = s.count_where(|e| matches!(e, TelemetryEvent::Created { .. }));
        let creates_out = out.count_where(|e| matches!(e, TelemetryEvent::Created { .. }));
        assert_eq!(creates_in, creates_out);
    }
}
