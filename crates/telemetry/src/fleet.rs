//! Fleet generation: subscriptions and their databases over the
//! observation window.
//!
//! Generation is *per-subscription pure*: subscription `i` (and all of
//! its databases) is a function of `(config, i)` alone, with its
//! randomness drawn from a dedicated RNG seeded by
//! [`crate::stream::derive_seed`]`(config.seed, i)`. Any subset of
//! subscriptions can therefore be generated independently — the
//! sharded streaming pipeline in [`crate::stream`] leans on this — and
//! concatenating shards in index order reproduces [`Fleet::generate`]
//! byte for byte.

use crate::archetype::Archetype;
use crate::catalog::SloCatalog;
use crate::database::{DatabaseRecord, SloChange};
use crate::region::RegionConfig;
use crate::sizetrace::SizeTrace;
use crate::stream::derive_seed;
use crate::subscription::{Subscription, SubscriptionId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simtime::{CivilDate, Duration, Timestamp};
use stats::distributions::{Categorical, ContinuousDistribution, DiscreteDistribution, LogNormal};
use std::ops::Range;

/// Bits reserved for the per-subscription database ordinal inside a
/// database id: `id = subscription_index << SHIFT | ordinal`. The
/// largest archetype creates 70 databases per subscription, far below
/// the 2^20 ordinal ceiling.
pub const DB_ORDINAL_BITS: u32 = 20;

/// Encodes the canonical database id for `(subscription index,
/// ordinal)`. Ids ascend in generation order, so "sorted by id" and
/// "generation order" are the same order.
pub fn database_id(sub_idx: u64, ordinal: u64) -> u64 {
    debug_assert!(ordinal < (1 << DB_ORDINAL_BITS));
    (sub_idx << DB_ORDINAL_BITS) | ordinal
}

/// Fleet generation parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The region being simulated.
    pub region: RegionConfig,
    /// Master seed; the entire fleet is a pure function of
    /// `(region, seed)`.
    pub seed: u64,
    /// How many days of size telemetry to retain per database (only the
    /// observation prefix is consumed by features; default 4).
    pub size_trace_days: u32,
}

impl FleetConfig {
    /// Config with default telemetry retention.
    pub fn new(region: RegionConfig, seed: u64) -> FleetConfig {
        FleetConfig {
            region,
            seed,
            size_trace_days: 4,
        }
    }

    /// Builder over the knobs the bins and tests used to hard-code
    /// individually (scale, seed, retention, shard count).
    pub fn builder(region: RegionConfig) -> FleetBuilder {
        FleetBuilder {
            region,
            scale: 1.0,
            seed: 0x05DB_2018,
            size_trace_days: 4,
            shards: 1,
        }
    }
}

/// Centralized scale/seed/shard knobs for fleet generation. Every
/// binary and test that sizes a fleet goes through this builder, so
/// "what does scale 0.25 mean" has exactly one answer — including the
/// small-class rounding clamp [`RegionConfig::scaled`] applies at tiny
/// scales.
#[derive(Debug, Clone)]
pub struct FleetBuilder {
    region: RegionConfig,
    scale: f64,
    seed: u64,
    size_trace_days: u32,
    shards: usize,
}

impl FleetBuilder {
    /// Population scale (1.0 = the region's canonical size).
    pub fn scale(mut self, scale: f64) -> FleetBuilder {
        assert!(scale > 0.0, "scale must be positive");
        self.scale = scale;
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> FleetBuilder {
        self.seed = seed;
        self
    }

    /// Days of size/utilization telemetry retained per database.
    pub fn size_trace_days(mut self, days: u32) -> FleetBuilder {
        self.size_trace_days = days;
        self
    }

    /// Shard count for the streaming pipeline (clamped to ≥ 1).
    pub fn shards(mut self, shards: usize) -> FleetBuilder {
        self.shards = shards.max(1);
        self
    }

    /// The configured shard count.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The resolved generation config (region scaled, seed, retention).
    pub fn config(&self) -> FleetConfig {
        FleetConfig {
            region: self.region.clone().scaled(self.scale),
            seed: self.seed,
            size_trace_days: self.size_trace_days,
        }
    }

    /// The shard partition of the scaled region's subscriptions.
    pub fn shard_plan(&self) -> crate::stream::ShardPlan {
        crate::stream::ShardPlan::new(self.config().region.subscription_count, self.shards)
    }

    /// Generates the full fleet (materialized path).
    pub fn build(&self) -> Fleet {
        Fleet::generate(self.config())
    }
}

/// A fully generated region population.
#[derive(Debug, Clone)]
pub struct Fleet {
    /// Generation parameters.
    pub config: FleetConfig,
    /// All subscriptions, ascending by id.
    pub subscriptions: Vec<Subscription>,
    /// All databases in generation order — ascending by id, which
    /// encodes `(subscription index, ordinal)`; see [`database_id`].
    pub databases: Vec<DatabaseRecord>,
}

impl Fleet {
    /// Generates the fleet for a config. Deterministic in
    /// `(region, seed)`.
    pub fn generate(config: FleetConfig) -> Fleet {
        let count = config.region.subscription_count;
        Fleet::generate_range(config, 0..count)
    }

    /// Generates the sub-fleet of a contiguous subscription range — one
    /// shard of the region. Because generation is per-subscription
    /// pure, concatenating the shard fleets of a partition in range
    /// order reproduces [`Fleet::generate`] exactly.
    pub fn generate_range(config: FleetConfig, range: Range<usize>) -> Fleet {
        assert!(
            range.end <= config.region.subscription_count,
            "range {range:?} outside the region's {} subscriptions",
            config.region.subscription_count
        );
        let mut subscriptions = Vec::with_capacity(range.len());
        let mut databases = Vec::new();
        for sub_idx in range {
            let (subscription, records) = generate_subscription(&config, sub_idx);
            databases.extend(records);
            subscriptions.push(subscription);
        }
        Fleet {
            config,
            subscriptions,
            databases,
        }
    }

    /// Window end timestamp (observation horizon).
    pub fn window_end(&self) -> Timestamp {
        Timestamp::from_date(self.config.region.window_end())
    }

    /// Window start timestamp.
    pub fn window_start(&self) -> Timestamp {
        Timestamp::from_date(self.config.region.window_start)
    }

    /// The subscription owning a database record. Works on shard
    /// fleets too: subscriptions are ascending by id, so lookup is a
    /// binary search rather than an index.
    pub fn subscription(&self, id: SubscriptionId) -> &Subscription {
        let slot = self
            .subscriptions
            .binary_search_by_key(&id.0, |s| s.id.0)
            .expect("subscription id not in this fleet");
        &self.subscriptions[slot]
    }
}

/// Generates subscription `sub_idx` of the region together with its
/// databases. Pure in `(config, sub_idx)`: all randomness comes from a
/// dedicated RNG seeded with `derive_seed(config.seed, sub_idx)`, so a
/// subscription's telemetry is identical whether it is generated in a
/// full [`Fleet::generate`], a shard, or a one-subscription chunk.
pub fn generate_subscription(
    config: &FleetConfig,
    sub_idx: usize,
) -> (Subscription, Vec<DatabaseRecord>) {
    let mut rng = SmallRng::seed_from_u64(derive_seed(config.seed, sub_idx as u64));
    let region = &config.region;
    let window_end = Timestamp::from_date(region.window_end());
    let archetype_dist = Categorical::new(&region.archetype_weights);

    let archetype = Archetype::ALL[archetype_dist.sample(&mut rng)];
    let subscription_type = archetype.sample_subscription_type(&mut rng);
    let longevity_trait = archetype.sample_trait(&mut rng);
    let name_style = archetype.sample_name_style(longevity_trait, &mut rng);
    let is_internal = rng.gen_bool(region.internal_fraction);
    let uses_pools = rng.gen_bool(archetype.elastic_pool_affinity());
    let id = SubscriptionId(sub_idx as u64);

    // One to three logical servers per subscription.
    let server_count = 1 + (rng.gen::<f64>() * rng.gen::<f64>() * 3.0) as usize;
    let server_names: Vec<String> = (0..server_count)
        .map(|k| {
            format!(
                "{}-sql",
                name_style.generate(&mut rng, (sub_idx * 7 + k) as u64)
            )
        })
        .collect();

    let subscription = Subscription {
        id,
        region: region.id,
        subscription_type,
        archetype,
        longevity_trait,
        name_style,
        server_names,
        is_internal,
    };

    let db_count = archetype.sample_db_count(&mut rng);
    let mut databases = Vec::with_capacity(db_count);
    for ordinal in 0..db_count {
        let created_at = sample_creation_time(region, archetype, &mut rng);
        let edition = archetype.sample_edition(&mut rng);
        let lifespan_days = archetype.sample_lifespan_days(longevity_trait, edition, &mut rng);
        // Pool-using subscriptions put most of their databases
        // into one of a few shared pools.
        let elastic_pool = (uses_pools && rng.gen_bool(0.7)).then(|| rng.gen_range(0..3u32));
        let record = build_database(
            database_id(sub_idx as u64, ordinal as u64),
            &subscription,
            ordinal as u64,
            created_at,
            edition,
            lifespan_days,
            elastic_pool,
            window_end,
            config.size_trace_days,
            &mut rng,
        );
        databases.push(record);
    }
    (subscription, databases)
}

/// Samples a creation timestamp honouring the archetype's weekly,
/// holiday, and hour-of-day activity profile.
fn sample_creation_time(
    region: &RegionConfig,
    archetype: Archetype,
    rng: &mut SmallRng,
) -> Timestamp {
    // Rejection-sample the day: uniform proposal over the window,
    // accepted with the archetype's weekday/holiday factor.
    let date: CivilDate = loop {
        let offset = rng.gen_range(0..region.window_days as i64);
        let date = region.window_start.plus_days(offset);
        let factor = if region.holidays.is_holiday(date) {
            archetype.holiday_activity_factor()
        } else if date.weekday().is_weekend() {
            archetype.weekend_activity_factor()
        } else {
            1.0
        };
        if rng.gen::<f64>() < factor {
            break date;
        }
    };
    let hour = archetype.sample_creation_hour(rng);
    let minute = rng.gen_range(0..60);
    let second = rng.gen_range(0..60);
    Timestamp::from_datetime(simtime::CivilDateTime::new(date, hour, minute, second))
}

/// Builds one database record.
#[allow(clippy::too_many_arguments)]
fn build_database(
    id: u64,
    subscription: &Subscription,
    ordinal: u64,
    created_at: Timestamp,
    edition: crate::catalog::Edition,
    lifespan_days: f64,
    elastic_pool: Option<u32>,
    window_end: Timestamp,
    size_trace_days: u32,
    rng: &mut SmallRng,
) -> DatabaseRecord {
    let archetype = subscription.archetype;
    let true_drop = created_at + Duration::days_f64(lifespan_days);
    let dropped_at = (true_drop <= window_end).then_some(true_drop);
    let observed_until = dropped_at.unwrap_or(window_end);
    let observed_days = (observed_until - created_at).as_days_f64();

    // --- SLO history -----------------------------------------------
    // Entry rung or a higher one, biased toward cheaper rungs.
    let ladder = SloCatalog::edition_slos(edition);
    let rung = {
        let mut r = 0usize;
        while r + 1 < ladder.len() && rng.gen_bool(0.35) {
            r += 1;
        }
        r
    };
    let mut slo_history = vec![SloChange {
        at: created_at,
        slo_index: ladder[rung],
    }];

    // Within-edition SLO elasticity: Poisson-ish count from the
    // archetype's per-30-day rate over the observed life.
    let expected_changes = archetype.slo_change_rate() * observed_days / 30.0;
    let n_changes = sample_poisson(expected_changes.min(20.0), rng);
    let mut current_rung = rung;
    let mut change_times: Vec<f64> = (0..n_changes)
        .map(|_| rng.gen::<f64>() * observed_days)
        .collect();
    change_times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    for offset_days in change_times {
        if ladder.len() < 2 {
            break; // Basic has a single rung: nowhere to move within-edition
        }
        // Walk one rung, preferring to return toward the entry rung
        // (scale-up for load, scale-down for cost — both happen).
        let go_up = if current_rung == 0 {
            true
        } else if current_rung + 1 >= ladder.len() {
            false
        } else {
            rng.gen_bool(0.5)
        };
        current_rung = if go_up {
            current_rung + 1
        } else {
            current_rung - 1
        };
        slo_history.push(SloChange {
            at: created_at + Duration::days_f64(offset_days),
            slo_index: ladder[current_rung],
        });
    }

    // Edition changes (Obs 3.3): mostly Premium, a downgrade for a
    // low-utilization period and often an upgrade back.
    if rng.gen_bool(archetype.edition_change_probability(edition)) && observed_days > 2.0 {
        let other = match edition {
            crate::catalog::Edition::Premium => crate::catalog::Edition::Standard,
            crate::catalog::Edition::Standard => {
                if rng.gen_bool(0.6) {
                    crate::catalog::Edition::Premium
                } else {
                    crate::catalog::Edition::Basic
                }
            }
            crate::catalog::Edition::Basic => crate::catalog::Edition::Standard,
        };
        let down_at = rng.gen::<f64>() * (observed_days - 1.0);
        slo_history.push(SloChange {
            at: created_at + Duration::days_f64(down_at),
            slo_index: SloCatalog::entry_slo(other),
        });
        // Upgrade back after a few days, if life permits.
        let back_at = down_at + 1.0 + rng.gen::<f64>() * 6.0;
        if back_at < observed_days && rng.gen_bool(0.7) {
            slo_history.push(SloChange {
                at: created_at + Duration::days_f64(back_at),
                slo_index: ladder[current_rung],
            });
        }
    }

    slo_history.sort_by_key(|c| c.at);
    dedup_slo_times(&mut slo_history);

    // --- Size trace -------------------------------------------------
    let initial = archetype.sample_initial_size_mb(edition, rng);
    let growth = archetype.daily_growth_rate();
    let trace_horizon_days = (size_trace_days as f64).min(observed_days.max(0.01));
    let mut samples = Vec::new();
    let mut size = initial;
    let mut offset_h = 0i64;
    loop {
        let offset = Duration::hours(offset_h);
        if offset.as_days_f64() > trace_horizon_days {
            break;
        }
        samples.push((offset, size));
        // Quarter-day growth with multiplicative measurement/churn
        // noise large enough that short horizons cannot read the
        // growth rate cleanly (size is a weak clue, paper §5.4).
        let noise = 1.0 + (rng.gen::<f64>() - 0.5) * 0.06;
        size = (size * (1.0 + growth / 4.0) * noise).max(1.0);
        offset_h += 6;
    }

    // --- Utilization trace -------------------------------------------
    // Per-database level spread: two databases of the same customer can
    // serve very different workloads, so the 2-day utilization average
    // is a noisy trait readout, not an oracle.
    let mut utilization_profile = archetype.utilization_profile(subscription.longevity_trait);
    let level_spread = LogNormal::new(0.0, 0.5).sample(rng);
    utilization_profile.base_level =
        (utilization_profile.base_level * level_spread).clamp(1.0, 95.0);
    let utilization_trace = utilization_profile.generate(
        created_at,
        Duration::days_f64(trace_horizon_days),
        Duration::hours(6),
        rng,
    );

    // --- Names ------------------------------------------------------
    let server_name =
        subscription.server_names[rng.gen_range(0..subscription.server_names.len())].clone();
    let database_name = subscription
        .name_style
        .generate(rng, subscription.id.0 * 1_000 + ordinal);

    DatabaseRecord {
        id,
        region: subscription.region,
        server_name,
        database_name,
        subscription_id: subscription.id,
        subscription_type: subscription.subscription_type,
        created_at,
        dropped_at,
        slo_history,
        size_trace: SizeTrace::new(samples),
        utilization_trace,
        elastic_pool,
        is_internal: subscription.is_internal,
    }
}

/// Drops history entries that collide on the same timestamp, keeping
/// the last (`SizeTrace`/`slo_at` need strictly ordered times).
fn dedup_slo_times(history: &mut Vec<SloChange>) {
    history.dedup_by(|b, a| {
        if a.at == b.at {
            a.slo_index = b.slo_index;
            true
        } else {
            false
        }
    });
}

/// Knuth Poisson sampler (small means only).
fn sample_poisson(mean: f64, rng: &mut SmallRng) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 200 {
            return k; // numerical guard; unreachable for our means
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::SLOS;
    use crate::region::RegionConfig;

    fn small_fleet(seed: u64) -> Fleet {
        Fleet::generate(FleetConfig::new(
            RegionConfig::region_1().scaled(0.05),
            seed,
        ))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_fleet(42);
        let b = small_fleet(42);
        assert_eq!(a.databases.len(), b.databases.len());
        assert_eq!(a.databases[0], b.databases[0]);
        assert_eq!(
            a.databases[a.databases.len() / 2],
            b.databases[b.databases.len() / 2]
        );
    }

    #[test]
    fn seeds_change_the_fleet() {
        let a = small_fleet(1);
        let b = small_fleet(2);
        assert_ne!(a.databases.len(), 0);
        // Same config, different seed: essentially impossible to match.
        assert!(a.databases.len() != b.databases.len() || a.databases[0] != b.databases[0]);
    }

    #[test]
    fn creations_are_inside_window() {
        let fleet = small_fleet(3);
        let start = fleet.window_start();
        let end = fleet.window_end();
        for db in &fleet.databases {
            assert!(db.created_at >= start && db.created_at < end + Duration::days(1));
            if let Some(d) = db.dropped_at {
                assert!(d > db.created_at, "drop before creation");
                assert!(d <= end, "unobservable drop leaked into the record");
            }
        }
    }

    #[test]
    fn databases_in_generation_order() {
        let fleet = small_fleet(4);
        for w in fleet.databases.windows(2) {
            assert!(w[0].id < w[1].id, "ids must ascend in generation order");
        }
        for db in &fleet.databases {
            let sub_idx = db.id >> DB_ORDINAL_BITS;
            assert_eq!(sub_idx, db.subscription_id.0, "id encodes the owner");
        }
    }

    #[test]
    fn shard_concatenation_reproduces_full_generation() {
        let full = small_fleet(4);
        let count = full.config.region.subscription_count;
        let cut = count / 3;
        let left = Fleet::generate_range(full.config.clone(), 0..cut);
        let right = Fleet::generate_range(full.config.clone(), cut..count);
        let mut subscriptions = left.subscriptions.clone();
        subscriptions.extend(right.subscriptions.iter().cloned());
        let mut databases = left.databases.clone();
        databases.extend(right.databases.iter().cloned());
        assert_eq!(subscriptions, full.subscriptions);
        assert_eq!(databases, full.databases);
        // Shard fleets resolve subscription lookups too.
        let db = &right.databases[0];
        assert_eq!(
            right.subscription(db.subscription_id).id,
            db.subscription_id
        );
    }

    #[test]
    fn builder_centralizes_scale_and_clamps_tiny_classes() {
        let builder = FleetConfig::builder(RegionConfig::region_1())
            .scale(0.05)
            .seed(4)
            .shards(3);
        assert_eq!(builder.shard_count(), 3);
        let config = builder.config();
        assert_eq!(
            config.region.subscription_count,
            RegionConfig::region_1().scaled(0.05).subscription_count
        );
        assert_eq!(builder.build().databases, small_fleet(4).databases);

        // The small-class rounding clamp: even absurdly small scales
        // keep at least 10 subscriptions, so every archetype class can
        // still appear and the census maths never divides by zero.
        for tiny in [1e-6, 1e-4, 1e-3] {
            let cfg = FleetConfig::builder(RegionConfig::region_1())
                .scale(tiny)
                .config();
            assert_eq!(cfg.region.subscription_count, 10, "scale {tiny}");
        }
        // The clamp releases once the scaled count crosses it.
        let cfg = FleetConfig::builder(RegionConfig::region_1())
            .scale(0.01)
            .config();
        assert!(cfg.region.subscription_count >= 10);

        // Shard counts clamp to at least one shard.
        assert_eq!(
            FleetConfig::builder(RegionConfig::region_1())
                .shards(0)
                .shard_count(),
            1
        );
    }

    #[test]
    fn slo_history_is_ordered_and_nonempty() {
        let fleet = small_fleet(5);
        for db in &fleet.databases {
            assert!(!db.slo_history.is_empty());
            assert_eq!(db.slo_history[0].at, db.created_at);
            for w in db.slo_history.windows(2) {
                assert!(w[0].at < w[1].at, "unsorted or duplicate SLO times");
            }
        }
    }

    #[test]
    fn slo_indices_valid_and_first_sample_at_creation() {
        let fleet = small_fleet(6);
        for db in &fleet.databases {
            for c in &db.slo_history {
                assert!(c.slo_index < SLOS.len());
            }
            assert_eq!(db.size_trace.samples()[0].0, Duration::seconds(0));
            assert!(db.size_trace.initial_size_mb() >= 1.0);
        }
    }

    #[test]
    fn subscription_lookup_round_trips() {
        let fleet = small_fleet(7);
        for db in fleet.databases.iter().take(100) {
            let sub = fleet.subscription(db.subscription_id);
            assert_eq!(sub.id, db.subscription_id);
            assert!(sub.server_names.contains(&db.server_name));
            assert_eq!(sub.subscription_type, db.subscription_type);
        }
    }

    #[test]
    fn cyclers_produce_many_databases() {
        let fleet = small_fleet(8);
        let cycler_dbs = fleet
            .databases
            .iter()
            .filter(|d| fleet.subscription(d.subscription_id).archetype == Archetype::CiCdCycler)
            .count();
        let cycler_subs = fleet
            .subscriptions
            .iter()
            .filter(|s| s.archetype == Archetype::CiCdCycler)
            .count();
        if cycler_subs > 0 {
            assert!(cycler_dbs >= 25 * cycler_subs);
        }
    }

    #[test]
    fn poisson_sampler_mean() {
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 20_000;
        let total: usize = (0..n).map(|_| sample_poisson(3.0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
    }
}
