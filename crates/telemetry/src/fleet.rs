//! Fleet generation: subscriptions and their databases over the
//! observation window.

use crate::archetype::Archetype;
use crate::catalog::SloCatalog;
use crate::database::{DatabaseRecord, SloChange};
use crate::region::RegionConfig;
use crate::sizetrace::SizeTrace;
use crate::subscription::{Subscription, SubscriptionId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simtime::{CivilDate, Duration, Timestamp};
use stats::distributions::{Categorical, ContinuousDistribution, DiscreteDistribution, LogNormal};

/// Fleet generation parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The region being simulated.
    pub region: RegionConfig,
    /// Master seed; the entire fleet is a pure function of
    /// `(region, seed)`.
    pub seed: u64,
    /// How many days of size telemetry to retain per database (only the
    /// observation prefix is consumed by features; default 4).
    pub size_trace_days: u32,
}

impl FleetConfig {
    /// Config with default telemetry retention.
    pub fn new(region: RegionConfig, seed: u64) -> FleetConfig {
        FleetConfig {
            region,
            seed,
            size_trace_days: 4,
        }
    }
}

/// A fully generated region population.
#[derive(Debug, Clone)]
pub struct Fleet {
    /// Generation parameters.
    pub config: FleetConfig,
    /// All subscriptions.
    pub subscriptions: Vec<Subscription>,
    /// All singleton databases, sorted by creation time.
    pub databases: Vec<DatabaseRecord>,
}

impl Fleet {
    /// Generates the fleet for a config. Deterministic in
    /// `(region, seed)`.
    pub fn generate(config: FleetConfig) -> Fleet {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let region = &config.region;
        let window_start = Timestamp::from_date(region.window_start);
        let window_end = Timestamp::from_date(region.window_end());

        let archetype_dist = Categorical::new(&region.archetype_weights);

        let mut subscriptions = Vec::with_capacity(region.subscription_count);
        let mut databases = Vec::new();
        let mut db_id = 0u64;

        for sub_idx in 0..region.subscription_count {
            let archetype = Archetype::ALL[archetype_dist.sample(&mut rng)];
            let subscription_type = archetype.sample_subscription_type(&mut rng);
            let longevity_trait = archetype.sample_trait(&mut rng);
            let name_style = archetype.sample_name_style(longevity_trait, &mut rng);
            let is_internal = rng.gen_bool(region.internal_fraction);
            let uses_pools = rng.gen_bool(archetype.elastic_pool_affinity());
            let id = SubscriptionId(sub_idx as u64);

            // One to three logical servers per subscription.
            let server_count = 1 + (rng.gen::<f64>() * rng.gen::<f64>() * 3.0) as usize;
            let server_names: Vec<String> = (0..server_count)
                .map(|k| {
                    format!(
                        "{}-sql",
                        name_style.generate(&mut rng, (sub_idx * 7 + k) as u64)
                    )
                })
                .collect();

            let subscription = Subscription {
                id,
                region: region.id,
                subscription_type,
                archetype,
                longevity_trait,
                name_style,
                server_names,
                is_internal,
            };

            let db_count = archetype.sample_db_count(&mut rng);
            for ordinal in 0..db_count {
                let created_at = sample_creation_time(region, archetype, &mut rng);
                let edition = archetype.sample_edition(&mut rng);
                let lifespan_days =
                    archetype.sample_lifespan_days(longevity_trait, edition, &mut rng);
                // Pool-using subscriptions put most of their databases
                // into one of a few shared pools.
                let elastic_pool =
                    (uses_pools && rng.gen_bool(0.7)).then(|| rng.gen_range(0..3u32));
                let record = build_database(
                    db_id,
                    &subscription,
                    ordinal as u64,
                    created_at,
                    edition,
                    lifespan_days,
                    elastic_pool,
                    window_end,
                    config.size_trace_days,
                    &mut rng,
                );
                databases.push(record);
                db_id += 1;
            }
            subscriptions.push(subscription);
        }

        databases.sort_by_key(|d| (d.created_at, d.id));
        let _ = window_start;
        Fleet {
            config,
            subscriptions,
            databases,
        }
    }

    /// Window end timestamp (observation horizon).
    pub fn window_end(&self) -> Timestamp {
        Timestamp::from_date(self.config.region.window_end())
    }

    /// Window start timestamp.
    pub fn window_start(&self) -> Timestamp {
        Timestamp::from_date(self.config.region.window_start)
    }

    /// The subscription owning a database record.
    pub fn subscription(&self, id: SubscriptionId) -> &Subscription {
        &self.subscriptions[id.0 as usize]
    }
}

/// Samples a creation timestamp honouring the archetype's weekly,
/// holiday, and hour-of-day activity profile.
fn sample_creation_time(
    region: &RegionConfig,
    archetype: Archetype,
    rng: &mut SmallRng,
) -> Timestamp {
    // Rejection-sample the day: uniform proposal over the window,
    // accepted with the archetype's weekday/holiday factor.
    let date: CivilDate = loop {
        let offset = rng.gen_range(0..region.window_days as i64);
        let date = region.window_start.plus_days(offset);
        let factor = if region.holidays.is_holiday(date) {
            archetype.holiday_activity_factor()
        } else if date.weekday().is_weekend() {
            archetype.weekend_activity_factor()
        } else {
            1.0
        };
        if rng.gen::<f64>() < factor {
            break date;
        }
    };
    let hour = archetype.sample_creation_hour(rng);
    let minute = rng.gen_range(0..60);
    let second = rng.gen_range(0..60);
    Timestamp::from_datetime(simtime::CivilDateTime::new(date, hour, minute, second))
}

/// Builds one database record.
#[allow(clippy::too_many_arguments)]
fn build_database(
    id: u64,
    subscription: &Subscription,
    ordinal: u64,
    created_at: Timestamp,
    edition: crate::catalog::Edition,
    lifespan_days: f64,
    elastic_pool: Option<u32>,
    window_end: Timestamp,
    size_trace_days: u32,
    rng: &mut SmallRng,
) -> DatabaseRecord {
    let archetype = subscription.archetype;
    let true_drop = created_at + Duration::days_f64(lifespan_days);
    let dropped_at = (true_drop <= window_end).then_some(true_drop);
    let observed_until = dropped_at.unwrap_or(window_end);
    let observed_days = (observed_until - created_at).as_days_f64();

    // --- SLO history -----------------------------------------------
    // Entry rung or a higher one, biased toward cheaper rungs.
    let ladder = SloCatalog::edition_slos(edition);
    let rung = {
        let mut r = 0usize;
        while r + 1 < ladder.len() && rng.gen_bool(0.35) {
            r += 1;
        }
        r
    };
    let mut slo_history = vec![SloChange {
        at: created_at,
        slo_index: ladder[rung],
    }];

    // Within-edition SLO elasticity: Poisson-ish count from the
    // archetype's per-30-day rate over the observed life.
    let expected_changes = archetype.slo_change_rate() * observed_days / 30.0;
    let n_changes = sample_poisson(expected_changes.min(20.0), rng);
    let mut current_rung = rung;
    let mut change_times: Vec<f64> = (0..n_changes)
        .map(|_| rng.gen::<f64>() * observed_days)
        .collect();
    change_times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    for offset_days in change_times {
        if ladder.len() < 2 {
            break; // Basic has a single rung: nowhere to move within-edition
        }
        // Walk one rung, preferring to return toward the entry rung
        // (scale-up for load, scale-down for cost — both happen).
        let go_up = if current_rung == 0 {
            true
        } else if current_rung + 1 >= ladder.len() {
            false
        } else {
            rng.gen_bool(0.5)
        };
        current_rung = if go_up {
            current_rung + 1
        } else {
            current_rung - 1
        };
        slo_history.push(SloChange {
            at: created_at + Duration::days_f64(offset_days),
            slo_index: ladder[current_rung],
        });
    }

    // Edition changes (Obs 3.3): mostly Premium, a downgrade for a
    // low-utilization period and often an upgrade back.
    if rng.gen_bool(archetype.edition_change_probability(edition)) && observed_days > 2.0 {
        let other = match edition {
            crate::catalog::Edition::Premium => crate::catalog::Edition::Standard,
            crate::catalog::Edition::Standard => {
                if rng.gen_bool(0.6) {
                    crate::catalog::Edition::Premium
                } else {
                    crate::catalog::Edition::Basic
                }
            }
            crate::catalog::Edition::Basic => crate::catalog::Edition::Standard,
        };
        let down_at = rng.gen::<f64>() * (observed_days - 1.0);
        slo_history.push(SloChange {
            at: created_at + Duration::days_f64(down_at),
            slo_index: SloCatalog::entry_slo(other),
        });
        // Upgrade back after a few days, if life permits.
        let back_at = down_at + 1.0 + rng.gen::<f64>() * 6.0;
        if back_at < observed_days && rng.gen_bool(0.7) {
            slo_history.push(SloChange {
                at: created_at + Duration::days_f64(back_at),
                slo_index: ladder[current_rung],
            });
        }
    }

    slo_history.sort_by_key(|c| c.at);
    dedup_slo_times(&mut slo_history);

    // --- Size trace -------------------------------------------------
    let initial = archetype.sample_initial_size_mb(edition, rng);
    let growth = archetype.daily_growth_rate();
    let trace_horizon_days = (size_trace_days as f64).min(observed_days.max(0.01));
    let mut samples = Vec::new();
    let mut size = initial;
    let mut offset_h = 0i64;
    loop {
        let offset = Duration::hours(offset_h);
        if offset.as_days_f64() > trace_horizon_days {
            break;
        }
        samples.push((offset, size));
        // Quarter-day growth with multiplicative measurement/churn
        // noise large enough that short horizons cannot read the
        // growth rate cleanly (size is a weak clue, paper §5.4).
        let noise = 1.0 + (rng.gen::<f64>() - 0.5) * 0.06;
        size = (size * (1.0 + growth / 4.0) * noise).max(1.0);
        offset_h += 6;
    }

    // --- Utilization trace -------------------------------------------
    // Per-database level spread: two databases of the same customer can
    // serve very different workloads, so the 2-day utilization average
    // is a noisy trait readout, not an oracle.
    let mut utilization_profile = archetype.utilization_profile(subscription.longevity_trait);
    let level_spread = LogNormal::new(0.0, 0.5).sample(rng);
    utilization_profile.base_level =
        (utilization_profile.base_level * level_spread).clamp(1.0, 95.0);
    let utilization_trace = utilization_profile.generate(
        created_at,
        Duration::days_f64(trace_horizon_days),
        Duration::hours(6),
        rng,
    );

    // --- Names ------------------------------------------------------
    let server_name =
        subscription.server_names[rng.gen_range(0..subscription.server_names.len())].clone();
    let database_name = subscription
        .name_style
        .generate(rng, subscription.id.0 * 1_000 + ordinal);

    DatabaseRecord {
        id,
        region: subscription.region,
        server_name,
        database_name,
        subscription_id: subscription.id,
        subscription_type: subscription.subscription_type,
        created_at,
        dropped_at,
        slo_history,
        size_trace: SizeTrace::new(samples),
        utilization_trace,
        elastic_pool,
        is_internal: subscription.is_internal,
    }
}

/// Drops history entries that collide on the same timestamp, keeping
/// the last (`SizeTrace`/`slo_at` need strictly ordered times).
fn dedup_slo_times(history: &mut Vec<SloChange>) {
    history.dedup_by(|b, a| {
        if a.at == b.at {
            a.slo_index = b.slo_index;
            true
        } else {
            false
        }
    });
}

/// Knuth Poisson sampler (small means only).
fn sample_poisson(mean: f64, rng: &mut SmallRng) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 200 {
            return k; // numerical guard; unreachable for our means
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::SLOS;
    use crate::region::RegionConfig;

    fn small_fleet(seed: u64) -> Fleet {
        Fleet::generate(FleetConfig::new(
            RegionConfig::region_1().scaled(0.05),
            seed,
        ))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_fleet(42);
        let b = small_fleet(42);
        assert_eq!(a.databases.len(), b.databases.len());
        assert_eq!(a.databases[0], b.databases[0]);
        assert_eq!(
            a.databases[a.databases.len() / 2],
            b.databases[b.databases.len() / 2]
        );
    }

    #[test]
    fn seeds_change_the_fleet() {
        let a = small_fleet(1);
        let b = small_fleet(2);
        assert_ne!(a.databases.len(), 0);
        // Same config, different seed: essentially impossible to match.
        assert!(a.databases.len() != b.databases.len() || a.databases[0] != b.databases[0]);
    }

    #[test]
    fn creations_are_inside_window() {
        let fleet = small_fleet(3);
        let start = fleet.window_start();
        let end = fleet.window_end();
        for db in &fleet.databases {
            assert!(db.created_at >= start && db.created_at < end + Duration::days(1));
            if let Some(d) = db.dropped_at {
                assert!(d > db.created_at, "drop before creation");
                assert!(d <= end, "unobservable drop leaked into the record");
            }
        }
    }

    #[test]
    fn databases_sorted_by_creation() {
        let fleet = small_fleet(4);
        for w in fleet.databases.windows(2) {
            assert!(w[0].created_at <= w[1].created_at);
        }
    }

    #[test]
    fn slo_history_is_ordered_and_nonempty() {
        let fleet = small_fleet(5);
        for db in &fleet.databases {
            assert!(!db.slo_history.is_empty());
            assert_eq!(db.slo_history[0].at, db.created_at);
            for w in db.slo_history.windows(2) {
                assert!(w[0].at < w[1].at, "unsorted or duplicate SLO times");
            }
        }
    }

    #[test]
    fn slo_indices_valid_and_first_sample_at_creation() {
        let fleet = small_fleet(6);
        for db in &fleet.databases {
            for c in &db.slo_history {
                assert!(c.slo_index < SLOS.len());
            }
            assert_eq!(db.size_trace.samples()[0].0, Duration::seconds(0));
            assert!(db.size_trace.initial_size_mb() >= 1.0);
        }
    }

    #[test]
    fn subscription_lookup_round_trips() {
        let fleet = small_fleet(7);
        for db in fleet.databases.iter().take(100) {
            let sub = fleet.subscription(db.subscription_id);
            assert_eq!(sub.id, db.subscription_id);
            assert!(sub.server_names.contains(&db.server_name));
            assert_eq!(sub.subscription_type, db.subscription_type);
        }
    }

    #[test]
    fn cyclers_produce_many_databases() {
        let fleet = small_fleet(8);
        let cycler_dbs = fleet
            .databases
            .iter()
            .filter(|d| fleet.subscription(d.subscription_id).archetype == Archetype::CiCdCycler)
            .count();
        let cycler_subs = fleet
            .subscriptions
            .iter()
            .filter(|s| s.archetype == Archetype::CiCdCycler)
            .count();
        if cycler_subs > 0 {
            assert!(cycler_dbs >= 25 * cycler_subs);
        }
    }

    #[test]
    fn poisson_sampler_mean() {
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 20_000;
        let total: usize = (0..n).map(|_| sample_poisson(3.0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
    }
}
