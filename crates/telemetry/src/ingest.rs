//! Telemetry ingestion: rebuilding database records from event streams.
//!
//! The paper's pipeline starts from "telemetry that is emitted from
//! each unique database" (§2); the study tables are views materialized
//! from that stream. This module is that materializer: it folds a
//! time-ordered [`TelemetryEvent`] stream back into
//! [`DatabaseRecord`]s. Round-trip tests
//! (`reconstruct(of_fleet(f)) == f.databases`) pin that the stream is a
//! complete, faithful representation of the simulated service.

use crate::catalog::SloCatalog;
use crate::database::{DatabaseRecord, SloChange};
use crate::events::{EventStream, TelemetryEvent};
use crate::sizetrace::SizeTrace;
use crate::utilization::UtilizationTrace;
use simtime::Timestamp;
use std::collections::BTreeMap;

/// Errors from ingesting a telemetry stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// An event referenced a database with no preceding `Created`.
    OrphanEvent {
        /// The database id.
        db_id: u64,
        /// Short description of the event kind.
        kind: &'static str,
    },
    /// A second `Created` arrived for the same id.
    DuplicateCreate {
        /// The database id.
        db_id: u64,
    },
    /// An SLO name in the stream is not in the catalog.
    UnknownSlo {
        /// The database id.
        db_id: u64,
        /// The unknown name.
        name: String,
    },
    /// A database had no telemetry samples at all (streams always carry
    /// the creation-time report).
    MissingSamples {
        /// The database id.
        db_id: u64,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::OrphanEvent { db_id, kind } => {
                write!(f, "{kind} event for database {db_id} before its creation")
            }
            IngestError::DuplicateCreate { db_id } => {
                write!(f, "duplicate create for database {db_id}")
            }
            IngestError::UnknownSlo { db_id, name } => {
                write!(f, "unknown SLO {name} for database {db_id}")
            }
            IngestError::MissingSamples { db_id } => {
                write!(f, "database {db_id} has no telemetry samples")
            }
        }
    }
}

impl std::error::Error for IngestError {}

#[derive(Debug)]
struct Partial {
    record_seed: DatabaseRecord,
    sizes: Vec<(simtime::Duration, f64)>,
    utilizations: Vec<(simtime::Duration, f64)>,
}

/// Folds a time-ordered stream into records, sorted by
/// `(created_at, id)` like [`crate::Fleet::generate`]'s output.
pub fn reconstruct_records(stream: &EventStream) -> Result<Vec<DatabaseRecord>, IngestError> {
    let mut partials: BTreeMap<u64, Partial> = BTreeMap::new();

    for (at, event) in stream.events() {
        match event {
            TelemetryEvent::Created {
                db_id,
                subscription,
                subscription_type,
                region,
                server_name,
                database_name,
                edition: _,
                slo,
                elastic_pool,
                is_internal,
            } => {
                if partials.contains_key(db_id) {
                    return Err(IngestError::DuplicateCreate { db_id: *db_id });
                }
                let slo_index =
                    SloCatalog::index_of(slo).ok_or_else(|| IngestError::UnknownSlo {
                        db_id: *db_id,
                        name: slo.to_string(),
                    })?;
                partials.insert(
                    *db_id,
                    Partial {
                        record_seed: DatabaseRecord {
                            id: *db_id,
                            region: *region,
                            server_name: server_name.clone(),
                            database_name: database_name.clone(),
                            subscription_id: *subscription,
                            subscription_type: *subscription_type,
                            created_at: *at,
                            dropped_at: None,
                            slo_history: vec![SloChange {
                                at: *at,
                                slo_index,
                            }],
                            // Placeholder traces; replaced at finish.
                            size_trace: SizeTrace::new(vec![(
                                simtime::Duration::seconds(0),
                                0.0,
                            )]),
                            utilization_trace: UtilizationTrace::new(vec![(
                                simtime::Duration::seconds(0),
                                0.0,
                            )]),
                            elastic_pool: *elastic_pool,
                            is_internal: *is_internal,
                        },
                        sizes: Vec::new(),
                        utilizations: Vec::new(),
                    },
                );
            }
            TelemetryEvent::SloChanged { db_id, slo, .. } => {
                let partial = partials.get_mut(db_id).ok_or(IngestError::OrphanEvent {
                    db_id: *db_id,
                    kind: "slo-change",
                })?;
                let slo_index =
                    SloCatalog::index_of(slo).ok_or_else(|| IngestError::UnknownSlo {
                        db_id: *db_id,
                        name: slo.to_string(),
                    })?;
                partial.record_seed.slo_history.push(SloChange {
                    at: *at,
                    slo_index,
                });
            }
            TelemetryEvent::SizeSample { db_id, size_mb } => {
                let partial = partials.get_mut(db_id).ok_or(IngestError::OrphanEvent {
                    db_id: *db_id,
                    kind: "size-sample",
                })?;
                let offset = *at - partial.record_seed.created_at;
                partial.sizes.push((offset, *size_mb));
            }
            TelemetryEvent::UtilizationSample { db_id, dtu_percent } => {
                let partial = partials.get_mut(db_id).ok_or(IngestError::OrphanEvent {
                    db_id: *db_id,
                    kind: "utilization-sample",
                })?;
                let offset = *at - partial.record_seed.created_at;
                partial.utilizations.push((offset, *dtu_percent));
            }
            TelemetryEvent::Dropped { db_id } => {
                let partial = partials.get_mut(db_id).ok_or(IngestError::OrphanEvent {
                    db_id: *db_id,
                    kind: "drop",
                })?;
                partial.record_seed.dropped_at = Some(*at);
            }
        }
    }

    let mut records = Vec::with_capacity(partials.len());
    for (db_id, partial) in partials {
        if partial.sizes.is_empty() || partial.utilizations.is_empty() {
            return Err(IngestError::MissingSamples { db_id });
        }
        let mut record = partial.record_seed;
        record.size_trace = SizeTrace::new(partial.sizes);
        record.utilization_trace = UtilizationTrace::new(partial.utilizations);
        records.push(record);
    }
    records.sort_by_key(|r| (r.created_at, r.id));
    Ok(records)
}

/// Timestamp of the last event in the stream, if any — the natural
/// observation horizon of an ingested dataset.
pub fn stream_horizon(stream: &EventStream) -> Option<Timestamp> {
    stream.events().last().map(|(t, _)| *t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{Fleet, FleetConfig};
    use crate::region::RegionConfig;

    fn fleet() -> Fleet {
        Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.02), 21))
    }

    #[test]
    fn roundtrip_reconstructs_every_record_exactly() {
        let f = fleet();
        let stream = EventStream::of_fleet(&f);
        let records = reconstruct_records(&stream).unwrap();
        assert_eq!(records, f.databases);
    }

    #[test]
    fn single_database_roundtrip() {
        let f = fleet();
        let db = f.databases.iter().find(|d| d.changed_edition()).unwrap_or(&f.databases[0]);
        let stream = EventStream::of_database(db);
        let records = reconstruct_records(&stream).unwrap();
        assert_eq!(records, vec![db.clone()]);
    }

    #[test]
    fn orphan_events_are_rejected() {
        let f = fleet();
        let db = &f.databases[0];
        let full = EventStream::of_database(db);
        // Drop the Created event.
        let mut events: Vec<_> = full.events().to_vec();
        events.remove(0);
        let stream = EventStream::from_events(events);
        let err = reconstruct_records(&stream).unwrap_err();
        assert!(matches!(err, IngestError::OrphanEvent { .. }), "{err}");
    }

    #[test]
    fn duplicate_create_rejected() {
        let f = fleet();
        let db = &f.databases[0];
        let full = EventStream::of_database(db);
        let mut events: Vec<_> = full.events().to_vec();
        let create = events[0].clone();
        events.push(create);
        let stream = EventStream::from_events(events);
        let err = reconstruct_records(&stream).unwrap_err();
        assert_eq!(err, IngestError::DuplicateCreate { db_id: db.id });
    }

    #[test]
    fn horizon_is_last_event() {
        let f = fleet();
        let stream = EventStream::of_fleet(&f);
        let horizon = stream_horizon(&stream).unwrap();
        assert_eq!(horizon, stream.events().last().unwrap().0);
        assert!(stream_horizon(&EventStream::from_events(Vec::new())).is_none());
    }
}
