//! Telemetry ingestion: rebuilding database records from event streams.
//!
//! The paper's pipeline starts from "telemetry that is emitted from
//! each unique database" (§2); the study tables are views materialized
//! from that stream. This module is that materializer, in two modes:
//!
//! * [`reconstruct_records`] — the strict path. It folds a
//!   time-ordered [`TelemetryEvent`] stream back into
//!   [`DatabaseRecord`]s and rejects the first malformed event it
//!   meets. Round-trip tests (`reconstruct(of_fleet(f)) ==
//!   f.databases`) pin that the stream is a complete, faithful
//!   representation of the simulated service.
//! * [`reconstruct_records_lenient`] — the recovery path. Production
//!   telemetry is never pristine (events are dropped, duplicated and
//!   reordered in transit; see [`crate::faults`]), so this path
//!   repairs what it can, quarantines databases it cannot, and never
//!   aborts. An [`IngestReport`] accounts for every repair and
//!   quarantine so degradation is measurable rather than silent.

use crate::catalog::SloCatalog;
use crate::database::{DatabaseRecord, SloChange};
use crate::events::{event_rank, EventStream, TelemetryEvent};
use crate::sizetrace::SizeTrace;
use crate::utilization::UtilizationTrace;
use simtime::Timestamp;
use std::collections::{BTreeMap, BTreeSet};

/// Errors from ingesting a telemetry stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// An event referenced a database with no preceding `Created`.
    OrphanEvent {
        /// The database id.
        db_id: u64,
        /// Short description of the event kind.
        kind: &'static str,
    },
    /// A second `Created` arrived for the same id.
    DuplicateCreate {
        /// The database id.
        db_id: u64,
    },
    /// A second `Dropped` arrived for the same id.
    DuplicateDrop {
        /// The database id.
        db_id: u64,
    },
    /// A size or utilization sample arrived after the database's
    /// `Dropped` event.
    SampleAfterDrop {
        /// The database id.
        db_id: u64,
        /// Short description of the sample kind.
        kind: &'static str,
    },
    /// A sample's offset did not advance past the previous sample of
    /// the same kind.
    NonMonotonicSample {
        /// The database id.
        db_id: u64,
        /// Short description of the sample kind.
        kind: &'static str,
    },
    /// A sample carried a non-finite or out-of-range value.
    InvalidSample {
        /// The database id.
        db_id: u64,
        /// Short description of the sample kind.
        kind: &'static str,
    },
    /// An SLO name in the stream is not in the catalog.
    UnknownSlo {
        /// The database id.
        db_id: u64,
        /// The unknown name.
        name: String,
    },
    /// A database had no telemetry samples at all (streams always carry
    /// the creation-time report).
    MissingSamples {
        /// The database id.
        db_id: u64,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::OrphanEvent { db_id, kind } => {
                write!(f, "{kind} event for database {db_id} before its creation")
            }
            IngestError::DuplicateCreate { db_id } => {
                write!(f, "duplicate create for database {db_id}")
            }
            IngestError::DuplicateDrop { db_id } => {
                write!(f, "duplicate drop for database {db_id}")
            }
            IngestError::SampleAfterDrop { db_id, kind } => {
                write!(f, "{kind} for database {db_id} after its drop")
            }
            IngestError::NonMonotonicSample { db_id, kind } => {
                write!(f, "non-monotonic {kind} offsets for database {db_id}")
            }
            IngestError::InvalidSample { db_id, kind } => {
                write!(f, "invalid {kind} value for database {db_id}")
            }
            IngestError::UnknownSlo { db_id, name } => {
                write!(f, "unknown SLO {name} for database {db_id}")
            }
            IngestError::MissingSamples { db_id } => {
                write!(f, "database {db_id} has no telemetry samples")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// True for a finite size value a [`SizeTrace`] accepts.
fn size_value_ok(v: f64) -> bool {
    v.is_finite() && v >= 0.0
}

/// True for a finite utilization value a [`UtilizationTrace`] accepts.
fn utilization_value_ok(v: f64) -> bool {
    v.is_finite() && (0.0..=100.0).contains(&v)
}

#[derive(Debug)]
struct Partial {
    record_seed: DatabaseRecord,
    sizes: Vec<(simtime::Duration, f64)>,
    utilizations: Vec<(simtime::Duration, f64)>,
}

impl Partial {
    #[allow(clippy::too_many_arguments)] // mirrors the Created event's fields
    fn new(
        at: Timestamp,
        db_id: u64,
        subscription: crate::subscription::SubscriptionId,
        subscription_type: crate::subscription::SubscriptionType,
        region: crate::region::RegionId,
        server_name: &str,
        database_name: &str,
        slo_index: usize,
        elastic_pool: Option<u32>,
        is_internal: bool,
    ) -> Partial {
        Partial {
            record_seed: DatabaseRecord {
                id: db_id,
                region,
                server_name: server_name.to_string(),
                database_name: database_name.to_string(),
                subscription_id: subscription,
                subscription_type,
                created_at: at,
                dropped_at: None,
                slo_history: vec![SloChange { at, slo_index }],
                // Placeholder traces; replaced at finish.
                size_trace: SizeTrace::new(vec![(simtime::Duration::seconds(0), 0.0)]),
                utilization_trace: UtilizationTrace::new(vec![(
                    simtime::Duration::seconds(0),
                    0.0,
                )]),
                elastic_pool,
                is_internal,
            },
            sizes: Vec::new(),
            utilizations: Vec::new(),
        }
    }
}

/// Folds a time-ordered stream into records, ascending by id —
/// generation order, like [`crate::Fleet::generate`]'s output.
///
/// Strict: the first malformed event aborts ingestion with the
/// matching [`IngestError`]. Use [`reconstruct_records_lenient`] for
/// degraded streams.
pub fn reconstruct_records(stream: &EventStream) -> Result<Vec<DatabaseRecord>, IngestError> {
    let mut partials: BTreeMap<u64, Partial> = BTreeMap::new();

    for (at, event) in stream.events() {
        match event {
            TelemetryEvent::Created {
                db_id,
                subscription,
                subscription_type,
                region,
                server_name,
                database_name,
                edition: _,
                slo,
                elastic_pool,
                is_internal,
            } => {
                if partials.contains_key(db_id) {
                    return Err(IngestError::DuplicateCreate { db_id: *db_id });
                }
                let slo_index =
                    SloCatalog::index_of(slo).ok_or_else(|| IngestError::UnknownSlo {
                        db_id: *db_id,
                        name: slo.to_string(),
                    })?;
                partials.insert(
                    *db_id,
                    Partial::new(
                        *at,
                        *db_id,
                        *subscription,
                        *subscription_type,
                        *region,
                        server_name,
                        database_name,
                        slo_index,
                        *elastic_pool,
                        *is_internal,
                    ),
                );
            }
            TelemetryEvent::SloChanged { db_id, slo, .. } => {
                let partial = partials.get_mut(db_id).ok_or(IngestError::OrphanEvent {
                    db_id: *db_id,
                    kind: "slo-change",
                })?;
                let slo_index =
                    SloCatalog::index_of(slo).ok_or_else(|| IngestError::UnknownSlo {
                        db_id: *db_id,
                        name: slo.to_string(),
                    })?;
                partial
                    .record_seed
                    .slo_history
                    .push(SloChange { at: *at, slo_index });
            }
            TelemetryEvent::SizeSample { db_id, size_mb } => {
                let partial = partials.get_mut(db_id).ok_or(IngestError::OrphanEvent {
                    db_id: *db_id,
                    kind: "size-sample",
                })?;
                if partial.record_seed.dropped_at.is_some() {
                    return Err(IngestError::SampleAfterDrop {
                        db_id: *db_id,
                        kind: "size-sample",
                    });
                }
                if !size_value_ok(*size_mb) {
                    return Err(IngestError::InvalidSample {
                        db_id: *db_id,
                        kind: "size-sample",
                    });
                }
                let offset = *at - partial.record_seed.created_at;
                if let Some(&(last, _)) = partial.sizes.last() {
                    if offset <= last {
                        return Err(IngestError::NonMonotonicSample {
                            db_id: *db_id,
                            kind: "size-sample",
                        });
                    }
                }
                partial.sizes.push((offset, *size_mb));
            }
            TelemetryEvent::UtilizationSample { db_id, dtu_percent } => {
                let partial = partials.get_mut(db_id).ok_or(IngestError::OrphanEvent {
                    db_id: *db_id,
                    kind: "utilization-sample",
                })?;
                if partial.record_seed.dropped_at.is_some() {
                    return Err(IngestError::SampleAfterDrop {
                        db_id: *db_id,
                        kind: "utilization-sample",
                    });
                }
                if !utilization_value_ok(*dtu_percent) {
                    return Err(IngestError::InvalidSample {
                        db_id: *db_id,
                        kind: "utilization-sample",
                    });
                }
                let offset = *at - partial.record_seed.created_at;
                if let Some(&(last, _)) = partial.utilizations.last() {
                    if offset <= last {
                        return Err(IngestError::NonMonotonicSample {
                            db_id: *db_id,
                            kind: "utilization-sample",
                        });
                    }
                }
                partial.utilizations.push((offset, *dtu_percent));
            }
            TelemetryEvent::Dropped { db_id } => {
                let partial = partials.get_mut(db_id).ok_or(IngestError::OrphanEvent {
                    db_id: *db_id,
                    kind: "drop",
                })?;
                if partial.record_seed.dropped_at.is_some() {
                    return Err(IngestError::DuplicateDrop { db_id: *db_id });
                }
                partial.record_seed.dropped_at = Some(*at);
            }
        }
    }

    // BTreeMap iteration yields ascending ids — generation order.
    let mut records = Vec::with_capacity(partials.len());
    for (db_id, partial) in partials {
        if partial.sizes.is_empty() || partial.utilizations.is_empty() {
            return Err(IngestError::MissingSamples { db_id });
        }
        let mut record = partial.record_seed;
        record.size_trace = SizeTrace::new(partial.sizes);
        record.utilization_trace = UtilizationTrace::new(partial.utilizations);
        records.push(record);
    }
    Ok(records)
}

/// Knobs controlling [`reconstruct_records_lenient`]. The default
/// enables every repair, which is what the degradation sweep and the
/// recovery tests exercise; individual repairs can be switched off to
/// measure their contribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Re-sort arrivals into canonical `(time, rank)` order before
    /// folding. Off, events are folded in arrival order and anything
    /// arriving before its creation counts as an orphan.
    pub resort: bool,
    /// Drop exact duplicates (second `Created`, repeated samples at
    /// the same offset, repeated `Dropped`, repeated SLO changes).
    pub dedup: bool,
    /// When one trace lost every sample but the other survived,
    /// synthesize the missing creation-time sample `(0, 0.0)` instead
    /// of quarantining the database.
    pub synthesize_missing_samples: bool,
    /// Discard samples and SLO changes that arrive after the
    /// database's `Dropped` event instead of aborting.
    pub discard_post_drop: bool,
    /// Clamp finite out-of-range sample values into their domain
    /// (sizes to `[0, ∞)`, utilization to `[0, 100]`); non-finite
    /// values are always discarded.
    pub clamp_out_of_range: bool,
    /// Repair a creation event whose SLO is not in the catalog by
    /// substituting the entry SLO of its edition. Off, such databases
    /// are quarantined.
    pub repair_unknown_creation_slo: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            resort: true,
            dedup: true,
            synthesize_missing_samples: true,
            discard_post_drop: true,
            clamp_out_of_range: true,
            repair_unknown_creation_slo: true,
        }
    }
}

/// Per-kind tallies of repairs applied by the lenient path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RepairCounts {
    /// Events that arrived out of time order and were re-sorted.
    pub resorted_events: usize,
    /// Exact duplicate samples / SLO changes discarded.
    pub duplicate_events: usize,
    /// Second-or-later `Created` events discarded.
    pub duplicate_creates: usize,
    /// Second-or-later `Dropped` events discarded (earliest wins).
    pub duplicate_drops: usize,
    /// Samples / SLO changes after `Dropped` discarded.
    pub post_drop_events: usize,
    /// Empty traces backfilled with a synthetic creation-time sample.
    pub synthesized_creation_samples: usize,
    /// Finite out-of-range sample values clamped into domain.
    pub clamped_samples: usize,
    /// Non-finite sample values discarded.
    pub invalid_samples_discarded: usize,
    /// Samples discarded because their offset did not advance (and
    /// they were not exact duplicates).
    pub out_of_order_samples: usize,
    /// Creation events with unknown SLOs repaired to the edition's
    /// entry SLO.
    pub repaired_creation_slos: usize,
    /// SLO-change events with unknown names discarded.
    pub dropped_unknown_slo_changes: usize,
}

impl RepairCounts {
    /// Total repairs of any kind.
    pub fn total(&self) -> usize {
        self.resorted_events
            + self.duplicate_events
            + self.duplicate_creates
            + self.duplicate_drops
            + self.post_drop_events
            + self.synthesized_creation_samples
            + self.clamped_samples
            + self.invalid_samples_discarded
            + self.out_of_order_samples
            + self.repaired_creation_slos
            + self.dropped_unknown_slo_changes
    }
}

/// Per-reason tallies of quarantines issued by the lenient path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QuarantineCounts {
    /// Events whose database never had a `Created` in the stream.
    pub orphaned_events: usize,
    /// Distinct databases quarantined for having only orphan events.
    pub orphaned_databases: usize,
    /// Databases quarantined for an unrepaired unknown creation SLO.
    pub unknown_creation_slo: usize,
    /// Databases quarantined because both traces lost every sample
    /// (or one did, with synthesis disabled).
    pub missing_samples: usize,
}

/// What the lenient path did to a stream: how much was recovered, how
/// much was repaired, and what had to be quarantined.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IngestReport {
    /// Events in the input stream.
    pub events_total: usize,
    /// Events discarded during the fold (duplicates, orphans,
    /// post-drop arrivals, events of quarantined databases).
    pub events_discarded: usize,
    /// Databases successfully reconstructed.
    pub databases_recovered: usize,
    /// Databases quarantined as unrecoverable.
    pub databases_quarantined: usize,
    /// Repair tallies.
    pub repairs: RepairCounts,
    /// Quarantine tallies.
    pub quarantines: QuarantineCounts,
    /// Ids of quarantined databases, ascending.
    pub quarantined_ids: Vec<u64>,
}

impl IngestReport {
    /// True when the stream needed no repair and nothing was
    /// quarantined — lenient ingest behaved exactly like strict.
    pub fn is_clean(&self) -> bool {
        self.events_discarded == 0
            && self.databases_quarantined == 0
            && self.repairs == RepairCounts::default()
            && self.quarantines == QuarantineCounts::default()
    }

    /// This report as `obs` counter entries, one per field. The lenient
    /// path publishes exactly these, so a `run_trace.json` section can
    /// be reconciled 1:1 against the report (the metrics-consistency
    /// test does).
    pub fn metric_entries(&self) -> [(&'static str, u64); 19] {
        let r = &self.repairs;
        let q = &self.quarantines;
        [
            ("ingest.events_total", self.events_total as u64),
            ("ingest.events_discarded", self.events_discarded as u64),
            (
                "ingest.databases_recovered",
                self.databases_recovered as u64,
            ),
            (
                "ingest.databases_quarantined",
                self.databases_quarantined as u64,
            ),
            ("ingest.repair.resorted_events", r.resorted_events as u64),
            ("ingest.repair.duplicate_events", r.duplicate_events as u64),
            (
                "ingest.repair.duplicate_creates",
                r.duplicate_creates as u64,
            ),
            ("ingest.repair.duplicate_drops", r.duplicate_drops as u64),
            ("ingest.repair.post_drop_events", r.post_drop_events as u64),
            (
                "ingest.repair.synthesized_creation_samples",
                r.synthesized_creation_samples as u64,
            ),
            ("ingest.repair.clamped_samples", r.clamped_samples as u64),
            (
                "ingest.repair.invalid_samples_discarded",
                r.invalid_samples_discarded as u64,
            ),
            (
                "ingest.repair.out_of_order_samples",
                r.out_of_order_samples as u64,
            ),
            (
                "ingest.repair.repaired_creation_slos",
                r.repaired_creation_slos as u64,
            ),
            (
                "ingest.repair.dropped_unknown_slo_changes",
                r.dropped_unknown_slo_changes as u64,
            ),
            (
                "ingest.quarantine.orphaned_events",
                q.orphaned_events as u64,
            ),
            (
                "ingest.quarantine.orphaned_databases",
                q.orphaned_databases as u64,
            ),
            (
                "ingest.quarantine.unknown_creation_slo",
                q.unknown_creation_slo as u64,
            ),
            (
                "ingest.quarantine.missing_samples",
                q.missing_samples as u64,
            ),
        ]
    }

    /// Accumulates another report's counters into this one and appends
    /// its quarantined ids. Shard reports merged in shard-index order
    /// equal the report of ingesting the concatenated stream: shards
    /// partition the id space into ascending disjoint ranges, so the
    /// appended quarantine list stays globally sorted.
    pub fn merge(&mut self, other: &IngestReport) {
        self.events_total += other.events_total;
        self.events_discarded += other.events_discarded;
        self.databases_recovered += other.databases_recovered;
        self.databases_quarantined += other.databases_quarantined;
        let r = &mut self.repairs;
        let o = &other.repairs;
        r.resorted_events += o.resorted_events;
        r.duplicate_events += o.duplicate_events;
        r.duplicate_creates += o.duplicate_creates;
        r.duplicate_drops += o.duplicate_drops;
        r.post_drop_events += o.post_drop_events;
        r.synthesized_creation_samples += o.synthesized_creation_samples;
        r.clamped_samples += o.clamped_samples;
        r.invalid_samples_discarded += o.invalid_samples_discarded;
        r.out_of_order_samples += o.out_of_order_samples;
        r.repaired_creation_slos += o.repaired_creation_slos;
        r.dropped_unknown_slo_changes += o.dropped_unknown_slo_changes;
        let q = &mut self.quarantines;
        let p = &other.quarantines;
        q.orphaned_events += p.orphaned_events;
        q.orphaned_databases += p.orphaned_databases;
        q.unknown_creation_slo += p.unknown_creation_slo;
        q.missing_samples += p.missing_samples;
        self.quarantined_ids.extend(&other.quarantined_ids);
        // Keep the id list in canonical ascending order so merging is
        // shard-visit-order insensitive: each input is sorted and the
        // inputs' id ranges may interleave arbitrarily.
        self.quarantined_ids.sort_unstable();
    }
}

/// Incremental lenient ingestion over bounded chunks of a stream.
///
/// The streaming pipeline cannot materialize a region's events, so the
/// lenient fold is exposed as a push-style consumer: feed arrival-order
/// chunks with [`LenientIngestor::push_chunk`], then call
/// [`LenientIngestor::finish`] for the records and the report.
///
/// **Chunk-boundary contract:** feeding one whole stream as a single
/// chunk and feeding it split at *database-stream boundaries* (every
/// event of a database inside one chunk — the streaming pipeline cuts
/// at subscription boundaries, which implies this) produce bitwise
/// identical records and reports. That holds because the fold is
/// per-database local, resorting is a stable per-chunk sort (equal to
/// the global stable sort restricted to any one database), and late
/// arrivals are counted against each database's own arrival clock, not
/// a global one.
#[derive(Debug)]
pub struct LenientIngestor {
    policy: RecoveryPolicy,
    report: IngestReport,
    partials: BTreeMap<u64, Partial>,
    quarantined: BTreeSet<u64>,
    orphan_dbs: BTreeSet<u64>,
    /// Per-database maximum arrival timestamp, for counting late
    /// events (`repairs.resorted_events`) chunk-invariantly.
    arrival_max: BTreeMap<u64, Timestamp>,
}

impl LenientIngestor {
    /// A fresh ingestor under `policy`.
    pub fn new(policy: RecoveryPolicy) -> LenientIngestor {
        LenientIngestor {
            policy,
            report: IngestReport::default(),
            partials: BTreeMap::new(),
            quarantined: BTreeSet::new(),
            orphan_dbs: BTreeSet::new(),
            arrival_max: BTreeMap::new(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// Folds one arrival-order chunk into the accumulated state.
    pub fn push_chunk(&mut self, stream: &EventStream) {
        let _span = obs::span!("ingest_chunk");
        let policy = self.policy;
        self.report.events_total += stream.len();

        let mut events: Vec<(Timestamp, TelemetryEvent)> = stream.events().to_vec();
        if policy.resort {
            // Count late arrivals before repairing them: an event is
            // late when something of the *same database* with a
            // strictly greater timestamp already arrived. Clean
            // streams count zero.
            for (at, event) in &events {
                match self.arrival_max.get_mut(&event.db_id()) {
                    Some(max_seen) => {
                        if *at < *max_seen {
                            self.report.repairs.resorted_events += 1;
                        } else {
                            *max_seen = *at;
                        }
                    }
                    None => {
                        self.arrival_max.insert(event.db_id(), *at);
                    }
                }
            }
            events.sort_by(|a, b| {
                a.0.cmp(&b.0)
                    .then_with(|| event_rank(&a.1).cmp(&event_rank(&b.1)))
            });
        }

        for (at, event) in &events {
            let db_id = event.db_id();
            if self.quarantined.contains(&db_id) {
                self.report.events_discarded += 1;
                continue;
            }
            match event {
                TelemetryEvent::Created {
                    db_id,
                    subscription,
                    subscription_type,
                    region,
                    server_name,
                    database_name,
                    edition,
                    slo,
                    elastic_pool,
                    is_internal,
                } => {
                    if self.partials.contains_key(db_id) {
                        self.report.repairs.duplicate_creates += 1;
                        self.report.events_discarded += 1;
                        continue;
                    }
                    let slo_index = match SloCatalog::index_of(slo) {
                        Some(i) => i,
                        None if policy.repair_unknown_creation_slo => {
                            self.report.repairs.repaired_creation_slos += 1;
                            SloCatalog::entry_slo(*edition)
                        }
                        None => {
                            self.report.quarantines.unknown_creation_slo += 1;
                            self.report.events_discarded += 1;
                            self.quarantined.insert(*db_id);
                            continue;
                        }
                    };
                    // A database that looked orphaned can be rescued by
                    // a late (reordered) creation when resorting is off.
                    self.orphan_dbs.remove(db_id);
                    self.partials.insert(
                        *db_id,
                        Partial::new(
                            *at,
                            *db_id,
                            *subscription,
                            *subscription_type,
                            *region,
                            server_name,
                            database_name,
                            slo_index,
                            *elastic_pool,
                            *is_internal,
                        ),
                    );
                }
                TelemetryEvent::SloChanged { db_id, slo, .. } => {
                    let Some(partial) = self.partials.get_mut(db_id) else {
                        self.report.quarantines.orphaned_events += 1;
                        self.report.events_discarded += 1;
                        self.orphan_dbs.insert(*db_id);
                        continue;
                    };
                    if policy.discard_post_drop && partial.record_seed.dropped_at.is_some() {
                        self.report.repairs.post_drop_events += 1;
                        self.report.events_discarded += 1;
                        continue;
                    }
                    let Some(slo_index) = SloCatalog::index_of(slo) else {
                        self.report.repairs.dropped_unknown_slo_changes += 1;
                        self.report.events_discarded += 1;
                        continue;
                    };
                    if policy.dedup {
                        let dup = partial
                            .record_seed
                            .slo_history
                            .last()
                            .is_some_and(|c| c.at == *at && c.slo_index == slo_index);
                        if dup {
                            self.report.repairs.duplicate_events += 1;
                            self.report.events_discarded += 1;
                            continue;
                        }
                    }
                    partial
                        .record_seed
                        .slo_history
                        .push(SloChange { at: *at, slo_index });
                }
                TelemetryEvent::SizeSample { db_id, size_mb } => {
                    ingest_sample_lenient(
                        &mut self.partials,
                        &mut self.orphan_dbs,
                        &mut self.report,
                        &policy,
                        *at,
                        *db_id,
                        *size_mb,
                        SampleKind::Size,
                    );
                }
                TelemetryEvent::UtilizationSample { db_id, dtu_percent } => {
                    ingest_sample_lenient(
                        &mut self.partials,
                        &mut self.orphan_dbs,
                        &mut self.report,
                        &policy,
                        *at,
                        *db_id,
                        *dtu_percent,
                        SampleKind::Utilization,
                    );
                }
                TelemetryEvent::Dropped { db_id } => {
                    let Some(partial) = self.partials.get_mut(db_id) else {
                        self.report.quarantines.orphaned_events += 1;
                        self.report.events_discarded += 1;
                        self.orphan_dbs.insert(*db_id);
                        continue;
                    };
                    match partial.record_seed.dropped_at {
                        Some(existing) => {
                            self.report.repairs.duplicate_drops += 1;
                            self.report.events_discarded += 1;
                            // Earliest drop wins even in arrival order.
                            if *at < existing {
                                partial.record_seed.dropped_at = Some(*at);
                            }
                        }
                        None => partial.record_seed.dropped_at = Some(*at),
                    }
                }
            }
        }
    }

    /// Completes ingestion: synthesizes or quarantines databases with
    /// missing traces and returns the recovered records (ascending by
    /// id — generation order) plus the accumulated report.
    pub fn finish(self) -> (Vec<DatabaseRecord>, IngestReport) {
        let _span = obs::span!("ingest");
        let LenientIngestor {
            policy,
            mut report,
            partials,
            quarantined,
            orphan_dbs,
            arrival_max: _,
        } = self;

        let mut quarantined_ids: Vec<u64> = quarantined.into_iter().collect();
        report.quarantines.orphaned_databases = orphan_dbs.len();
        quarantined_ids.extend(orphan_dbs);

        // BTreeMap iteration yields ascending ids — generation order.
        let mut records = Vec::with_capacity(partials.len());
        for (db_id, partial) in partials {
            let Partial {
                mut record_seed,
                mut sizes,
                mut utilizations,
            } = partial;
            if sizes.is_empty() || utilizations.is_empty() {
                let both_empty = sizes.is_empty() && utilizations.is_empty();
                if both_empty || !policy.synthesize_missing_samples {
                    report.quarantines.missing_samples += 1;
                    quarantined_ids.push(db_id);
                    continue;
                }
                // One trace survived; backfill the other with a neutral
                // creation-time sample so the record stays usable.
                let synth = vec![(simtime::Duration::seconds(0), 0.0)];
                if sizes.is_empty() {
                    sizes = synth;
                } else {
                    utilizations = synth;
                }
                report.repairs.synthesized_creation_samples += 1;
            }
            record_seed.size_trace = SizeTrace::new(sizes);
            record_seed.utilization_trace = UtilizationTrace::new(utilizations);
            records.push(record_seed);
        }
        quarantined_ids.sort_unstable();
        quarantined_ids.dedup();
        report.databases_recovered = records.len();
        report.databases_quarantined = quarantined_ids.len();
        report.quarantined_ids = quarantined_ids;
        if obs::enabled() {
            obs::count_many(&report.metric_entries());
            if !report.is_clean() {
                obs::info!(
                    "ingest",
                    "recovered {} databases ({} quarantined, {} repairs, {} of {} events discarded)",
                    report.databases_recovered,
                    report.databases_quarantined,
                    report.repairs.total(),
                    report.events_discarded,
                    report.events_total
                );
            }
        }
        (records, report)
    }
}

/// Folds a possibly degraded stream into as many records as can be
/// recovered under `policy`, quarantining the rest. Never fails: the
/// worst stream yields `(vec![], report)`.
///
/// On a clean, canonically ordered stream this returns exactly what
/// [`reconstruct_records`] returns, plus a report whose
/// [`IngestReport::is_clean`] holds — leniency costs nothing when
/// nothing is wrong. Equivalent to a one-chunk [`LenientIngestor`]
/// run, which is exactly what it is.
pub fn reconstruct_records_lenient(
    stream: &EventStream,
    policy: &RecoveryPolicy,
) -> (Vec<DatabaseRecord>, IngestReport) {
    let mut ingestor = LenientIngestor::new(*policy);
    ingestor.push_chunk(stream);
    ingestor.finish()
}

#[derive(Clone, Copy)]
enum SampleKind {
    Size,
    Utilization,
}

/// Shared lenient-fold logic for the two sample kinds: orphan and
/// post-drop filtering, value clamping, offset dedup / monotonicity.
#[allow(clippy::too_many_arguments)]
fn ingest_sample_lenient(
    partials: &mut BTreeMap<u64, Partial>,
    orphan_dbs: &mut BTreeSet<u64>,
    report: &mut IngestReport,
    policy: &RecoveryPolicy,
    at: Timestamp,
    db_id: u64,
    value: f64,
    kind: SampleKind,
) {
    let Some(partial) = partials.get_mut(&db_id) else {
        report.quarantines.orphaned_events += 1;
        report.events_discarded += 1;
        orphan_dbs.insert(db_id);
        return;
    };
    if policy.discard_post_drop && partial.record_seed.dropped_at.is_some() {
        report.repairs.post_drop_events += 1;
        report.events_discarded += 1;
        return;
    }
    if at < partial.record_seed.created_at {
        // Pre-creation sample (only reachable when resorting is off
        // and a reordered sample outran its creation's arrival).
        report.quarantines.orphaned_events += 1;
        report.events_discarded += 1;
        return;
    }
    if !value.is_finite() {
        report.repairs.invalid_samples_discarded += 1;
        report.events_discarded += 1;
        return;
    }
    let value = {
        let (ok, clamped) = match kind {
            SampleKind::Size => (size_value_ok(value), value.max(0.0)),
            SampleKind::Utilization => (utilization_value_ok(value), value.clamp(0.0, 100.0)),
        };
        if ok {
            value
        } else if policy.clamp_out_of_range {
            report.repairs.clamped_samples += 1;
            clamped
        } else {
            report.repairs.invalid_samples_discarded += 1;
            report.events_discarded += 1;
            return;
        }
    };
    let trace = match kind {
        SampleKind::Size => &mut partial.sizes,
        SampleKind::Utilization => &mut partial.utilizations,
    };
    let offset = at - partial.record_seed.created_at;
    if let Some(&(last, last_value)) = trace.last() {
        if offset <= last {
            if policy.dedup && offset == last && value == last_value {
                report.repairs.duplicate_events += 1;
            } else {
                report.repairs.out_of_order_samples += 1;
            }
            report.events_discarded += 1;
            return;
        }
    }
    trace.push((offset, value));
}

/// Timestamp of the last event in the stream, if any — the natural
/// observation horizon of an ingested dataset.
pub fn stream_horizon(stream: &EventStream) -> Option<Timestamp> {
    stream.events().last().map(|(t, _)| *t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{Fleet, FleetConfig};
    use crate::region::RegionConfig;

    fn fleet() -> Fleet {
        Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.02), 21))
    }

    #[test]
    fn roundtrip_reconstructs_every_record_exactly() {
        let f = fleet();
        let stream = EventStream::of_fleet(&f);
        let records = reconstruct_records(&stream).unwrap();
        assert_eq!(records, f.databases);
    }

    #[test]
    fn single_database_roundtrip() {
        let f = fleet();
        let db = f
            .databases
            .iter()
            .find(|d| d.changed_edition())
            .unwrap_or(&f.databases[0]);
        let stream = EventStream::of_database(db);
        let records = reconstruct_records(&stream).unwrap();
        assert_eq!(records, vec![db.clone()]);
    }

    #[test]
    fn orphan_events_are_rejected() {
        let f = fleet();
        let db = &f.databases[0];
        let full = EventStream::of_database(db);
        // Drop the Created event.
        let mut events: Vec<_> = full.events().to_vec();
        events.remove(0);
        let stream = EventStream::from_events(events);
        let err = reconstruct_records(&stream).unwrap_err();
        assert!(matches!(err, IngestError::OrphanEvent { .. }), "{err}");
    }

    #[test]
    fn duplicate_create_rejected() {
        let f = fleet();
        let db = &f.databases[0];
        let full = EventStream::of_database(db);
        let mut events: Vec<_> = full.events().to_vec();
        let create = events[0].clone();
        events.push(create);
        let stream = EventStream::from_events(events);
        let err = reconstruct_records(&stream).unwrap_err();
        assert_eq!(err, IngestError::DuplicateCreate { db_id: db.id });
    }

    fn dropped_db(f: &Fleet) -> &DatabaseRecord {
        f.databases
            .iter()
            .find(|d| d.dropped_at.is_some())
            .expect("some database drops")
    }

    #[test]
    fn duplicate_drop_rejected() {
        let f = fleet();
        let db = dropped_db(&f);
        let mut events: Vec<_> = EventStream::of_database(db).events().to_vec();
        events.push((
            db.dropped_at.unwrap() + simtime::Duration::days(1),
            TelemetryEvent::Dropped { db_id: db.id },
        ));
        let err = reconstruct_records(&EventStream::from_events(events)).unwrap_err();
        assert_eq!(err, IngestError::DuplicateDrop { db_id: db.id });
    }

    #[test]
    fn sample_after_drop_rejected() {
        let f = fleet();
        let db = dropped_db(&f);
        let mut events: Vec<_> = EventStream::of_database(db).events().to_vec();
        events.push((
            db.dropped_at.unwrap() + simtime::Duration::days(1),
            TelemetryEvent::SizeSample {
                db_id: db.id,
                size_mb: 10.0,
            },
        ));
        let err = reconstruct_records(&EventStream::from_events(events)).unwrap_err();
        assert_eq!(
            err,
            IngestError::SampleAfterDrop {
                db_id: db.id,
                kind: "size-sample"
            }
        );
    }

    #[test]
    fn duplicate_sample_rejected_as_non_monotonic() {
        let f = fleet();
        let db = &f.databases[0];
        let mut events: Vec<_> = EventStream::of_database(db).events().to_vec();
        let dup = events
            .iter()
            .find(|(_, e)| matches!(e, TelemetryEvent::SizeSample { .. }))
            .cloned()
            .unwrap();
        events.push(dup);
        let err = reconstruct_records(&EventStream::from_events(events)).unwrap_err();
        assert_eq!(
            err,
            IngestError::NonMonotonicSample {
                db_id: db.id,
                kind: "size-sample"
            }
        );
    }

    #[test]
    fn invalid_sample_rejected() {
        let f = fleet();
        let db = &f.databases[0];
        let mut events: Vec<_> = EventStream::of_database(db).events().to_vec();
        let last = events.last().unwrap().0;
        events.push((
            last + simtime::Duration::days(1),
            TelemetryEvent::UtilizationSample {
                db_id: db.id,
                dtu_percent: 250.0,
            },
        ));
        let err = reconstruct_records(&EventStream::from_events(events)).unwrap_err();
        assert_eq!(
            err,
            IngestError::InvalidSample {
                db_id: db.id,
                kind: "utilization-sample"
            }
        );
    }

    #[test]
    fn lenient_matches_strict_on_clean_stream() {
        let f = fleet();
        let stream = EventStream::of_fleet(&f);
        let strict = reconstruct_records(&stream).unwrap();
        let (lenient, report) = reconstruct_records_lenient(&stream, &RecoveryPolicy::default());
        assert_eq!(lenient, strict);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.events_total, stream.len());
        assert_eq!(report.databases_recovered, f.databases.len());
    }

    #[test]
    fn lenient_repairs_duplicates_and_post_drop() {
        let f = fleet();
        let db = dropped_db(&f);
        let mut events: Vec<_> = EventStream::of_database(db).events().to_vec();
        let create = events[0].clone();
        let sample = events
            .iter()
            .find(|(_, e)| matches!(e, TelemetryEvent::SizeSample { .. }))
            .cloned()
            .unwrap();
        events.push(create);
        events.push(sample);
        events.push((
            db.dropped_at.unwrap() + simtime::Duration::days(2),
            TelemetryEvent::UtilizationSample {
                db_id: db.id,
                dtu_percent: 10.0,
            },
        ));
        let stream = EventStream::from_events_unsorted(events);
        let (records, report) = reconstruct_records_lenient(&stream, &RecoveryPolicy::default());
        assert_eq!(records, vec![db.clone()]);
        assert_eq!(report.repairs.duplicate_creates, 1);
        assert_eq!(report.repairs.duplicate_events, 1);
        assert_eq!(report.repairs.post_drop_events, 1);
        assert_eq!(report.databases_quarantined, 0);
    }

    #[test]
    fn lenient_quarantines_orphans() {
        let f = fleet();
        let db = &f.databases[0];
        let mut events: Vec<_> = EventStream::of_database(db).events().to_vec();
        events.remove(0); // lose the creation
        let (records, report) = reconstruct_records_lenient(
            &EventStream::from_events_unsorted(events),
            &RecoveryPolicy::default(),
        );
        assert!(records.is_empty());
        assert_eq!(report.quarantines.orphaned_databases, 1);
        assert_eq!(report.quarantined_ids, vec![db.id]);
        assert!(report.quarantines.orphaned_events > 0);
    }

    #[test]
    fn lenient_resorts_shuffled_stream() {
        let f = fleet();
        let db = &f.databases[0];
        let mut events: Vec<_> = EventStream::of_database(db).events().to_vec();
        events.reverse();
        let (records, report) = reconstruct_records_lenient(
            &EventStream::from_events_unsorted(events),
            &RecoveryPolicy::default(),
        );
        assert_eq!(records, vec![db.clone()]);
        assert!(report.repairs.resorted_events > 0);
    }

    #[test]
    fn horizon_is_last_event() {
        let f = fleet();
        let stream = EventStream::of_fleet(&f);
        let horizon = stream_horizon(&stream).unwrap();
        assert_eq!(horizon, stream.events().last().unwrap().0);
        assert!(stream_horizon(&EventStream::from_events(Vec::new())).is_none());
    }
}
