//! A cloud-database fleet simulator emitting Azure-SQLDB-like telemetry.
//!
//! The paper analyzes five months of production telemetry from three
//! Azure SQL Database regions — data that is closed. This crate is the
//! substitution (see DESIGN.md §2): a generative model of a
//! relational-database service population that encodes the
//! *relationships* the paper reports, so every downstream analysis
//! (survival curves, lifespan prediction, confidence partitioning,
//! feature importance) exercises the same code paths it would on real
//! telemetry.
//!
//! The generative story:
//!
//! 1. A region hosts **subscriptions**, each drawn from a behaviour
//!    [`archetype`] (CI/CD cyclers, dev/test users, trial explorers,
//!    startup apps, production services, incentive riders) with a latent
//!    per-subscription longevity trait.
//! 2. Each subscription creates **databases** over a five-month window:
//!    creation times follow the archetype's automation profile (business
//!    hours vs uniform, weekend/holiday suppression), names follow its
//!    naming style, editions and service-level objectives follow its
//!    purchasing profile.
//! 3. Each database draws a **lifespan** from an archetype- and
//!    edition-conditioned mixture modulated by the subscription trait;
//!    databases alive at the window's end are right-censored.
//! 4. Databases emit **telemetry**: size samples, SLO/edition changes,
//!    and create/drop events.
//!
//! [`Census`] then applies the paper's population filters (singleton,
//! external, 2-day survival minimum) and labels lifespans as ephemeral,
//! short-lived, or long-lived.
//!
//! # Example
//!
//! ```
//! use telemetry::{Fleet, FleetConfig, RegionConfig, Census};
//!
//! let fleet = Fleet::generate(FleetConfig::new(
//!     RegionConfig::region_1().scaled(0.02),
//!     42,
//! ));
//! let census = Census::new(&fleet);
//! // Survival pairs with the paper's 2-day minimum, ready for KM.
//! let pairs = census.survival_pairs(2.0);
//! assert!(pairs.iter().all(|&(days, _)| days >= 2.0));
//! ```

pub mod archetype;
pub mod catalog;
pub mod census;
pub mod database;
pub mod events;
pub mod export;
pub mod faults;
pub mod fleet;
pub mod ingest;
pub mod names;
pub mod region;
pub mod scenario;
pub mod sizetrace;
pub mod stream;
pub mod subscription;
pub mod utilization;

pub use archetype::Archetype;
pub use catalog::{Edition, ServiceLevelObjective, SloCatalog};
pub use census::{Census, LifespanClass};
pub use database::{DatabaseRecord, SloChange};
pub use events::{EventStream, TelemetryEvent};
pub use export::{
    read_records_jsonl, write_records_jsonl, write_summary_csv, write_summary_csv_header,
    write_summary_csv_rows, ImportError,
};
pub use faults::{FaultClass, FaultInjector, FaultPlan, FaultSummary};
pub use fleet::{database_id, generate_subscription, Fleet, FleetBuilder, FleetConfig};
pub use ingest::{
    reconstruct_records, reconstruct_records_lenient, stream_horizon, IngestError, IngestReport,
    LenientIngestor, QuarantineCounts, RecoveryPolicy, RepairCounts,
};
pub use names::NameStyle;
pub use region::{RegionConfig, RegionId};
pub use scenario::{
    apply_scenario, generate_scenario_fleet, generate_scenario_subscription, ScenarioKind,
};
pub use sizetrace::SizeTrace;
pub use stream::{
    derive_seed, materialized_pipeline, merge_shards, run_region_streamed, run_shard,
    PipelineResult, ShardPlan, ShardResult,
};
pub use subscription::{Subscription, SubscriptionId, SubscriptionType};
pub use utilization::{UtilizationProfile, UtilizationTrace};
