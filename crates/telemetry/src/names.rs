//! Server and database name generation.
//!
//! The paper's second-most-predictive feature family (§5.4) is derived
//! from server/database names: automated processes produce names with
//! high distinct-character rates (GUIDs, hex suffixes), while humans
//! type word-based names with repeated characters. Each subscription
//! archetype picks a [`NameStyle`], and the feature pipeline recovers
//! the automation signal from the generated strings.

use rand::Rng;

/// Naming style of a subscription's automation (or human).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NameStyle {
    /// Hand-typed word combinations: `payroll-db`, `inventory_prod`.
    HumanWords,
    /// Human words plus an environment suffix: `orders-staging`.
    HumanWithEnv,
    /// Tool-generated with sequential counters: `ci-build-04731`.
    PrefixedSequential,
    /// GUID-like: `d3adb33f-1a2b-4c5d-8e9f-0a1b2c3d4e5f`.
    GuidLike,
    /// Random hex blobs: `a3f9c2e781d04b56`.
    HexRandom,
}

const WORDS: [&str; 48] = [
    "app",
    "data",
    "prod",
    "dev",
    "test",
    "web",
    "api",
    "core",
    "main",
    "shop",
    "store",
    "orders",
    "billing",
    "payroll",
    "crm",
    "erp",
    "sales",
    "inventory",
    "report",
    "admin",
    "portal",
    "backend",
    "service",
    "customer",
    "account",
    "user",
    "catalog",
    "finance",
    "hr",
    "legal",
    "metrics",
    "events",
    "logs",
    "cache",
    "queue",
    "jobs",
    "sync",
    "feed",
    "blog",
    "cms",
    "wiki",
    "forum",
    "game",
    "mobile",
    "iot",
    "ml",
    "etl",
    "stage",
];

const ENVS: [&str; 8] = [
    "prod", "staging", "dev", "test", "qa", "uat", "demo", "sandbox",
];

const SEPARATORS: [&str; 3] = ["-", "_", ""];

impl NameStyle {
    /// True for machine-generated styles — ground truth the simulator
    /// uses; the prediction pipeline must *recover* this from the string
    /// features alone.
    pub fn is_automated(self) -> bool {
        matches!(
            self,
            NameStyle::PrefixedSequential | NameStyle::GuidLike | NameStyle::HexRandom
        )
    }

    /// Generates one name in this style. `counter` feeds sequential
    /// styles (pass e.g. the database ordinal within the subscription).
    pub fn generate<R: Rng + ?Sized>(self, rng: &mut R, counter: u64) -> String {
        match self {
            NameStyle::HumanWords => {
                let a = WORDS[rng.gen_range(0..WORDS.len())];
                let b = WORDS[rng.gen_range(0..WORDS.len())];
                let sep = SEPARATORS[rng.gen_range(0..SEPARATORS.len())];
                if rng.gen_bool(0.3) {
                    // Some humans capitalize.
                    format!("{}{sep}{b}", capitalize(a))
                } else {
                    format!("{a}{sep}{b}")
                }
            }
            NameStyle::HumanWithEnv => {
                let a = WORDS[rng.gen_range(0..WORDS.len())];
                let env = ENVS[rng.gen_range(0..ENVS.len())];
                let sep = SEPARATORS[rng.gen_range(0..2)]; // no empty sep
                format!("{a}{sep}{env}")
            }
            NameStyle::PrefixedSequential => {
                let prefix = ["ci", "build", "tmp", "job", "auto", "run"][rng.gen_range(0..6)];
                format!("{prefix}-{:05}", counter % 100_000)
            }
            NameStyle::GuidLike => {
                let mut guid = String::with_capacity(36);
                for (i, &len) in [8usize, 4, 4, 4, 12].iter().enumerate() {
                    if i > 0 {
                        guid.push('-');
                    }
                    for _ in 0..len {
                        guid.push(hex_digit(rng));
                    }
                }
                guid
            }
            NameStyle::HexRandom => (0..16).map(|_| hex_digit(rng)).collect(),
        }
    }
}

fn hex_digit<R: Rng + ?Sized>(rng: &mut R) -> char {
    const HEX: [char; 16] = [
        '0', '1', '2', '3', '4', '5', '6', '7', '8', '9', 'a', 'b', 'c', 'd', 'e', 'f',
    ];
    HEX[rng.gen_range(0..16)]
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn distinct_rate(s: &str) -> f64 {
        let set: std::collections::HashSet<char> = s.chars().collect();
        set.len() as f64 / s.len() as f64
    }

    #[test]
    fn automation_flags() {
        assert!(!NameStyle::HumanWords.is_automated());
        assert!(!NameStyle::HumanWithEnv.is_automated());
        assert!(NameStyle::GuidLike.is_automated());
        assert!(NameStyle::HexRandom.is_automated());
        assert!(NameStyle::PrefixedSequential.is_automated());
    }

    #[test]
    fn guid_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = NameStyle::GuidLike.generate(&mut rng, 0);
        assert_eq!(g.len(), 36);
        assert_eq!(g.matches('-').count(), 4);
        assert!(g.chars().all(|c| c.is_ascii_hexdigit() || c == '-'));
    }

    #[test]
    fn sequential_uses_counter() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = NameStyle::PrefixedSequential.generate(&mut rng, 4731);
        assert!(n.ends_with("-04731"), "{n}");
    }

    #[test]
    fn human_names_contain_words() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let n = NameStyle::HumanWords.generate(&mut rng, 0).to_lowercase();
            assert!(WORDS.iter().any(|w| n.contains(w)), "no known word in {n}");
        }
    }

    #[test]
    fn automated_names_are_statistically_separable() {
        // The premise behind the paper's name features: machine-made
        // names look different. In our generator the strongest signals
        // are digit presence and length; distinct-character rate also
        // separates human words from GUID-like names (GUIDs repeat from
        // a 16-symbol alphabet over 36 characters).
        let mut rng = SmallRng::seed_from_u64(4);
        let avg = |style: NameStyle, f: &mut dyn FnMut(&str) -> f64, rng: &mut SmallRng| -> f64 {
            (0..300).map(|i| f(&style.generate(rng, i))).sum::<f64>() / 300.0
        };
        let mut has_digit = |s: &str| s.chars().any(|c| c.is_ascii_digit()) as u8 as f64;
        let human_digits = avg(NameStyle::HumanWords, &mut has_digit, &mut rng);
        let auto_digits = avg(NameStyle::PrefixedSequential, &mut has_digit, &mut rng);
        assert!(human_digits < 0.05, "human digit rate {human_digits}");
        assert!(auto_digits > 0.95, "automated digit rate {auto_digits}");

        let mut rate = |s: &str| distinct_rate(s);
        let human_rate = avg(NameStyle::HumanWords, &mut rate, &mut rng);
        let guid_rate = avg(NameStyle::GuidLike, &mut rate, &mut rng);
        assert!(
            human_rate > guid_rate + 0.1,
            "human {human_rate} vs guid {guid_rate}"
        );
    }

    #[test]
    fn deterministic_generation() {
        let a = NameStyle::HumanWords.generate(&mut SmallRng::seed_from_u64(9), 5);
        let b = NameStyle::HumanWords.generate(&mut SmallRng::seed_from_u64(9), 5);
        assert_eq!(a, b);
    }
}
