//! Region configurations.
//!
//! The paper studies "three of the largest Azure regions around the
//! world", anonymized as Region-1/2/3. Our regions differ in population
//! size, archetype mix (which shifts class balances the way the paper's
//! per-region panels differ), and holiday calendar.

use crate::archetype::Archetype;
use simtime::{CivilDate, HolidayCalendar};

/// Region identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegionId {
    /// Largest region, US-like calendar.
    Region1,
    /// Europe-like calendar.
    Region2,
    /// APAC-like calendar.
    Region3,
}

impl RegionId {
    /// All study regions.
    pub const ALL: [RegionId; 3] = [RegionId::Region1, RegionId::Region2, RegionId::Region3];
}

impl std::fmt::Display for RegionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionId::Region1 => write!(f, "Region-1"),
            RegionId::Region2 => write!(f, "Region-2"),
            RegionId::Region3 => write!(f, "Region-3"),
        }
    }
}

/// Static configuration of one simulated region.
#[derive(Debug, Clone)]
pub struct RegionConfig {
    /// Identifier.
    pub id: RegionId,
    /// Number of external subscriptions active over the window.
    pub subscription_count: usize,
    /// Archetype weights, aligned with [`Archetype::ALL`].
    pub archetype_weights: [f64; 6],
    /// Holiday calendar used to suppress human creations.
    pub holidays: HolidayCalendar,
    /// First day of the five-month observation window.
    pub window_start: CivilDate,
    /// Length of the observation window in days (five months ≈ 153).
    pub window_days: u32,
    /// Share of subscriptions that are Microsoft-internal (excluded
    /// from the study population by the census).
    pub internal_fraction: f64,
}

impl RegionConfig {
    /// The canonical Region-1 (largest; the region behind Figures 1/2).
    pub fn region_1() -> RegionConfig {
        RegionConfig {
            id: RegionId::Region1,
            subscription_count: 3_000,
            // [CiCd, DevTester, Trial, Startup, Production, Incentive]
            archetype_weights: [0.045, 0.23, 0.18, 0.19, 0.24, 0.115],
            holidays: HolidayCalendar::us_like(),
            window_start: CivilDate::new(2017, 5, 1),
            window_days: 153,
            internal_fraction: 0.06,
        }
    }

    /// The canonical Region-2 (slightly smaller, more dev/test).
    pub fn region_2() -> RegionConfig {
        RegionConfig {
            id: RegionId::Region2,
            subscription_count: 2_400,
            archetype_weights: [0.05, 0.25, 0.18, 0.18, 0.22, 0.12],
            holidays: HolidayCalendar::europe_like(),
            window_start: CivilDate::new(2017, 5, 1),
            window_days: 153,
            internal_fraction: 0.05,
        }
    }

    /// The canonical Region-3 (smallest, more trial traffic).
    pub fn region_3() -> RegionConfig {
        RegionConfig {
            id: RegionId::Region3,
            subscription_count: 1_900,
            archetype_weights: [0.045, 0.23, 0.21, 0.19, 0.21, 0.115],
            holidays: HolidayCalendar::apac_like(),
            window_start: CivilDate::new(2017, 5, 1),
            window_days: 153,
            internal_fraction: 0.05,
        }
    }

    /// Configuration for a region id.
    pub fn canonical(id: RegionId) -> RegionConfig {
        match id {
            RegionId::Region1 => RegionConfig::region_1(),
            RegionId::Region2 => RegionConfig::region_2(),
            RegionId::Region3 => RegionConfig::region_3(),
        }
    }

    /// Returns a copy scaled to `fraction` of the canonical population
    /// (used by tests and benches to keep runtimes bounded).
    pub fn scaled(mut self, fraction: f64) -> RegionConfig {
        assert!(fraction > 0.0, "fraction must be positive");
        self.subscription_count =
            ((self.subscription_count as f64 * fraction).round() as usize).max(10);
        self
    }

    /// Last day inside the observation window.
    pub fn window_end(&self) -> CivilDate {
        self.window_start.plus_days(self.window_days as i64)
    }

    /// The archetype weights zipped with archetypes.
    pub fn archetype_mix(&self) -> impl Iterator<Item = (Archetype, f64)> + '_ {
        Archetype::ALL
            .into_iter()
            .zip(self.archetype_weights.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_regions_resolve() {
        for id in RegionId::ALL {
            let cfg = RegionConfig::canonical(id);
            assert_eq!(cfg.id, id);
            assert!(cfg.subscription_count > 0);
            let total: f64 = cfg.archetype_weights.iter().sum();
            assert!((total - 1.0).abs() < 0.01, "{id}: weights sum {total}");
        }
    }

    #[test]
    fn region_sizes_descend() {
        assert!(
            RegionConfig::region_1().subscription_count
                > RegionConfig::region_2().subscription_count
        );
        assert!(
            RegionConfig::region_2().subscription_count
                > RegionConfig::region_3().subscription_count
        );
    }

    #[test]
    fn window_covers_five_months() {
        let cfg = RegionConfig::region_1();
        let end = cfg.window_end();
        assert_eq!(end, CivilDate::new(2017, 10, 1));
    }

    #[test]
    fn scaling_clamps() {
        let cfg = RegionConfig::region_1().scaled(0.001);
        assert_eq!(cfg.subscription_count, 10);
        let cfg2 = RegionConfig::region_1().scaled(0.5);
        assert_eq!(cfg2.subscription_count, 1_500);
    }

    #[test]
    fn display_names() {
        assert_eq!(RegionId::Region1.to_string(), "Region-1");
    }
}
