//! What-if scenario cohorts: deterministic transforms over generated
//! subscriptions.
//!
//! The policy layer asks questions of the form "what would the
//! provisioning decisions cost if the fleet behaved differently?" —
//! questions the paper poses operationally (free-tier incentives,
//! seasonal demand, capacity moves) but cannot answer on a fixed
//! trace. This module answers them in the simulator: a
//! [`ScenarioKind`] names a counterfactual cohort, and
//! [`apply_scenario`] rewrites one subscription's generated records
//! into that cohort.
//!
//! Scenario transforms inherit the generator's **per-subscription
//! purity**: every rewrite decision for subscription `i` draws from a
//! dedicated RNG seeded by `derive_seed(splitmix64(seed ^ salt), i)`,
//! so a scenario fleet is byte-identical whether it is produced
//! materialized, shard by shard, or one subscription at a time — the
//! same contract [`crate::stream`] holds for baseline generation, and
//! the reason policybench's deterministic artifact section is
//! invariant to the shard count.
//!
//! The three cohorts:
//!
//! * [`ScenarioKind::IncentiveCliff`] — mass churn at the free-tier
//!   boundary: Basic-edition databases that outlive day 29 are, with
//!   high probability, dropped just before day 30. Their 2-day
//!   observation prefix (and therefore their score) is untouched —
//!   only the *outcome* flips from long-lived to short-lived, so the
//!   cohort stresses exactly the misprediction legs of the policy
//!   cost model.
//! * [`ScenarioKind::SeasonalSlo`] — a seasonal SLO scaler: databases
//!   created in the mid-window season get an extra within-edition SLO
//!   upgrade inside the observation prefix. Features shift, scores
//!   shift, labels stay; the cohort moves rows across decision bands.
//! * [`ScenarioKind::MigrationWave`] — a regional capacity move: a
//!   quarter of subscriptions drop every database alive at the wave
//!   instant and recreate it immediately (same SLO, carried-over
//!   remaining lifespan). The population gains young databases whose
//!   prefix starts at the wave, shifting both scores and labels.

use crate::catalog::{Edition, SloCatalog};
use crate::database::{DatabaseRecord, SloChange};
use crate::fleet::{database_id, generate_subscription, Fleet, FleetConfig, DB_ORDINAL_BITS};
use crate::stream::{derive_seed, splitmix64};
use crate::subscription::Subscription;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simtime::{Duration, Timestamp};
use std::ops::Range;

/// Day of a database's life where the incentive cliff sits. Strictly
/// below the 30-day long-lived boundary and above the 2-day
/// observation prefix, so cliff churn flips labels without touching
/// features.
pub const INCENTIVE_CLIFF_DAYS: f64 = 29.0;

/// Probability a Basic database that outlives the cliff gets churned.
pub const INCENTIVE_CLIFF_CHURN: f64 = 0.65;

/// Season window (days into the region window) whose creations get
/// the seasonal SLO bump.
pub const SEASON_DAYS: Range<f64> = 60.0..120.0;

/// Probability a season-window database gets the SLO bump.
pub const SEASONAL_BUMP: f64 = 0.5;

/// Day of the region window the migration wave hits.
pub const MIGRATION_WAVE_DAY: f64 = 75.0;

/// Fraction of subscriptions swept up in the migration wave.
pub const MIGRATION_WAVE_SHARE: f64 = 0.25;

/// A counterfactual cohort the simulator can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// The untouched generated fleet.
    Baseline,
    /// Mass churn of Basic databases at the free-tier boundary.
    IncentiveCliff,
    /// Seasonal within-edition SLO upgrades inside the prefix.
    SeasonalSlo,
    /// A regional drop-and-recreate wave mid-window.
    MigrationWave,
}

impl ScenarioKind {
    /// Every cohort, baseline first — policybench's iteration order.
    pub const ALL: [ScenarioKind; 4] = [
        ScenarioKind::Baseline,
        ScenarioKind::IncentiveCliff,
        ScenarioKind::SeasonalSlo,
        ScenarioKind::MigrationWave,
    ];

    /// Stable label used in artifacts and reports.
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioKind::Baseline => "baseline",
            ScenarioKind::IncentiveCliff => "incentive-cliff",
            ScenarioKind::SeasonalSlo => "seasonal-slo",
            ScenarioKind::MigrationWave => "migration-wave",
        }
    }

    /// Seed salt separating this cohort's randomness from the
    /// generator's and from every other cohort's.
    fn salt(&self) -> u64 {
        match self {
            ScenarioKind::Baseline => 0,
            ScenarioKind::IncentiveCliff => 0x1CC_C11F,
            ScenarioKind::SeasonalSlo => 0x5EA_5045,
            ScenarioKind::MigrationWave => 0x3170_64D7,
        }
    }
}

/// Applies `kind`'s transform to one generated subscription's records,
/// in place. Pure in `(config.seed, kind, sub_idx, databases)`:
/// the RNG is seeded from those alone, and every rewrite decision
/// depends only on the subscription's own records.
pub fn apply_scenario(
    config: &FleetConfig,
    kind: ScenarioKind,
    sub_idx: usize,
    databases: &mut Vec<DatabaseRecord>,
) {
    if kind == ScenarioKind::Baseline || databases.is_empty() {
        return;
    }
    let mut rng = SmallRng::seed_from_u64(derive_seed(
        splitmix64(config.seed ^ kind.salt()),
        sub_idx as u64,
    ));
    let window_start = Timestamp::from_date(config.region.window_start);
    let window_end = Timestamp::from_date(config.region.window_end());
    match kind {
        ScenarioKind::Baseline => {}
        ScenarioKind::IncentiveCliff => {
            incentive_cliff(&mut rng, window_end, databases);
        }
        ScenarioKind::SeasonalSlo => {
            seasonal_slo(&mut rng, window_start, window_end, databases);
        }
        ScenarioKind::MigrationWave => {
            migration_wave(&mut rng, sub_idx, window_start, window_end, databases);
        }
    }
}

/// [`crate::fleet::generate_subscription`] followed by
/// [`apply_scenario`] — the one-call unit the sharded policy pipeline
/// drives.
pub fn generate_scenario_subscription(
    config: &FleetConfig,
    kind: ScenarioKind,
    sub_idx: usize,
) -> (Subscription, Vec<DatabaseRecord>) {
    let (subscription, mut databases) = generate_subscription(config, sub_idx);
    apply_scenario(config, kind, sub_idx, &mut databases);
    (subscription, databases)
}

/// Materializes a whole scenario fleet — the reference the sharded
/// path is checked against, mirroring [`Fleet::generate`].
pub fn generate_scenario_fleet(config: FleetConfig, kind: ScenarioKind) -> Fleet {
    let count = config.region.subscription_count;
    let mut subscriptions = Vec::with_capacity(count);
    let mut databases = Vec::new();
    for sub_idx in 0..count {
        let (subscription, records) = generate_scenario_subscription(&config, kind, sub_idx);
        databases.extend(records);
        subscriptions.push(subscription);
    }
    Fleet {
        config,
        subscriptions,
        databases,
    }
}

/// Truncates an SLO history to changes at or before `at`. The first
/// entry (the creation SLO) is always kept.
fn truncate_slo_history(db: &mut DatabaseRecord, at: Timestamp) {
    db.slo_history.retain(|c| c.at <= at);
    debug_assert!(!db.slo_history.is_empty(), "creation SLO must survive");
}

fn incentive_cliff(rng: &mut SmallRng, window_end: Timestamp, databases: &mut [DatabaseRecord]) {
    for db in databases.iter_mut() {
        if db.creation_edition() != Edition::Basic {
            continue;
        }
        let cliff_at = db.created_at + Duration::days_f64(INCENTIVE_CLIFF_DAYS);
        // Only databases whose survival past the cliff is observable
        // inside the window can churn at it.
        if cliff_at > window_end || !db.alive_at(cliff_at) {
            continue;
        }
        if !rng.gen_bool(INCENTIVE_CLIFF_CHURN) {
            continue;
        }
        // Drop inside (cliff, cliff + 0.9d): always before day 30, so
        // a database that would have been long-lived becomes
        // short-lived while its 2-day feature prefix stays untouched.
        let new_drop = cliff_at + Duration::days_f64(rng.gen::<f64>() * 0.9);
        let observed_end = db.dropped_at.unwrap_or(window_end);
        if new_drop >= observed_end || new_drop > window_end {
            continue; // churn cannot extend a life
        }
        db.dropped_at = Some(new_drop);
        truncate_slo_history(db, new_drop);
    }
}

fn seasonal_slo(
    rng: &mut SmallRng,
    window_start: Timestamp,
    window_end: Timestamp,
    databases: &mut [DatabaseRecord],
) {
    for db in databases.iter_mut() {
        let day = (db.created_at - window_start).as_days_f64();
        if !SEASON_DAYS.contains(&day) {
            continue;
        }
        if !rng.gen_bool(SEASONAL_BUMP) {
            continue;
        }
        // One rung up within the creation edition; Basic's single-rung
        // ladder has nowhere to go.
        let Some(up) = SloCatalog::neighbour(db.slo_history[0].slo_index, true) else {
            continue;
        };
        // Land the change inside the 2-day observation prefix so the
        // day-2 feature vector (and therefore the score) moves.
        let change_at = db.created_at + Duration::days_f64(0.5 + rng.gen::<f64>());
        let observed_end = db.dropped_at.unwrap_or(window_end);
        if change_at >= observed_end {
            continue;
        }
        if db.slo_history.iter().any(|c| c.at == change_at) {
            continue; // keep SLO times strictly ascending
        }
        db.slo_history.push(SloChange {
            at: change_at,
            slo_index: up,
        });
        db.slo_history.sort_by_key(|c| c.at);
    }
}

fn migration_wave(
    rng: &mut SmallRng,
    sub_idx: usize,
    window_start: Timestamp,
    window_end: Timestamp,
    databases: &mut Vec<DatabaseRecord>,
) {
    if !rng.gen_bool(MIGRATION_WAVE_SHARE) {
        return;
    }
    let wave_at = window_start + Duration::days_f64(MIGRATION_WAVE_DAY);
    let mut replacements = Vec::new();
    for db in databases.iter_mut() {
        if db.created_at >= wave_at || !db.alive_at(wave_at) {
            continue;
        }
        // The database drops within six hours of the wave and its
        // replacement is created within 15 minutes of the drop, with
        // the remaining lifespan carried over.
        let drop_at = wave_at + Duration::days_f64(rng.gen::<f64>() * 0.25);
        let recreated_at = drop_at + Duration::days_f64(rng.gen::<f64>() * 0.01);
        let observed_end = db.dropped_at.unwrap_or(window_end);
        if drop_at >= observed_end || recreated_at >= window_end {
            continue;
        }
        let carried_drop = db.dropped_at.and_then(|d| {
            let replacement_drop = recreated_at + (d - drop_at);
            (replacement_drop <= window_end).then_some(replacement_drop)
        });
        let slo_index = db.slo_at(wave_at);
        let mut replacement = db.clone();
        replacement.created_at = recreated_at;
        replacement.dropped_at = carried_drop;
        replacement.slo_history = vec![SloChange {
            at: recreated_at,
            slo_index,
        }];
        replacement.database_name = format!("{}-mig", db.database_name);
        // size/utilization samples are creation-relative offsets, so
        // the cloned traces describe the replacement's own life.
        replacements.push(replacement);

        db.dropped_at = Some(drop_at);
        truncate_slo_history(db, drop_at);
    }
    // Replacements take the next free ordinals, so ids keep ascending
    // in creation order of the extended record list.
    let base = databases.len() as u64;
    for (k, replacement) in replacements.iter_mut().enumerate() {
        let ordinal = base + k as u64;
        assert!(
            ordinal < (1 << DB_ORDINAL_BITS),
            "ordinal space exhausted by migration replacements"
        );
        replacement.id = database_id(sub_idx as u64, ordinal);
    }
    databases.extend(replacements);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::Census;
    use crate::region::RegionConfig;

    fn config(seed: u64) -> FleetConfig {
        FleetConfig::new(RegionConfig::region_1().scaled(0.05), seed)
    }

    fn scenario_fleet(kind: ScenarioKind, seed: u64) -> Fleet {
        generate_scenario_fleet(config(seed), kind)
    }

    #[test]
    fn baseline_scenario_is_the_generated_fleet() {
        let plain = Fleet::generate(config(11));
        let cohort = scenario_fleet(ScenarioKind::Baseline, 11);
        assert_eq!(plain.databases, cohort.databases);
        assert_eq!(plain.subscriptions, cohort.subscriptions);
    }

    #[test]
    fn scenarios_are_shard_invariant() {
        for kind in ScenarioKind::ALL {
            let reference = scenario_fleet(kind, 12);
            let cfg = config(12);
            let count = cfg.region.subscription_count;
            // Rebuild one subscription at a time in reverse order.
            let mut databases = Vec::new();
            for sub_idx in (0..count).rev() {
                let (_, records) = generate_scenario_subscription(&cfg, kind, sub_idx);
                databases.splice(0..0, records);
            }
            assert_eq!(databases, reference.databases, "{}", kind.label());
        }
    }

    #[test]
    fn scenario_records_keep_fleet_invariants() {
        for kind in ScenarioKind::ALL {
            let fleet = scenario_fleet(kind, 13);
            let end = fleet.window_end();
            for w in fleet.databases.windows(2) {
                assert!(w[0].id < w[1].id, "ids must ascend ({})", kind.label());
            }
            for db in &fleet.databases {
                assert_eq!(db.slo_history[0].at, db.created_at);
                for w in db.slo_history.windows(2) {
                    assert!(w[0].at < w[1].at, "SLO times must ascend");
                }
                if let Some(d) = db.dropped_at {
                    assert!(d > db.created_at && d <= end);
                }
            }
        }
    }

    #[test]
    fn incentive_cliff_flips_basic_labels_without_touching_prefixes() {
        let baseline = scenario_fleet(ScenarioKind::Baseline, 14);
        let cohort = scenario_fleet(ScenarioKind::IncentiveCliff, 14);
        assert_eq!(baseline.databases.len(), cohort.databases.len());
        let census = Census::new(&cohort);
        let mut churned = 0;
        for (before, after) in baseline.databases.iter().zip(&cohort.databases) {
            assert_eq!(before.id, after.id);
            assert_eq!(before.created_at, after.created_at);
            // Only Basic records change, and only their tail.
            if before != after {
                assert_eq!(before.creation_edition(), Edition::Basic);
                assert_eq!(before.size_trace, after.size_trace);
                let days = (after.dropped_at.unwrap() - after.created_at).as_days_f64();
                assert!(
                    (INCENTIVE_CLIFF_DAYS..30.0).contains(&days),
                    "churn must land in the cliff band, got {days}"
                );
                assert_eq!(
                    census.classify(after),
                    Some(crate::census::LifespanClass::ShortLived)
                );
                churned += 1;
            }
        }
        assert!(churned > 3, "the cliff must churn something ({churned})");
    }

    #[test]
    fn seasonal_slo_bumps_stay_in_edition_and_prefix() {
        let baseline = scenario_fleet(ScenarioKind::Baseline, 15);
        let cohort = scenario_fleet(ScenarioKind::SeasonalSlo, 15);
        let window_start = cohort.window_start();
        let mut bumped = 0;
        for (before, after) in baseline.databases.iter().zip(&cohort.databases) {
            assert_eq!(before.dropped_at, after.dropped_at, "labels must not move");
            if before != after {
                assert_eq!(after.slo_history.len(), before.slo_history.len() + 1);
                assert_eq!(before.creation_edition(), after.creation_edition());
                let day = (after.created_at - window_start).as_days_f64();
                assert!(SEASON_DAYS.contains(&day));
                let added = after
                    .slo_history
                    .iter()
                    .find(|c| !before.slo_history.contains(c))
                    .expect("one added change");
                let offset = (added.at - after.created_at).as_days_f64();
                assert!((0.5..1.5).contains(&offset), "bump at day {offset}");
                assert_eq!(added.edition(), after.creation_edition());
                bumped += 1;
            }
        }
        assert!(bumped > 3, "the season must bump something ({bumped})");
    }

    #[test]
    fn migration_wave_conserves_population_and_carries_lifespans() {
        let baseline = scenario_fleet(ScenarioKind::Baseline, 16);
        let cohort = scenario_fleet(ScenarioKind::MigrationWave, 16);
        assert!(cohort.databases.len() > baseline.databases.len());
        let wave_at = cohort.window_start() + Duration::days_f64(MIGRATION_WAVE_DAY);
        let mut migrated = 0;
        for db in &cohort.databases {
            if let Some(original) = baseline.databases.iter().find(|b| b.id == db.id) {
                if original.dropped_at != db.dropped_at {
                    // A migrated original: dropped within 6 h of the wave.
                    let drop = db.dropped_at.expect("wave drops are observed");
                    let offset = (drop - wave_at).as_days_f64();
                    assert!((0.0..0.25).contains(&offset), "drop at wave+{offset}d");
                    migrated += 1;
                }
            } else {
                // A replacement: created just after the wave with the
                // suffix name and a single-entry SLO history.
                assert!(db.database_name.ends_with("-mig"));
                assert_eq!(db.slo_history.len(), 1);
                assert!(db.created_at > wave_at);
                assert!((db.created_at - wave_at).as_days_f64() < 0.3);
            }
        }
        let replacements = cohort.databases.len() - baseline.databases.len();
        assert!(migrated > 0 && replacements > 0);
        assert!(
            replacements <= migrated,
            "every replacement pairs with a migrated original"
        );
    }

    #[test]
    fn scenario_fleets_census_cleanly() {
        for kind in ScenarioKind::ALL {
            let fleet = scenario_fleet(kind, 17);
            let census = Census::new(&fleet);
            let population = census.prediction_population(2.0);
            assert!(!population.is_empty(), "{}", kind.label());
            for &i in &population {
                // Labels must be decidable (is_long_lived must not panic).
                let _ = census.is_long_lived(&fleet.databases[i]);
            }
        }
    }
}
