//! Database size telemetry.
//!
//! Each database reports its file size periodically. The feature
//! pipeline consumes the samples inside the observation prefix (the
//! paper's first-x-days window): max/min/avg/std of absolute size and
//! the rate of change from creation to prediction time.

use simtime::Duration;

/// Periodic size samples for one database, as offsets from its creation
/// time. Samples are strictly increasing in offset.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeTrace {
    /// `(offset since creation, size in MB)` pairs, ascending.
    samples: Vec<(Duration, f64)>,
}

impl SizeTrace {
    /// Creates a trace from samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, offsets are not strictly
    /// increasing, or any size is negative/non-finite.
    pub fn new(samples: Vec<(Duration, f64)>) -> SizeTrace {
        assert!(!samples.is_empty(), "size trace needs at least one sample");
        for w in samples.windows(2) {
            assert!(
                w[1].0 > w[0].0,
                "sample offsets must be strictly increasing"
            );
        }
        for (_, size) in &samples {
            assert!(size.is_finite() && *size >= 0.0, "invalid size {size}");
        }
        SizeTrace { samples }
    }

    /// All samples.
    pub fn samples(&self) -> &[(Duration, f64)] {
        &self.samples
    }

    /// Samples with offsets `<= horizon` (the observation prefix).
    pub fn prefix(&self, horizon: Duration) -> &[(Duration, f64)] {
        let end = self
            .samples
            .partition_point(|(offset, _)| *offset <= horizon);
        &self.samples[..end]
    }

    /// Size at creation (the first sample).
    pub fn initial_size_mb(&self) -> f64 {
        self.samples[0].1
    }

    /// Last reported size at or before `horizon` (falls back to the
    /// initial size when the horizon precedes every later sample).
    pub fn size_at(&self, horizon: Duration) -> f64 {
        let prefix = self.prefix(horizon);
        prefix.last().unwrap_or(&self.samples[0]).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> SizeTrace {
        SizeTrace::new(vec![
            (Duration::hours(0), 100.0),
            (Duration::hours(6), 110.0),
            (Duration::hours(12), 120.0),
            (Duration::hours(48), 150.0),
        ])
    }

    #[test]
    fn prefix_selects_window() {
        let t = trace();
        assert_eq!(t.prefix(Duration::hours(12)).len(), 3);
        assert_eq!(t.prefix(Duration::hours(11)).len(), 2);
        assert_eq!(t.prefix(Duration::days(10)).len(), 4);
        assert_eq!(t.prefix(Duration::seconds(0)).len(), 1);
    }

    #[test]
    fn lookups() {
        let t = trace();
        assert_eq!(t.initial_size_mb(), 100.0);
        assert_eq!(t.size_at(Duration::hours(13)), 120.0);
        assert_eq!(t.size_at(Duration::days(2)), 150.0);
    }

    #[test]
    #[should_panic]
    fn rejects_unordered() {
        SizeTrace::new(vec![(Duration::hours(6), 1.0), (Duration::hours(6), 2.0)]);
    }

    #[test]
    #[should_panic]
    fn rejects_empty() {
        SizeTrace::new(vec![]);
    }
}
