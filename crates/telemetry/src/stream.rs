//! Sharded, chunked streaming over a region's fleet.
//!
//! The paper's cohorts cover hundreds of thousands of databases per
//! region — far more than the materialized `Fleet::generate` →
//! `EventStream::of_fleet` → `reconstruct_records_lenient` pipeline
//! can hold in memory at once. This module is the out-of-core version
//! of that pipeline, built on two invariants:
//!
//! * **Per-subscription purity.** [`crate::fleet::generate_subscription`]
//!   seeds subscription `i`'s RNG with [`derive_seed`]`(seed, i)`, so
//!   any subset of subscriptions can be generated independently and in
//!   any order.
//! * **Per-subscription fault scope.** Fault injection is applied to
//!   each subscription's event stream separately, so every injection
//!   decision (including reorder displacement, which depends on stream
//!   position) is a function of the subscription alone — identical for
//!   every shard count and visit order.
//!
//! A [`ShardPlan`] partitions the region's subscriptions into
//! contiguous shards; [`run_shard`] drives one shard end to end
//! (generation → faults → chunked lenient ingest), holding raw
//! telemetry for at most one chunk of subscriptions at a time. The
//! core contract, pinned by `tests/stream_equivalence.rs`: shard
//! results concatenated in shard-index order are **byte-identical** to
//! the materialized reference pipeline ([`materialized_pipeline`]) at
//! every shard count, chunk size, and shard visit order.

use crate::events::EventStream;
use crate::faults::{FaultInjector, FaultPlan, FaultSummary};
use crate::fleet::{generate_subscription, Fleet, FleetConfig};
use crate::ingest::{IngestReport, LenientIngestor, RecoveryPolicy};
use crate::subscription::Subscription;
use std::ops::Range;

/// The splitmix64 finalizer (same constants as `forest::parallel` and
/// [`crate::faults`]): a bijective avalanche mix over `u64`.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Derives the seed for work unit `index` under `base` — the same
/// two-round scheme as `forest::parallel::derive_seed`, duplicated
/// here because `telemetry` sits below `forest` in the crate graph.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    splitmix64(splitmix64(base).wrapping_add(index))
}

/// A balanced partition of a region's subscriptions into contiguous
/// shards. Shard `s` owns subscription indices `range(s)`; every
/// subscription belongs to exactly one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    subscription_count: usize,
    shard_count: usize,
}

impl ShardPlan {
    /// Partitions `subscription_count` subscriptions into `shard_count`
    /// contiguous shards (clamped to at least one, at most one shard
    /// per subscription when the population is that small).
    pub fn new(subscription_count: usize, shard_count: usize) -> ShardPlan {
        ShardPlan {
            subscription_count,
            shard_count: shard_count.clamp(1, subscription_count.max(1)),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Total subscriptions across all shards.
    pub fn subscription_count(&self) -> usize {
        self.subscription_count
    }

    /// The contiguous subscription range of shard `shard`. The first
    /// `subscription_count % shard_count` shards get one extra
    /// subscription, so sizes differ by at most one.
    pub fn range(&self, shard: usize) -> Range<usize> {
        assert!(shard < self.shard_count, "shard {shard} out of range");
        let base = self.subscription_count / self.shard_count;
        let extra = self.subscription_count % self.shard_count;
        let start = shard * base + shard.min(extra);
        let len = base + usize::from(shard < extra);
        start..start + len
    }
}

/// One shard's end-to-end result: the reconstructed shard fleet plus
/// the accounting needed for the fleet artifact's counting identities.
#[derive(Debug, Clone)]
pub struct ShardResult {
    /// Shard index within the plan.
    pub shard: usize,
    /// Shard-local fleet: the shard's subscriptions plus the records
    /// the lenient ingest *reconstructed* (not the generated ones —
    /// under faults these differ).
    pub fleet: Fleet,
    /// Databases generated for this shard before fault injection.
    pub generated_databases: usize,
    /// Generated databases that neither survived ingest nor appear in
    /// the quarantine list — their every event was lost in transport.
    /// Computed by id-set difference, so
    /// `generated = recovered + quarantined + vanished` is a real
    /// consistency check, not an identity by definition.
    pub vanished_databases: usize,
    /// Ingest accounting for this shard.
    pub report: IngestReport,
    /// Fault-injection accounting for this shard.
    pub faults: FaultSummary,
}

/// Counts generated ids that appear in neither the recovered records
/// nor the quarantine list (all three inputs ascend).
fn count_vanished(generated_ids: &[u64], recovered: &Fleet, quarantined: &[u64]) -> usize {
    generated_ids
        .iter()
        .filter(|&&id| {
            recovered
                .databases
                .binary_search_by_key(&id, |d| d.id)
                .is_err()
                && quarantined.binary_search(&id).is_err()
        })
        .count()
}

/// Runs one shard of the streaming pipeline: generates the shard's
/// subscriptions chunk by chunk (`chunk_subscriptions` whole
/// subscriptions per chunk), applies `faults` to each subscription's
/// event stream, and folds the chunks through a [`LenientIngestor`].
/// Raw telemetry never outlives its chunk; only the reconstructed
/// records and the shard's subscriptions accumulate.
pub fn run_shard(
    config: &FleetConfig,
    plan: &ShardPlan,
    shard: usize,
    chunk_subscriptions: usize,
    faults: Option<&FaultPlan>,
    policy: &RecoveryPolicy,
) -> ShardResult {
    let _span = obs::span!("stream_shard");
    let range = plan.range(shard);
    let chunk_subscriptions = chunk_subscriptions.max(1);
    let injector = faults.map(|plan| FaultInjector::new(*plan));

    let mut subscriptions: Vec<Subscription> = Vec::with_capacity(range.len());
    let mut generated_ids: Vec<u64> = Vec::new();
    let mut fault_summary = FaultSummary::default();
    let mut ingestor = LenientIngestor::new(*policy);
    let mut chunks = 0u64;

    let mut next = range.start;
    while next < range.end {
        let chunk_end = (next + chunk_subscriptions).min(range.end);
        let mut chunk_events = Vec::new();
        for sub_idx in next..chunk_end {
            let (subscription, databases) = generate_subscription(config, sub_idx);
            generated_ids.extend(databases.iter().map(|d| d.id));
            let stream = EventStream::of_databases(&databases);
            let stream = match &injector {
                Some(injector) => {
                    let (faulted, summary) = injector.inject(&stream);
                    fault_summary.absorb(&summary);
                    faulted
                }
                None => stream,
            };
            chunk_events.extend(stream.into_events());
            subscriptions.push(subscription);
        }
        ingestor.push_chunk(&EventStream::from_events_unsorted(chunk_events));
        chunks += 1;
        next = chunk_end;
    }

    let (records, report) = ingestor.finish();
    let fleet = Fleet {
        config: config.clone(),
        subscriptions,
        databases: records,
    };
    let vanished = count_vanished(&generated_ids, &fleet, &report.quarantined_ids);
    if obs::enabled() {
        obs::count_many(&[
            ("stream.shards_run", 1),
            ("stream.chunks_ingested", chunks),
            (
                "stream.subscriptions_generated",
                fleet.subscriptions.len() as u64,
            ),
            ("stream.databases_generated", generated_ids.len() as u64),
            ("stream.databases_vanished", vanished as u64),
        ]);
    }
    ShardResult {
        shard,
        fleet,
        generated_databases: generated_ids.len(),
        vanished_databases: vanished,
        report,
        faults: fault_summary,
    }
}

/// A whole region's pipeline result, shard results merged in
/// shard-index order (or the materialized reference, which has the
/// same shape with one implicit shard).
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Region fleet of reconstructed records.
    pub fleet: Fleet,
    /// Databases generated before fault injection.
    pub generated_databases: usize,
    /// Generated databases lost without a trace (see [`ShardResult`]).
    pub vanished_databases: usize,
    /// Merged ingest accounting.
    pub report: IngestReport,
    /// Merged fault accounting.
    pub faults: FaultSummary,
}

/// Merges shard results **in shard-index order** into one region
/// result, regardless of the order `results` arrives in. Because shard
/// ranges are contiguous and ids ascend with the subscription index,
/// the merged record list is globally id-ordered — identical to the
/// materialized pipeline's output.
pub fn merge_shards(config: &FleetConfig, mut results: Vec<ShardResult>) -> PipelineResult {
    results.sort_by_key(|r| r.shard);
    let mut fleet = Fleet {
        config: config.clone(),
        subscriptions: Vec::new(),
        databases: Vec::new(),
    };
    let mut report = IngestReport::default();
    let mut faults = FaultSummary::default();
    let mut generated = 0;
    let mut vanished = 0;
    for result in results {
        fleet.subscriptions.extend(result.fleet.subscriptions);
        fleet.databases.extend(result.fleet.databases);
        report.merge(&result.report);
        faults.absorb(&result.faults);
        generated += result.generated_databases;
        vanished += result.vanished_databases;
    }
    PipelineResult {
        fleet,
        generated_databases: generated,
        vanished_databases: vanished,
        report,
        faults,
    }
}

/// Runs every shard of `plan` in `visit_order` (any permutation of
/// `0..shard_count`) and merges the results. Small-scale harness for
/// the equivalence tests; large fleets should drive [`run_shard`]
/// directly and drop each shard's records after consuming them.
pub fn run_region_streamed(
    config: &FleetConfig,
    plan: &ShardPlan,
    visit_order: &[usize],
    chunk_subscriptions: usize,
    faults: Option<&FaultPlan>,
    policy: &RecoveryPolicy,
) -> PipelineResult {
    let results: Vec<ShardResult> = visit_order
        .iter()
        .map(|&shard| run_shard(config, plan, shard, chunk_subscriptions, faults, policy))
        .collect();
    merge_shards(config, results)
}

/// The materialized reference pipeline: generate the whole fleet at
/// once, build each subscription's (faulted) event stream, concatenate
/// everything into a single chunk, and ingest it in one call. The
/// streamed path is defined to match this bitwise.
pub fn materialized_pipeline(
    config: &FleetConfig,
    faults: Option<&FaultPlan>,
    policy: &RecoveryPolicy,
) -> PipelineResult {
    let generated = Fleet::generate(config.clone());
    let injector = faults.map(|plan| FaultInjector::new(*plan));
    let mut fault_summary = FaultSummary::default();

    let mut events = Vec::new();
    let mut start = 0;
    while start < generated.databases.len() {
        let sub_id = generated.databases[start].subscription_id;
        let end = generated.databases[start..]
            .iter()
            .position(|d| d.subscription_id != sub_id)
            .map_or(generated.databases.len(), |offset| start + offset);
        let stream = EventStream::of_databases(&generated.databases[start..end]);
        let stream = match &injector {
            Some(injector) => {
                let (faulted, summary) = injector.inject(&stream);
                fault_summary.absorb(&summary);
                faulted
            }
            None => stream,
        };
        events.extend(stream.into_events());
        start = end;
    }

    let mut ingestor = LenientIngestor::new(*policy);
    ingestor.push_chunk(&EventStream::from_events_unsorted(events));
    let (records, report) = ingestor.finish();

    let generated_ids: Vec<u64> = generated.databases.iter().map(|d| d.id).collect();
    let fleet = Fleet {
        config: config.clone(),
        subscriptions: generated.subscriptions,
        databases: records,
    };
    let vanished = count_vanished(&generated_ids, &fleet, &report.quarantined_ids);
    PipelineResult {
        fleet,
        generated_databases: generated_ids.len(),
        vanished_databases: vanished,
        report,
        faults: fault_summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionConfig;

    fn config() -> FleetConfig {
        FleetConfig::new(RegionConfig::region_1().scaled(0.02), 55)
    }

    #[test]
    fn splitmix_and_derive_match_forest_reference() {
        // Same reference vectors as forest::parallel's tests — the two
        // copies must never drift apart.
        assert_eq!(splitmix64(0), 0xe220a8397b1dcdaf);
        assert_eq!(splitmix64(1), 0x910a2dec89025cc1);
        for i in 0..64 {
            assert_ne!(derive_seed(2018, i), 2018);
        }
    }

    #[test]
    fn shard_plan_partitions_exactly() {
        for (subs, shards) in [(10, 3), (11, 4), (1, 8), (64, 64), (100, 1), (0, 4)] {
            let plan = ShardPlan::new(subs, shards);
            let mut covered = 0;
            let mut next_start = 0;
            for s in 0..plan.shard_count() {
                let range = plan.range(s);
                assert_eq!(range.start, next_start, "shards must be contiguous");
                next_start = range.end;
                covered += range.len();
            }
            assert_eq!(covered, subs, "{subs} subs / {shards} shards");
            assert_eq!(next_start, subs);
        }
    }

    #[test]
    fn clean_streamed_pipeline_matches_materialized() {
        let config = config();
        let reference = materialized_pipeline(&config, None, &RecoveryPolicy::default());
        assert!(reference.report.is_clean());
        assert_eq!(reference.vanished_databases, 0);
        assert_eq!(
            reference.generated_databases,
            reference.fleet.databases.len()
        );

        for shards in [1usize, 4] {
            let plan = ShardPlan::new(config.region.subscription_count, shards);
            let order: Vec<usize> = (0..plan.shard_count()).rev().collect();
            let streamed =
                run_region_streamed(&config, &plan, &order, 7, None, &RecoveryPolicy::default());
            assert_eq!(streamed.fleet.databases, reference.fleet.databases);
            assert_eq!(streamed.fleet.subscriptions, reference.fleet.subscriptions);
            assert_eq!(streamed.report, reference.report);
        }
    }

    #[test]
    fn faulted_streamed_pipeline_matches_materialized() {
        let config = config();
        let faults = FaultPlan {
            drop_size: 0.1,
            duplicate: 0.05,
            reorder: 0.1,
            corrupt_slo: 0.03,
            truncate: 0.05,
            orphan: 0.02,
            ..FaultPlan::none(9)
        };
        let policy = RecoveryPolicy::default();
        let reference = materialized_pipeline(&config, Some(&faults), &policy);
        assert!(reference.report.databases_quarantined > 0);
        assert_eq!(
            reference.generated_databases,
            reference.fleet.databases.len()
                + reference.report.databases_quarantined
                + reference.vanished_databases
        );

        let plan = ShardPlan::new(config.region.subscription_count, 5);
        let forward: Vec<usize> = (0..plan.shard_count()).collect();
        let backward: Vec<usize> = forward.iter().rev().copied().collect();
        for (order, chunk) in [(&forward, 3), (&backward, 16)] {
            let streamed =
                run_region_streamed(&config, &plan, order, chunk, Some(&faults), &policy);
            assert_eq!(streamed.fleet.databases, reference.fleet.databases);
            assert_eq!(streamed.report, reference.report);
            assert_eq!(streamed.faults, reference.faults);
            assert_eq!(streamed.vanished_databases, reference.vanished_databases);
        }
    }
}
