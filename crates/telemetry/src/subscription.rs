//! Subscriptions: the customer-side owner of databases.

use crate::archetype::Archetype;
use crate::names::NameStyle;
use crate::region::RegionId;

/// Opaque subscription identifier, unique within a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(pub u64);

/// Azure-like subscription offer types (paper §4.2 "Subscription type":
/// "trial, consumption, benefit programs, etc."). Internal Microsoft
/// subscriptions are excluded from the study population, so the
/// simulator only generates external types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubscriptionType {
    /// Free trial offer.
    Trial,
    /// Pay-as-you-go consumption.
    PayAsYouGo,
    /// Enterprise agreement.
    Enterprise,
    /// Developer-benefit program (MSDN-like).
    DevBenefit,
    /// Partner / CSP offer.
    Partner,
}

impl SubscriptionType {
    /// All external subscription types.
    pub const ALL: [SubscriptionType; 5] = [
        SubscriptionType::Trial,
        SubscriptionType::PayAsYouGo,
        SubscriptionType::Enterprise,
        SubscriptionType::DevBenefit,
        SubscriptionType::Partner,
    ];

    /// Stable index (used for one-hot features).
    pub fn index(self) -> usize {
        match self {
            SubscriptionType::Trial => 0,
            SubscriptionType::PayAsYouGo => 1,
            SubscriptionType::Enterprise => 2,
            SubscriptionType::DevBenefit => 3,
            SubscriptionType::Partner => 4,
        }
    }
}

impl std::fmt::Display for SubscriptionType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SubscriptionType::Trial => "Trial",
            SubscriptionType::PayAsYouGo => "PayAsYouGo",
            SubscriptionType::Enterprise => "Enterprise",
            SubscriptionType::DevBenefit => "DevBenefit",
            SubscriptionType::Partner => "Partner",
        };
        write!(f, "{s}")
    }
}

/// One customer subscription.
///
/// The `longevity_trait` is the latent per-customer variable that makes
/// subscription-history features the most predictive factor (paper
/// §5.4): databases of the same subscription share it, so a
/// subscription's past database lifespans carry real information about
/// its future ones.
#[derive(Debug, Clone, PartialEq)]
pub struct Subscription {
    /// Identifier.
    pub id: SubscriptionId,
    /// Hosting region.
    pub region: RegionId,
    /// Offer type.
    pub subscription_type: SubscriptionType,
    /// Behaviour archetype (latent; never exposed to features).
    pub archetype: Archetype,
    /// Latent longevity trait in `[0, 1]` (latent; never exposed).
    pub longevity_trait: f64,
    /// Naming style of this customer's tooling or habits.
    pub name_style: NameStyle,
    /// True for Microsoft-internal subscriptions (provisioned for
    /// internal users and for serving other products); the paper
    /// excludes these from the study population.
    pub is_internal: bool,
    /// Logical server names owned by this subscription.
    pub server_names: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_indices_are_dense_and_distinct() {
        let mut seen = [false; 5];
        for t in SubscriptionType::ALL {
            assert!(!seen[t.index()]);
            seen[t.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_names() {
        assert_eq!(SubscriptionType::Trial.to_string(), "Trial");
        assert_eq!(SubscriptionType::DevBenefit.to_string(), "DevBenefit");
    }
}
