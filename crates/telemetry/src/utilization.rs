//! DTU-utilization telemetry.
//!
//! The paper lists "utilization levels" first among the telemetry each
//! database emits (§2, citing the SoCC'15 Azure SQLDB telemetry paper),
//! and §2 motivates SLO elasticity with the observation that "users
//! scale down their SLOs on Fridays and scale them back up on Monday
//! morning". This module models a database's DTU-percent trace: a
//! diurnal/weekly profile per archetype with activity levels linked to
//! the latent longevity trait — an abandoned database idles before it
//! is dropped, which is usable (weak) signal for the feature pipeline.

use rand::Rng;
use simtime::{Duration, Timestamp};

/// Periodic DTU-utilization samples for one database, as offsets from
/// creation. Values are percentages in `[0, 100]`.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationTrace {
    samples: Vec<(Duration, f64)>,
}

impl UtilizationTrace {
    /// Creates a trace from samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, offsets are not strictly
    /// increasing, or any value is outside `[0, 100]`.
    pub fn new(samples: Vec<(Duration, f64)>) -> UtilizationTrace {
        assert!(!samples.is_empty(), "utilization trace needs samples");
        for w in samples.windows(2) {
            assert!(w[1].0 > w[0].0, "offsets must be strictly increasing");
        }
        for (_, v) in &samples {
            assert!(
                v.is_finite() && (0.0..=100.0).contains(v),
                "utilization {v} out of range"
            );
        }
        UtilizationTrace { samples }
    }

    /// All samples.
    pub fn samples(&self) -> &[(Duration, f64)] {
        &self.samples
    }

    /// Samples with offsets `<= horizon`.
    pub fn prefix(&self, horizon: Duration) -> &[(Duration, f64)] {
        let end = self
            .samples
            .partition_point(|(offset, _)| *offset <= horizon);
        &self.samples[..end]
    }
}

/// Parameters of the utilization generator for one database.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationProfile {
    /// Mean busy-hour utilization (percent).
    pub base_level: f64,
    /// How strongly usage follows business hours (0 = flat, 1 = fully
    /// diurnal).
    pub diurnality: f64,
    /// Multiplier applied on weekends (the Friday-scale-down customers
    /// sit near 0.2).
    pub weekend_factor: f64,
    /// Multiplicative noise half-width.
    pub noise: f64,
}

impl UtilizationProfile {
    /// Generates a trace starting at `created_at`, sampled every
    /// `step`, covering `horizon`.
    ///
    /// # Panics
    ///
    /// Panics if `step` or `horizon` is non-positive.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        created_at: Timestamp,
        horizon: Duration,
        step: Duration,
        rng: &mut R,
    ) -> UtilizationTrace {
        assert!(step.as_seconds() > 0, "step must be positive");
        assert!(horizon.as_seconds() >= 0, "horizon must be non-negative");
        let mut samples = Vec::new();
        let mut offset = Duration::seconds(0);
        loop {
            let at = created_at + offset;
            let hour = at.hour() as f64;
            // Cosine day-shape peaking at 14:00 local.
            let day_shape = 0.5 + 0.5 * ((hour - 14.0) / 24.0 * std::f64::consts::TAU).cos();
            let diurnal = 1.0 - self.diurnality + self.diurnality * day_shape;
            let weekend = if at.date().weekday().is_weekend() {
                self.weekend_factor
            } else {
                1.0
            };
            let noise = 1.0 + (rng.gen::<f64>() - 0.5) * 2.0 * self.noise;
            let value = (self.base_level * diurnal * weekend * noise).clamp(0.0, 100.0);
            samples.push((offset, value));
            offset = offset + step;
            if offset > horizon {
                break;
            }
        }
        UtilizationTrace::new(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn profile() -> UtilizationProfile {
        UtilizationProfile {
            base_level: 60.0,
            diurnality: 0.8,
            weekend_factor: 0.2,
            noise: 0.05,
        }
    }

    #[test]
    fn generates_in_range_and_ordered() {
        let mut rng = SmallRng::seed_from_u64(1);
        // A Monday.
        let start = Timestamp::from_ymd_hms(2017, 6, 5, 0, 0, 0);
        let trace = profile().generate(start, Duration::days(7), Duration::hours(6), &mut rng);
        assert!(trace.samples().len() >= 28);
        for w in trace.samples().windows(2) {
            assert!(w[1].0 > w[0].0);
        }
        assert!(trace
            .samples()
            .iter()
            .all(|(_, v)| (0.0..=100.0).contains(v)));
    }

    #[test]
    fn weekends_are_quieter() {
        let mut rng = SmallRng::seed_from_u64(2);
        let start = Timestamp::from_ymd_hms(2017, 6, 5, 0, 0, 0); // Monday
        let trace = profile().generate(start, Duration::days(14), Duration::hours(3), &mut rng);
        let (mut week_sum, mut week_n, mut wend_sum, mut wend_n) = (0.0, 0, 0.0, 0);
        for &(offset, v) in trace.samples() {
            if (start + offset).date().weekday().is_weekend() {
                wend_sum += v;
                wend_n += 1;
            } else {
                week_sum += v;
                week_n += 1;
            }
        }
        let week = week_sum / week_n as f64;
        let weekend = wend_sum / wend_n as f64;
        assert!(weekend < week * 0.5, "weekend {weekend} vs weekday {week}");
    }

    #[test]
    fn diurnal_peak_in_afternoon() {
        let mut rng = SmallRng::seed_from_u64(3);
        let start = Timestamp::from_ymd_hms(2017, 6, 5, 0, 0, 0);
        let trace = profile().generate(start, Duration::days(5), Duration::hours(1), &mut rng);
        let mean_at = |hour: u8| -> f64 {
            let vals: Vec<f64> = trace
                .samples()
                .iter()
                .filter(|&&(offset, _)| (start + offset).hour() == hour)
                .map(|&(_, v)| v)
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        assert!(mean_at(14) > mean_at(2) * 1.5);
    }

    #[test]
    fn flat_profile_is_flat() {
        let mut rng = SmallRng::seed_from_u64(4);
        let flat = UtilizationProfile {
            base_level: 30.0,
            diurnality: 0.0,
            weekend_factor: 1.0,
            noise: 0.0,
        };
        let start = Timestamp::from_ymd_hms(2017, 6, 5, 0, 0, 0);
        let trace = flat.generate(start, Duration::days(3), Duration::hours(6), &mut rng);
        assert!(trace
            .samples()
            .iter()
            .all(|&(_, v)| (v - 30.0).abs() < 1e-9));
    }

    #[test]
    fn prefix_respects_horizon() {
        let mut rng = SmallRng::seed_from_u64(5);
        let start = Timestamp::from_ymd_hms(2017, 6, 5, 0, 0, 0);
        let trace = profile().generate(start, Duration::days(4), Duration::hours(6), &mut rng);
        let prefix = trace.prefix(Duration::days(2));
        assert!(prefix.len() < trace.samples().len());
        assert!(prefix.iter().all(|(o, _)| *o <= Duration::days(2)));
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range() {
        UtilizationTrace::new(vec![(Duration::seconds(0), 120.0)]);
    }
}
