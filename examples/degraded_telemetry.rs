//! Degraded telemetry end to end: inject transport faults into a small
//! fleet's event stream, recover records through the lenient ingest
//! path, inspect the repair/quarantine report, and measure what the
//! degradation costs the §5 lifespan prediction.
//!
//! ```text
//! cargo run --release -p survdb-core --example degraded_telemetry
//! ```

use survdb::experiment::{Experiment, ExperimentConfig, GridPreset};
use telemetry::{
    reconstruct_records_lenient, Census, EventStream, FaultInjector, FaultPlan, Fleet, FleetConfig,
    RecoveryPolicy, RegionConfig,
};

fn main() {
    // 1. A small fleet emits its telemetry stream...
    let fleet = Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.12), 7));
    let stream = EventStream::of_fleet(&fleet);
    println!(
        "fleet: {} databases, {} telemetry events",
        fleet.databases.len(),
        stream.len()
    );

    // 2. ...the transport mangles it: lost samples, duplicate
    // deliveries, local reordering, a few truncated and orphaned
    // streams, the odd corrupt SLO label...
    let plan = FaultPlan {
        drop_size: 0.15,
        drop_utilization: 0.15,
        drop_dropped: 0.10,
        duplicate: 0.10,
        reorder: 0.10,
        truncate: 0.05,
        corrupt_slo: 0.05,
        orphan: 0.03,
        ..FaultPlan::none(2018)
    };
    let (degraded, faults) = FaultInjector::new(plan).inject(&stream);
    println!(
        "faults: {} dropped, {} duplicated, {} reordered, {} corrupt labels, \
         {} truncated streams, {} orphaned lifecycles",
        faults.dropped_events,
        faults.duplicated_events,
        faults.reordered_events,
        faults.corrupted_slos,
        faults.truncated_databases,
        faults.orphaned_databases
    );

    // 3. ...the lenient ingest tier recovers what it can and
    // quarantines what it cannot...
    let (records, report) = reconstruct_records_lenient(&degraded, &RecoveryPolicy::default());
    println!(
        "recovered {} / {} databases ({} quarantined: {} orphaned, {} missing samples)",
        report.databases_recovered,
        fleet.databases.len(),
        report.databases_quarantined,
        report.quarantines.orphaned_databases,
        report.quarantines.missing_samples
    );
    println!(
        "repairs: {} total ({} deduplicated, {} re-sorted, {} post-drop discarded, \
         {} creation SLOs repaired)",
        report.repairs.total(),
        report.repairs.duplicate_events
            + report.repairs.duplicate_creates
            + report.repairs.duplicate_drops,
        report.repairs.resorted_events,
        report.repairs.post_drop_events,
        report.repairs.repaired_creation_slos
    );

    // 4. ...and the §5 prediction runs on both populations to price
    // the degradation.
    let experiment = Experiment::new(ExperimentConfig {
        repetitions: 2,
        grid: GridPreset::Off,
        ..ExperimentConfig::default()
    });
    let clean = experiment
        .try_run(&Census::new(&fleet), None)
        .expect("clean population is evaluable");
    let recovered_fleet = Fleet {
        config: fleet.config.clone(),
        subscriptions: fleet.subscriptions.clone(),
        databases: records,
    };
    match experiment.try_run(&Census::new(&recovered_fleet), None) {
        Ok(degraded_result) => {
            println!(
                "prediction on clean telemetry:    accuracy {:.3} precision {:.3} recall {:.3}",
                clean.forest.accuracy, clean.forest.precision, clean.forest.recall
            );
            println!(
                "prediction on degraded telemetry: accuracy {:.3} precision {:.3} recall {:.3}",
                degraded_result.forest.accuracy,
                degraded_result.forest.precision,
                degraded_result.forest.recall
            );
            println!(
                "degradation cost: Δaccuracy {:+.3} Δprecision {:+.3} Δrecall {:+.3}",
                degraded_result.forest.accuracy - clean.forest.accuracy,
                degraded_result.forest.precision - clean.forest.precision,
                degraded_result.forest.recall - clean.forest.recall
            );
        }
        Err(e) => println!("degraded population not evaluable: {e}"),
    }
}
