//! The §4–§5 prediction pipeline on one region: per-edition random
//! forests vs the weighted-random baseline, confidence partitioning,
//! KM validation of the predicted groups, and the feature-importance
//! ranking.
//!
//! ```text
//! cargo run --release -p survdb-core --example lifespan_prediction
//! ```

use survdb::experiment::{Experiment, ExperimentConfig, GridPreset};
use survdb::report::{ascii_km_series, p_value_cell, subgroup_block};
use survdb::study::{Study, StudyConfig};
use telemetry::{Edition, RegionId};

fn main() {
    let study = Study::load_region(
        StudyConfig {
            scale: 0.4,
            seed: 811,
        },
        RegionId::Region1,
    );
    let census = study.census(RegionId::Region1);
    let experiment = Experiment::new(ExperimentConfig {
        repetitions: 3,
        grid: GridPreset::Light,
        ..ExperimentConfig::default()
    });

    println!("predicting: after x = 2 observed days, will the database live y > 30 days?\n");

    for edition in Edition::ALL {
        let result = experiment.run(&census, Some(edition));
        println!("{}", subgroup_block(&result));

        if edition == Edition::Standard {
            println!("KM curves of the predicted groups (whole population):");
            println!(
                "{}",
                ascii_km_series(
                    &[
                        &result.whole_grouping.long_curve,
                        &result.whole_grouping.short_curve
                    ],
                    72,
                    14
                )
            );
            println!(
                "separation significance: whole {}  confident {}  uncertain {}\n",
                p_value_cell(result.whole_grouping.logrank_p),
                p_value_cell(result.confident_grouping.logrank_p),
                p_value_cell(result.uncertain_grouping.logrank_p),
            );
            println!("top predictive features:");
            for (name, importance) in result.importances.iter().take(10) {
                println!("  {name:<28} {importance:.4}");
            }
            println!();
        }
    }

    println!(
        "reading guide: 'confident' rows should dominate 'all'; 'uncertain' rows fall toward\n\
         the baseline and their KM separation is often insignificant — that is the paper's\n\
         §5.3 result, and the basis for routing uncertain databases to a designated pool."
    );
}
