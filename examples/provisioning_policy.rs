//! The §3.1 motivation, end to end: train a lifespan classifier, bucket
//! every incoming database as short / long / uncertain, and compare a
//! longevity-guided placement policy against a longevity-agnostic one
//! on wasted update disruptions and wasted load-balancer moves.
//!
//! ```text
//! cargo run --release -p survdb-core --example provisioning_policy
//! ```

use features::{FeatureConfig, FeatureExtractor};
use forest::{confidence_threshold, RandomForest, RandomForestParams};
use std::collections::HashMap;
use survdb::provisioning::{
    simulate, PlacementPolicy, PredictedLongevity, ProvisioningConfig, ProvisioningOutcome,
};
use survdb::study::{Study, StudyConfig};
use telemetry::RegionId;

fn main() {
    let study = Study::load_region(
        StudyConfig {
            scale: 0.4,
            seed: 31,
        },
        RegionId::Region1,
    );
    let census = study.census(RegionId::Region1);

    // Train the lifespan model on the region's labeled population.
    let extractor = FeatureExtractor::new(&census, FeatureConfig::default());
    let (dataset, _) = extractor.build_dataset(&census, None);
    let model = RandomForest::fit(&dataset, &RandomForestParams::default(), 7);
    let threshold = confidence_threshold(dataset.class_fraction(1));
    println!(
        "model trained on {} databases (positive fraction {:.2}, confidence threshold {:.2})",
        dataset.len(),
        dataset.class_fraction(1),
        threshold
    );

    // Bucket every placeable database.
    let mut predictions: HashMap<usize, PredictedLongevity> = HashMap::new();
    let mut buckets = [0usize; 3];
    for idx in census.prediction_population(2.0) {
        let db = &census.fleet().databases[idx];
        let p = model.predict_positive_proba(&extractor.extract(&census, db));
        let bucket = PredictedLongevity::from_probability(p, threshold);
        buckets[match bucket {
            PredictedLongevity::Short => 0,
            PredictedLongevity::Long => 1,
            PredictedLongevity::Uncertain => 2,
        }] += 1;
        predictions.insert(idx, bucket);
    }
    println!(
        "buckets: {} short, {} long, {} uncertain\n",
        buckets[0], buckets[1], buckets[2]
    );

    // Simulate both policies against the actual drop times.
    let config = ProvisioningConfig::default();
    let agnostic = simulate(&census, &predictions, PlacementPolicy::Agnostic, &config);
    let guided = simulate(
        &census,
        &predictions,
        PlacementPolicy::LongevityGuided,
        &config,
    );

    let print_outcome = |label: &str, o: &ProvisioningOutcome| {
        println!("{label}:");
        println!("  clusters opened        {:>7}", o.clusters_opened);
        println!(
            "  update disruptions     {:>7}  (wasted on dying databases: {})",
            o.disruptions, o.wasted_disruptions
        );
        println!(
            "  load-balancer moves    {:>7}  (wasted on dying databases: {})",
            o.moves, o.wasted_moves
        );
    };
    print_outcome("longevity-agnostic policy", &agnostic);
    print_outcome("longevity-guided policy", &guided);

    let pct = |a: usize, g: usize| {
        if a == 0 {
            0.0
        } else {
            100.0 * (a as f64 - g as f64) / a as f64
        }
    };
    println!(
        "\nguided placement avoids {:.0}% of wasted disruptions and {:.0}% of wasted moves\n\
         — the operational payoff the paper's §3.1 argues for.",
        pct(agnostic.wasted_disruptions, guided.wasted_disruptions),
        pct(agnostic.wasted_moves, guided.wasted_moves)
    );
}
