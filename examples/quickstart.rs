//! Quickstart: generate a small cloud-database fleet, look at its
//! telemetry, fit a survival curve, and train a lifespan classifier.
//!
//! ```text
//! cargo run --release -p survdb-core --example quickstart
//! ```

use features::{FeatureConfig, FeatureExtractor};
use forest::{train_test_split, ConfusionMatrix, RandomForest, RandomForestParams};
use survival::{KaplanMeier, SurvivalData};
use telemetry::{Census, EventStream, Fleet, FleetConfig, RegionConfig, TelemetryEvent};

fn main() {
    // 1. Generate a (scaled-down) Region-1 population: subscriptions
    //    create and drop databases over a five-month window.
    let fleet = Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.1), 42));
    println!(
        "fleet: {} subscriptions, {} databases",
        fleet.subscriptions.len(),
        fleet.databases.len()
    );

    // 2. The raw telemetry view: a time-ordered event stream.
    let stream = EventStream::of_fleet(&fleet);
    let creates = stream.count_where(|e| matches!(e, TelemetryEvent::Created { .. }));
    let drops = stream.count_where(|e| matches!(e, TelemetryEvent::Dropped { .. }));
    let slo_changes = stream.count_where(|e| matches!(e, TelemetryEvent::SloChanged { .. }));
    println!(
        "telemetry: {} events ({creates} creates, {drops} drops, {slo_changes} SLO changes)",
        stream.len()
    );

    // 3. Survival analysis with right-censoring (paper Figure 1): how
    //    long do databases live after surviving their first 2 days?
    let census = Census::new(&fleet);
    let km = KaplanMeier::fit(&SurvivalData::from_pairs(&census.survival_pairs(2.0)));
    println!(
        "\nKaplan-Meier survival (2-day minimum, n = {}):",
        km.subjects()
    );
    for &day in &[7.0, 30.0, 60.0, 90.0, 120.0, 130.0] {
        let (lo, hi) = km.confidence_interval_at(day, 0.05);
        println!(
            "  S({day:>3.0}) = {:.3}  [95% CI {:.3}-{:.3}]",
            km.survival_at(day),
            lo,
            hi
        );
    }

    // 4. The paper's prediction task: after observing 2 days of
    //    telemetry, will this database live more than 30 days?
    let extractor = FeatureExtractor::new(&census, FeatureConfig::default());
    let (dataset, _) = extractor.build_dataset(&census, None);
    let (train, test) = train_test_split(&dataset, 0.2, 1);
    let model = RandomForest::fit(&train, &RandomForestParams::default(), 1);
    let predictions: Vec<usize> = (0..test.len())
        .map(|i| model.predict_row(&test, i))
        .collect();
    let actual: Vec<usize> = (0..test.len()).map(|i| test.label(i)).collect();
    let scores = ConfusionMatrix::from_predictions(&predictions, &actual).scores();
    println!(
        "\nlifespan prediction on {} held-out databases:",
        test.len()
    );
    println!(
        "  accuracy {:.3}, precision {:.3}, recall {:.3}",
        scores.accuracy, scores.precision, scores.recall
    );

    // 5. What drives the prediction?
    println!("\ntop predictive features:");
    for (name, importance) in model.ranked_importances().into_iter().take(8) {
        println!("  {name:<28} {importance:.4}");
    }
}
