//! The §3.3 survivability study: Observations 3.1–3.3 across the three
//! regions, with per-edition Kaplan–Meier curves and log-rank tests —
//! plus parametric lifetime fits as an extension.
//!
//! ```text
//! cargo run --release -p survdb-core --example survival_study
//! ```

use survdb::observations::ObservationReport;
use survdb::report::ascii_km_chart;
use survdb::study::{Study, StudyConfig};
use survival::{ExponentialFit, KaplanMeier, SurvivalData, WeibullFit};
use telemetry::{Edition, RegionId};

fn main() {
    let study = Study::load(StudyConfig {
        scale: 0.3,
        seed: 20_180_610,
    });
    println!(
        "study population: {} databases across 3 regions\n",
        study.database_count()
    );

    for region in RegionId::ALL {
        let census = study.census(region);
        let report = ObservationReport::compute(&census);
        println!("================ {region}");
        println!(
            "Obs 3.1: {:.1}% of subscriptions create only ephemeral databases; \
             they own {:.1}% of all databases",
            report.ephemeral_only_subscription_share * 100.0,
            report.ephemeral_only_database_share * 100.0
        );
        println!(
            "Obs 3.2: survival differs per edition (log-rank p = {:.2e}):",
            report.edition_logrank_p
        );
        for e in &report.edition_survival {
            println!(
                "  {:<8} n = {:>6}  S(30) = {:.3}  S(60) = {:.3}  S(120) = {:.3}",
                e.edition, e.n, e.s30, e.s60, e.s120
            );
        }
        println!("Obs 3.3: edition-change rates:");
        for (edition, rate) in &report.edition_change_rates {
            println!("  {edition:<8} {:.1}%", rate * 100.0);
        }
        println!("all observations hold: {}\n", report.all_hold());
    }

    // Per-edition KM curves for Region-1, as one chart.
    let census = study.census(RegionId::Region1);
    let mut curves = Vec::new();
    for edition in Edition::ALL {
        let pairs = census.survival_pairs_where(2.0, |db| db.creation_edition() == edition);
        let km = KaplanMeier::fit(&SurvivalData::from_pairs(&pairs));
        curves.push((edition.to_string(), km.sample_curve(150.0, 76)));
    }
    let chart_input: Vec<(&str, &[(f64, f64)])> = curves
        .iter()
        .map(|(label, pts)| (label.as_str(), pts.as_slice()))
        .collect();
    println!("Region-1 per-edition survival (2-day minimum):");
    println!("{}", ascii_km_chart(&chart_input, 76, 16));

    // Extension: which parametric lifetime family fits the dropped
    // population best? A Weibull shape < 1 confirms the infant-
    // mortality regime visible in the KM curve.
    let pairs = census.survival_pairs(0.0);
    let data = SurvivalData::from_pairs(&pairs);
    let weibull = WeibullFit::fit(&data);
    let exponential = ExponentialFit::fit(&data);
    println!("parametric lifetime fits (all databases, censored MLE):");
    println!(
        "  weibull      shape = {:.3}, scale = {:.1} days, AIC = {:.0}",
        weibull.shape(),
        weibull.scale(),
        weibull.aic()
    );
    println!(
        "  exponential  rate = {:.4} /day, AIC = {:.0}",
        exponential.rate(),
        exponential.aic()
    );
    println!(
        "  Weibull wins by ΔAIC = {:.0}; shape < 1 ⇒ decreasing hazard (most databases that die, die young)",
        exponential.aic() - weibull.aic()
    );
}
