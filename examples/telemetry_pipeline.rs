//! The telemetry data path end to end: generate a fleet, flatten it to
//! the raw event stream, ingest the stream back into records, export /
//! re-import the dataset as JSON Lines, and run a drift check between
//! two observation periods — the operational plumbing around the study.
//!
//! ```text
//! cargo run --release -p survdb-core --example telemetry_pipeline
//! ```

use stats::ks_two_sample;
use telemetry::{
    read_records_jsonl, reconstruct_records, write_records_jsonl, Census, EventStream, Fleet,
    FleetConfig, RegionConfig, TelemetryEvent,
};

fn main() {
    // 1. The service emits telemetry...
    let fleet = Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.08), 7));
    let stream = EventStream::of_fleet(&fleet);
    let utilization_reports =
        stream.count_where(|e| matches!(e, TelemetryEvent::UtilizationSample { .. }));
    let size_reports = stream.count_where(|e| matches!(e, TelemetryEvent::SizeSample { .. }));
    println!(
        "stream: {} events ({} size reports, {} utilization reports)",
        stream.len(),
        size_reports,
        utilization_reports
    );

    // 2. ...the ingestion tier folds the stream into records...
    let records = reconstruct_records(&stream).expect("well-formed stream");
    assert_eq!(records, fleet.databases);
    println!(
        "ingested {} records (bit-identical to the source fleet)",
        records.len()
    );

    // 3. ...which can be shipped as a dataset and read back...
    let mut jsonl = Vec::new();
    write_records_jsonl(&records, &mut jsonl).expect("write");
    let reloaded = read_records_jsonl(jsonl.as_slice()).expect("validated read");
    println!(
        "exported {:.1} MiB of JSONL, re-imported {} records",
        jsonl.len() as f64 / (1024.0 * 1024.0),
        reloaded.len()
    );

    // 4. ...and monitored for drift: do this month's lifespans look like
    //    last month's? (Kolmogorov–Smirnov on observed lifespans.)
    let census = Census::new(&fleet);
    let start = fleet.window_start();
    let month = |idx: i64| {
        let lo = start + simtime::Duration::days(30 * idx);
        let hi = start + simtime::Duration::days(30 * (idx + 1));
        census
            .survival_pairs_where(0.0, |db| db.created_at >= lo && db.created_at < hi)
            .into_iter()
            .filter(|&(_, event)| event)
            .map(|(days, _)| days)
            .collect::<Vec<f64>>()
    };
    let month_1 = month(0);
    let month_2 = month(1);
    let drift = ks_two_sample(&month_1, &month_2);
    println!(
        "lifespan drift month 1 vs month 2: KS statistic {:.3}, p = {:.3} ({})",
        drift.statistic,
        drift.p_value,
        if drift.significant_at(0.05) {
            "population shifted"
        } else {
            "stable population"
        }
    );

    // Against a deliberately different population the check fires.
    let shifted: Vec<f64> = month_1.iter().map(|d| d * 3.0 + 5.0).collect();
    let alarm = ks_two_sample(&month_1, &shifted);
    println!(
        "synthetic shift check: p = {:.2e} ({})",
        alarm.p_value,
        if alarm.significant_at(0.05) {
            "correctly flagged"
        } else {
            "missed!"
        }
    );
}
