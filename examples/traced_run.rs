//! Observability end to end: install an `obs` registry, run a small
//! prediction experiment, and print the span tree, counter table, and
//! structured event log the run produced — the same data the `repro`,
//! `trainperf`, and `faultsweep` binaries persist to
//! `artifacts/run_trace.json`.
//!
//! ```text
//! cargo run --release -p survdb-core --example traced_run
//! ```

use survdb::experiment::{Experiment, ExperimentConfig, GridPreset};
use telemetry::{Census, Fleet, FleetConfig, RegionConfig};

fn main() {
    // Every span, counter, and event below lands in this registry; the
    // guard uninstalls it when dropped. `Registry::new()` echoes only
    // Warn+ events to stderr, so the example's stdout stays clean.
    let registry = obs::Registry::new();
    let guard = registry.install();

    // A small fleet through the full §5 pipeline: census, feature
    // extraction, repeated train/test splits, forest fits.
    let fleet = Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.1), 7));
    let census = Census::new(&fleet);
    let experiment = Experiment::new(ExperimentConfig {
        repetitions: 3,
        grid: GridPreset::Off,
        ..ExperimentConfig::default()
    });
    let result = experiment.run(&census, None);
    println!(
        "experiment done: {} databases, forest accuracy {:.3}\n",
        result.population, result.forest.accuracy
    );

    drop(guard);
    let snapshot = registry.snapshot();

    // The hierarchical span tree: slash-joined paths, call counts,
    // total/mean wall time, and how many distinct threads entered each
    // span (repetitions fan out over the parallel work queue).
    println!("spans:");
    print!("{}", survdb::report::phase_table(&snapshot));

    // Typed counters flushed by the instrumented layers: tree builds,
    // node expansions, dense/sparse split scans, free-list reuse,
    // out-of-bag tallies, CV folds, feature rows.
    println!("\ncounters:");
    print!("{}", survdb::report::counter_table(&snapshot));

    // The structured event log that replaced ad-hoc stderr prints:
    // every record carries a sequence number, level, and target.
    println!("\nevents:");
    if snapshot.events.is_empty() {
        println!("  (no events recorded)");
    }
    for event in &snapshot.events {
        println!(
            "  #{} [{} {}] {}",
            event.seq, event.level, event.target, event.message
        );
    }
}
