//! Calibration assertions: the generated populations land inside the
//! bands DESIGN.md §5 derives from the paper's reported numbers. These
//! are the tests that would catch a regression in the generator that
//! silently breaks the reproduction's shape.

use survdb::observations::ObservationReport;
use survdb::study::{Study, StudyConfig};
use survival::{KaplanMeier, SurvivalData};
use telemetry::{Census, Edition, LifespanClass, RegionId};

fn study() -> Study {
    Study::load(StudyConfig {
        scale: 0.35,
        seed: 0xCA11B,
    })
}

fn q(census: &Census<'_>, edition: Edition) -> f64 {
    let mut short = 0usize;
    let mut long = 0usize;
    for (_, db) in census.edition_records(edition) {
        match census.classify(db) {
            Some(LifespanClass::ShortLived) => short += 1,
            Some(LifespanClass::LongLived) => long += 1,
            _ => {}
        }
    }
    long as f64 / (short + long).max(1) as f64
}

#[test]
fn class_balances_match_paper_derived_targets() {
    // Baseline scores in the paper imply q ≈ 0.68 / 0.55 / 0.35 for
    // Basic / Standard / Premium (accuracy ≈ q² + (1−q)²; precision ≈
    // q). Allow generous sampling bands.
    let study = study();
    for region in RegionId::ALL {
        let census = study.census(region);
        let basic = q(&census, Edition::Basic);
        let standard = q(&census, Edition::Standard);
        let premium = q(&census, Edition::Premium);
        assert!((0.60..0.80).contains(&basic), "{region} basic q = {basic}");
        assert!(
            (0.50..0.70).contains(&standard),
            "{region} standard q = {standard}"
        );
        assert!(
            (0.25..0.48).contains(&premium),
            "{region} premium q = {premium}"
        );
    }
}

#[test]
fn km_curve_has_the_figure1_shape() {
    // Decaying curve with a visible cliff near day 120 and a plateau in
    // the 0.25–0.45 band by day 130 (paper: "flatten around 0.4").
    let study = study();
    let census = study.census(RegionId::Region1);
    let km = KaplanMeier::fit(&SurvivalData::from_pairs(&census.survival_pairs(2.0)));
    let s110 = km.survival_at(110.0);
    let s130 = km.survival_at(130.0);
    assert!((0.25..0.45).contains(&s130), "plateau S(130) = {s130}");
    // The incentive cliff: a marked drop between day 110 and 130.
    assert!(
        s110 - s130 > 0.04,
        "no cliff: S(110) = {s110}, S(130) = {s130}"
    );
    // And the curve is genuinely flat before the cliff region compared
    // to the early decay.
    let early_decay = km.survival_at(5.0) - km.survival_at(35.0);
    let late_decay = km.survival_at(60.0) - km.survival_at(90.0);
    assert!(early_decay > late_decay, "{early_decay} vs {late_decay}");
}

#[test]
fn premium_population_smallest_in_every_region() {
    let study = study();
    for region in RegionId::ALL {
        let census = study.census(region);
        let count = |e: Edition| census.edition_records(e).count();
        assert!(count(Edition::Premium) < count(Edition::Basic), "{region}");
        assert!(
            count(Edition::Premium) < count(Edition::Standard),
            "{region}"
        );
    }
}

#[test]
fn observations_hold_at_calibration_scale() {
    let study = study();
    for region in RegionId::ALL {
        let report = ObservationReport::compute(&study.census(region));
        assert!(report.all_hold(), "{region}: {report:?}");
    }
}

#[test]
fn ephemeral_share_is_significant_but_not_dominant() {
    let study = study();
    for region in RegionId::ALL {
        let census = study.census(region);
        let (subs, dbs) = census.ephemeral_only_stats();
        assert!((0.01..0.20).contains(&subs), "{region} sub share {subs}");
        assert!((0.15..0.55).contains(&dbs), "{region} db share {dbs}");
    }
}
