//! Reproducibility guarantees: every stage of the reproduction is a
//! pure function of its seed, including parallel forest training.

use features::{FeatureConfig, FeatureExtractor};
use forest::tree::TreeParams;
use forest::{set_thread_limit, train_test_split, GridSearch, RandomForest, RandomForestParams};
use survdb::experiment::{Experiment, ExperimentConfig, GridPreset};
use survdb::study::{Study, StudyConfig};
use telemetry::{Census, Fleet, FleetConfig, RegionConfig, RegionId};

#[test]
fn fleets_are_bit_identical_across_generations() {
    let make = || Fleet::generate(FleetConfig::new(RegionConfig::region_2().scaled(0.05), 77));
    let a = make();
    let b = make();
    assert_eq!(a.databases, b.databases);
    assert_eq!(a.subscriptions, b.subscriptions);
}

#[test]
fn feature_matrices_are_identical() {
    let fleet = Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.05), 8));
    let census = Census::new(&fleet);
    let e1 = FeatureExtractor::new(&census, FeatureConfig::default());
    let e2 = FeatureExtractor::new(&census, FeatureConfig::default());
    let (d1, s1) = e1.build_dataset(&census, None);
    let (d2, s2) = e2.build_dataset(&census, None);
    assert_eq!(d1, d2);
    assert_eq!(s1, s2);
}

#[test]
fn forests_are_identical_despite_threading() {
    // Tree seeds derive from (seed, tree index), so scheduling cannot
    // change results.
    let fleet = Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.05), 9));
    let census = Census::new(&fleet);
    let extractor = FeatureExtractor::new(&census, FeatureConfig::default());
    let (dataset, _) = extractor.build_dataset(&census, None);
    let (train, test) = train_test_split(&dataset, 0.3, 1);
    let m1 = RandomForest::fit(&train, &RandomForestParams::default(), 99);
    let m2 = RandomForest::fit(&train, &RandomForestParams::default(), 99);
    for i in 0..test.len() {
        assert_eq!(
            m1.predict_proba(&test.row(i)),
            m2.predict_proba(&test.row(i))
        );
    }
    assert_eq!(m1.feature_importances(), m2.feature_importances());
    assert_eq!(m1.oob_accuracy(), m2.oob_accuracy());
}

#[test]
fn whole_experiments_reproduce_exactly() {
    let study = Study::load_region(
        StudyConfig {
            scale: 0.06,
            seed: 1234,
        },
        RegionId::Region1,
    );
    let census = study.census(RegionId::Region1);
    let config = ExperimentConfig {
        repetitions: 2,
        grid: GridPreset::Off,
        ..ExperimentConfig::default()
    };
    let r1 = Experiment::new(config.clone()).run(&census, None);
    let r2 = Experiment::new(config).run(&census, None);
    assert_eq!(r1.forest, r2.forest);
    assert_eq!(r1.baseline, r2.baseline);
    assert_eq!(r1.confident_fraction, r2.confident_fraction);
    assert_eq!(r1.whole_grouping.logrank_p, r2.whole_grouping.logrank_p);
    assert_eq!(r1.importances, r2.importances);
}

#[test]
fn results_are_thread_count_invariant() {
    // Every work unit (tree, fold, candidate × fold, repetition) is
    // seeded from its index, so 1, 2, and 8 worker threads must give
    // bitwise-identical forests, grid searches, and experiments.
    let fleet = Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.05), 9));
    let census = Census::new(&fleet);
    let extractor = FeatureExtractor::new(&census, FeatureConfig::default());
    let (dataset, _) = extractor.build_dataset(&census, None);
    let (train, test) = train_test_split(&dataset, 0.3, 1);
    let candidates = vec![
        RandomForestParams {
            n_trees: 8,
            tree: TreeParams {
                max_depth: 8,
                ..TreeParams::default()
            },
            ..RandomForestParams::default()
        },
        RandomForestParams {
            n_trees: 16,
            ..RandomForestParams::default()
        },
    ];
    let study = Study::load_region(
        StudyConfig {
            scale: 0.06,
            seed: 1234,
        },
        RegionId::Region1,
    );
    let study_census = study.census(RegionId::Region1);
    let config = ExperimentConfig {
        repetitions: 2,
        grid: GridPreset::Off,
        ..ExperimentConfig::default()
    };

    let run_all = || {
        let model = RandomForest::fit(&train, &RandomForestParams::default(), 99);
        let predictions: Vec<Vec<f64>> = (0..test.len())
            .map(|i| model.predict_proba_row(&test, i))
            .collect();
        let grid = GridSearch::new(candidates.clone(), 3).run(&train, 5);
        let grid_scores: Vec<f64> = grid.all_scores.iter().map(|(_, s)| *s).collect();
        let result = Experiment::new(config.clone()).run(&study_census, None);
        (predictions, grid.best_params, grid_scores, result)
    };

    set_thread_limit(Some(1));
    let single = run_all();
    set_thread_limit(Some(2));
    let dual = run_all();
    set_thread_limit(Some(8));
    let many = run_all();
    set_thread_limit(None);

    for other in [&dual, &many] {
        assert_eq!(single.0, other.0, "forest predictions diverged");
        assert_eq!(single.1, other.1, "grid winner diverged");
        assert_eq!(single.2, other.2, "grid scores diverged");
        assert_eq!(single.3.forest, other.3.forest);
        assert_eq!(single.3.baseline, other.3.baseline);
        assert_eq!(single.3.oob_accuracy, other.3.oob_accuracy);
        assert_eq!(single.3.importances, other.3.importances);
        assert_eq!(
            single.3.whole_grouping.logrank_p,
            other.3.whole_grouping.logrank_p
        );
    }
}

#[test]
fn different_seeds_give_different_fleets() {
    let a = Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.05), 1));
    let b = Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.05), 2));
    assert!(a.databases != b.databases);
}
