//! End-to-end integration: fleet → telemetry → census → features →
//! model → evaluation → provisioning, exercising every crate through
//! the public APIs the examples use.

use features::{FeatureConfig, FeatureExtractor};
use forest::{confidence_threshold, RandomForest, RandomForestParams};
use std::collections::HashMap;
use survdb::experiment::{Experiment, ExperimentConfig, GridPreset};
use survdb::provisioning::{simulate, PlacementPolicy, PredictedLongevity, ProvisioningConfig};
use survdb::study::{Study, StudyConfig};
use survival::{logrank_test, KaplanMeier, SurvivalData};
use telemetry::{EventStream, RegionId, TelemetryEvent};

fn study() -> Study {
    Study::load_region(
        StudyConfig {
            scale: 0.1,
            seed: 0xE2E,
        },
        RegionId::Region1,
    )
}

#[test]
fn full_pipeline_produces_consistent_results() {
    let study = study();
    let census = study.census(RegionId::Region1);
    let fleet = census.fleet();

    // Telemetry stream is consistent with records.
    let stream = EventStream::of_fleet(fleet);
    let creates = stream.count_where(|e| matches!(e, TelemetryEvent::Created { .. }));
    assert_eq!(creates, fleet.databases.len());

    // Survival analysis: the 2-day-minimum curve dominates the
    // unfiltered curve (removing infant mortality raises survival).
    let km_all = KaplanMeier::fit(&SurvivalData::from_pairs(&census.survival_pairs(0.0)));
    let km_2d = KaplanMeier::fit(&SurvivalData::from_pairs(&census.survival_pairs(2.0)));
    for &t in &[10.0, 30.0, 60.0, 120.0] {
        assert!(km_2d.survival_at(t) >= km_all.survival_at(t));
    }

    // Prediction pipeline end to end.
    let result = Experiment::new(ExperimentConfig {
        repetitions: 2,
        grid: GridPreset::Off,
        ..ExperimentConfig::default()
    })
    .run(&census, None);
    assert!(result.forest.accuracy > result.baseline.accuracy + 0.08);
    assert!(result.whole_grouping.logrank_p < 1e-4);

    // Provisioning on model output.
    let extractor = FeatureExtractor::new(&census, FeatureConfig::default());
    let (dataset, _) = extractor.build_dataset(&census, None);
    let model = RandomForest::fit(&dataset, &RandomForestParams::default(), 5);
    let threshold = confidence_threshold(dataset.class_fraction(1));
    let predictions: HashMap<usize, PredictedLongevity> = census
        .prediction_population(2.0)
        .into_iter()
        .map(|idx| {
            let db = &fleet.databases[idx];
            let p = model.predict_positive_proba(&extractor.extract(&census, db));
            (idx, PredictedLongevity::from_probability(p, threshold))
        })
        .collect();
    let config = ProvisioningConfig::default();
    let agnostic = simulate(&census, &predictions, PlacementPolicy::Agnostic, &config);
    let guided = simulate(
        &census,
        &predictions,
        PlacementPolicy::LongevityGuided,
        &config,
    );
    assert_eq!(agnostic.placed, guided.placed);
    assert!(guided.wasted_disruptions <= agnostic.wasted_disruptions);
}

#[test]
fn predicted_groups_actually_differ_in_survival() {
    // Train a model, split the *test* population by its predictions,
    // and confirm with a direct log-rank test — the chain the paper
    // uses to certify its classifier (Figure 6).
    let study = study();
    let census = study.census(RegionId::Region1);
    let extractor = FeatureExtractor::new(&census, FeatureConfig::default());
    let (dataset, survival) = extractor.build_dataset(&census, None);
    let model = RandomForest::fit(&dataset, &RandomForestParams::default(), 17);

    let mut short = Vec::new();
    let mut long = Vec::new();
    for (i, &pair) in survival.iter().enumerate() {
        if model.predict_row(&dataset, i) == 1 {
            long.push(pair);
        } else {
            short.push(pair);
        }
    }
    assert!(short.len() > 20 && long.len() > 20);
    let r = logrank_test(
        &SurvivalData::from_pairs(&short),
        &SurvivalData::from_pairs(&long),
    );
    assert!(r.p_value < 1e-6, "p = {}", r.p_value);

    // And the long group really does survive better at day 30.
    let km_short = KaplanMeier::fit(&SurvivalData::from_pairs(&short));
    let km_long = KaplanMeier::fit(&SurvivalData::from_pairs(&long));
    assert!(km_long.survival_at(30.0) > km_short.survival_at(30.0) + 0.2);
}

#[test]
fn census_labels_agree_with_survival_pairs() {
    let study = study();
    let census = study.census(RegionId::Region1);
    let extractor = FeatureExtractor::new(&census, FeatureConfig::default());
    let (dataset, survival) = extractor.build_dataset(&census, None);
    assert_eq!(dataset.len(), survival.len());
    for (i, &(days, event)) in survival.iter().enumerate() {
        match (dataset.label(i), event) {
            (1, true) => assert!(days > 30.0),
            (0, true) => assert!(days <= 30.0 && days > 2.0 - 1e-9),
            (1, false) => assert!(days > 30.0), // censored long-lived
            (0, false) => panic!("censored short-lived row should be excluded"),
            _ => unreachable!(),
        }
    }
}
