//! Fault-tolerance integration: the lenient ingest path recovers what
//! the fault injector breaks.
//!
//! The contract under test, per fault class:
//!
//! * a clean stream ingested leniently is *byte-identical* to strict
//!   ingestion, with a clean report;
//! * repairable faults (duplication, reordering) round-trip to the
//!   exact original records;
//! * destructive faults (drops, truncation, orphaning, corruption)
//!   recover every database the policy allows and quarantine the
//!   rest, with the report accounting for both;
//! * everything — injection and recovery — is deterministic in the
//!   seed.

use proptest::prelude::*;
use std::sync::OnceLock;
use telemetry::{
    reconstruct_records, reconstruct_records_lenient, EventStream, FaultClass, FaultInjector,
    FaultPlan, Fleet, FleetConfig, RecoveryPolicy, RegionConfig, TelemetryEvent,
};

fn fleet() -> &'static Fleet {
    static FLEET: OnceLock<Fleet> = OnceLock::new();
    FLEET.get_or_init(|| {
        Fleet::generate(FleetConfig::new(
            RegionConfig::region_1().scaled(0.02),
            4242,
        ))
    })
}

fn clean_stream() -> &'static EventStream {
    static STREAM: OnceLock<EventStream> = OnceLock::new();
    STREAM.get_or_init(|| EventStream::of_fleet(fleet()))
}

#[test]
fn lenient_of_clean_stream_equals_strict_exactly() {
    let stream = clean_stream();
    let strict = reconstruct_records(stream).expect("clean stream ingests strictly");
    let (lenient, report) = reconstruct_records_lenient(stream, &RecoveryPolicy::default());
    assert_eq!(lenient, strict);
    assert_eq!(lenient, fleet().databases);
    assert!(report.is_clean(), "clean stream repaired: {report:?}");
}

#[test]
fn duplicate_events_round_trip_exactly() {
    let (faulted, summary) =
        FaultInjector::new(FaultPlan::single(FaultClass::DuplicateEvents, 0.3, 11))
            .inject(clean_stream());
    assert!(summary.duplicated_events > 0);
    let (records, report) = reconstruct_records_lenient(&faulted, &RecoveryPolicy::default());
    assert_eq!(
        records,
        fleet().databases,
        "dedup must restore the originals"
    );
    assert_eq!(report.databases_quarantined, 0);
    let dup_repairs = report.repairs.duplicate_events
        + report.repairs.duplicate_creates
        + report.repairs.duplicate_drops
        + report.repairs.post_drop_events;
    assert_eq!(dup_repairs, summary.duplicated_events);
}

#[test]
fn reordered_events_round_trip_exactly() {
    let (faulted, summary) =
        FaultInjector::new(FaultPlan::single(FaultClass::ReorderEvents, 0.25, 12))
            .inject(clean_stream());
    assert!(summary.reordered_events > 0);
    let (records, report) = reconstruct_records_lenient(&faulted, &RecoveryPolicy::default());
    assert_eq!(
        records,
        fleet().databases,
        "re-sorting must restore the originals"
    );
    assert!(report.repairs.resorted_events > 0);
    assert_eq!(report.databases_quarantined, 0);
}

#[test]
fn dropped_samples_recover_subsets() {
    let (faulted, summary) =
        FaultInjector::new(FaultPlan::single(FaultClass::DropSamples, 0.3, 13))
            .inject(clean_stream());
    assert!(summary.dropped_events > 0);
    let (records, report) = reconstruct_records_lenient(&faulted, &RecoveryPolicy::default());
    let originals = &fleet().databases;
    assert_eq!(
        records.len() + report.databases_quarantined,
        originals.len(),
        "every database is recovered or quarantined"
    );
    // Sample loss never invents data: every recovered sample is
    // either one of the original's or the synthetic creation-time
    // backfill `(0, 0.0)` for a trace that lost everything.
    let synthetic = (simtime::Duration::seconds(0), 0.0);
    for rec in &records {
        let orig = originals.iter().find(|d| d.id == rec.id).expect("known id");
        assert_eq!(rec.created_at, orig.created_at);
        for sample in rec.size_trace.samples() {
            assert!(orig.size_trace.samples().contains(sample) || *sample == synthetic);
        }
        for sample in rec.utilization_trace.samples() {
            assert!(orig.utilization_trace.samples().contains(sample) || *sample == synthetic);
        }
    }
}

#[test]
fn truncated_streams_recover_prefixes() {
    let (faulted, summary) =
        FaultInjector::new(FaultPlan::single(FaultClass::TruncateStreams, 0.5, 14))
            .inject(clean_stream());
    assert!(summary.truncated_databases > 0);
    let (records, report) = reconstruct_records_lenient(&faulted, &RecoveryPolicy::default());
    let originals = &fleet().databases;
    assert_eq!(
        records.len() + report.databases_quarantined,
        originals.len()
    );
    for rec in &records {
        let orig = originals.iter().find(|d| d.id == rec.id).expect("known id");
        assert!(rec.size_trace.samples().len() <= orig.size_trace.samples().len());
        // A truncated drop event leaves the database looking alive.
        if orig.dropped_at.is_none() {
            assert!(rec.dropped_at.is_none());
        }
    }
}

#[test]
fn corrupt_slo_names_are_repaired_to_catalog_entries() {
    let (faulted, summary) =
        FaultInjector::new(FaultPlan::single(FaultClass::CorruptSloNames, 0.4, 15))
            .inject(clean_stream());
    assert!(summary.corrupted_slos > 0);
    let (records, report) = reconstruct_records_lenient(&faulted, &RecoveryPolicy::default());
    assert_eq!(
        records.len(),
        fleet().databases.len(),
        "repair, not quarantine"
    );
    assert_eq!(
        report.repairs.repaired_creation_slos + report.repairs.dropped_unknown_slo_changes,
        summary.corrupted_slos,
        "every corrupt label is either repaired or discarded"
    );
    // With repair disabled, corrupt creations quarantine instead.
    let strict_policy = RecoveryPolicy {
        repair_unknown_creation_slo: false,
        ..RecoveryPolicy::default()
    };
    let (strict_records, strict_report) = reconstruct_records_lenient(&faulted, &strict_policy);
    assert_eq!(
        strict_report.quarantines.unknown_creation_slo,
        report.repairs.repaired_creation_slos
    );
    assert_eq!(
        strict_records.len() + strict_report.quarantines.unknown_creation_slo,
        records.len()
    );
}

#[test]
fn orphaned_lifecycles_are_quarantined_and_the_rest_round_trip() {
    let (faulted, summary) =
        FaultInjector::new(FaultPlan::single(FaultClass::OrphanLifecycles, 0.3, 16))
            .inject(clean_stream());
    assert!(summary.orphaned_databases > 0);
    let (records, report) = reconstruct_records_lenient(&faulted, &RecoveryPolicy::default());
    assert_eq!(
        report.quarantines.orphaned_databases,
        summary.orphaned_databases
    );
    assert_eq!(report.databases_quarantined, summary.orphaned_databases);
    let originals = &fleet().databases;
    assert_eq!(
        records.len() + report.databases_quarantined,
        originals.len()
    );
    // Databases that kept their creation round-trip exactly.
    for rec in &records {
        let orig = originals.iter().find(|d| d.id == rec.id).expect("known id");
        assert_eq!(rec, orig);
    }
}

#[test]
fn combined_faults_never_panic_and_account_for_every_database() {
    let plan = FaultPlan {
        drop_size: 0.2,
        drop_utilization: 0.2,
        drop_dropped: 0.3,
        duplicate: 0.15,
        reorder: 0.15,
        truncate: 0.2,
        corrupt_slo: 0.1,
        orphan: 0.1,
        ..FaultPlan::none(99)
    };
    let (faulted, _) = FaultInjector::new(plan).inject(clean_stream());
    let (records, report) = reconstruct_records_lenient(&faulted, &RecoveryPolicy::default());
    assert!(!records.is_empty());
    assert_eq!(
        records.len() + report.databases_quarantined,
        fleet().databases.len()
    );
    assert_eq!(report.databases_recovered, records.len());
    assert!(report.repairs.total() > 0);
}

#[test]
fn same_seed_yields_identical_ingest_report() {
    let plan = FaultPlan {
        drop_size: 0.25,
        duplicate: 0.1,
        reorder: 0.1,
        corrupt_slo: 0.1,
        orphan: 0.05,
        ..FaultPlan::none(321)
    };
    let run = || {
        let (faulted, _) = FaultInjector::new(plan).inject(clean_stream());
        reconstruct_records_lenient(&faulted, &RecoveryPolicy::default())
    };
    let (records_a, report_a) = run();
    let (records_b, report_b) = run();
    assert_eq!(records_a, records_b);
    assert_eq!(report_a, report_b);
}

#[test]
fn ingest_report_is_printable() {
    let (faulted, _) = FaultInjector::new(FaultPlan::single(FaultClass::DropSamples, 0.3, 5))
        .inject(clean_stream());
    let (_, report) = reconstruct_records_lenient(&faulted, &RecoveryPolicy::default());
    let text = format!("{report:?}");
    assert!(text.contains("databases_recovered"), "{text}");
}

proptest! {
    #[test]
    fn injector_is_deterministic(seed in any::<u64>(), rate in 0.0..0.5f64) {
        let plan = FaultPlan {
            drop_size: rate,
            duplicate: rate / 2.0,
            reorder: rate / 2.0,
            ..FaultPlan::none(seed)
        };
        let (a, sa) = FaultInjector::new(plan).inject(clean_stream());
        let (b, sb) = FaultInjector::new(plan).inject(clean_stream());
        prop_assert_eq!(a.events(), b.events());
        prop_assert_eq!(sa, sb);
    }

    #[test]
    fn recovery_accounting_is_conservative(seed in any::<u64>(), rate in 0.0..0.4f64) {
        let (faulted, _) = FaultInjector::new(FaultPlan::single(
            FaultClass::DropSamples,
            rate,
            seed,
        ))
        .inject(clean_stream());
        let (records, report) =
            reconstruct_records_lenient(&faulted, &RecoveryPolicy::default());
        prop_assert_eq!(report.events_total, faulted.len());
        prop_assert!(report.events_discarded <= report.events_total);
        prop_assert_eq!(report.databases_recovered, records.len());
        let creates = faulted
            .count_where(|e| matches!(e, TelemetryEvent::Created { .. }));
        prop_assert!(records.len() <= creates);
    }
}
