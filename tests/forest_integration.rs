//! Cross-crate model checks: the forest on real pipeline features, the
//! baseline's analytic behaviour, grid search, and the confidence
//! partition's paper identities.

use features::{FeatureConfig, FeatureExtractor};
use forest::tree::TreeParams;
use forest::{
    confidence_threshold, cross_val_accuracy, roc_auc, train_test_split, ConfusionMatrix,
    GridSearch, PartitionedPredictions, RandomForest, RandomForestParams, WeightedRandomClassifier,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use telemetry::{Census, Fleet, FleetConfig, RegionConfig};

fn pipeline_dataset() -> (forest::Dataset, Vec<(f64, bool)>) {
    let fleet = Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.1), 0xF0));
    let census = Census::new(&fleet);
    let extractor = FeatureExtractor::new(&census, FeatureConfig::default());
    extractor.build_dataset(&census, None)
}

#[test]
fn forest_beats_baseline_on_pipeline_features() {
    let (dataset, _) = pipeline_dataset();
    let (train, test) = train_test_split(&dataset, 0.2, 3);
    let model = RandomForest::fit(&train, &RandomForestParams::default(), 3);
    let baseline = WeightedRandomClassifier::fit(&train);
    let mut rng = SmallRng::seed_from_u64(3);

    let forest_preds: Vec<usize> = (0..test.len())
        .map(|i| model.predict_row(&test, i))
        .collect();
    let baseline_preds = baseline.predict_many(test.len(), &mut rng);
    let actual: Vec<usize> = (0..test.len()).map(|i| test.label(i)).collect();

    let forest_acc = ConfusionMatrix::from_predictions(&forest_preds, &actual).accuracy();
    let baseline_acc = ConfusionMatrix::from_predictions(&baseline_preds, &actual).accuracy();
    assert!(
        forest_acc > baseline_acc + 0.1,
        "forest {forest_acc} vs baseline {baseline_acc}"
    );

    // Probabilities carry ranking information: AUC well above chance.
    let probs: Vec<f64> = (0..test.len())
        .map(|i| model.predict_positive_proba_row(&test, i))
        .collect();
    let auc = roc_auc(&probs, &actual);
    assert!(auc > 0.72, "auc = {auc}");
}

#[test]
fn grid_search_improves_or_matches_default() {
    let (dataset, _) = pipeline_dataset();
    let (train, _) = train_test_split(&dataset, 0.5, 9);
    let shallow = RandomForestParams {
        n_trees: 10,
        tree: TreeParams {
            max_depth: 3,
            ..TreeParams::default()
        },
        ..RandomForestParams::default()
    };
    let strong = RandomForestParams {
        n_trees: 40,
        ..RandomForestParams::default()
    };
    let result = GridSearch::new(vec![shallow, strong], 3).run(&train, 5);
    let shallow_cv = cross_val_accuracy(&train, &shallow, 3, 5);
    assert!(result.best_score >= shallow_cv - 1e-9);
}

#[test]
fn confidence_partition_matches_paper_identities() {
    let (dataset, _) = pipeline_dataset();
    let (train, test) = train_test_split(&dataset, 0.2, 11);
    let model = RandomForest::fit(&train, &RandomForestParams::default(), 11);
    let probs: Vec<f64> = (0..test.len())
        .map(|i| model.predict_positive_proba_row(&test, i))
        .collect();
    let q = train.class_fraction(1);
    let partition = PartitionedPredictions::partition(&probs, q);

    // t = max(q, 1 − q).
    assert!((partition.threshold - confidence_threshold(q)).abs() < 1e-12);
    // Exhaustive and disjoint.
    assert_eq!(
        partition.confident.len() + partition.uncertain.len(),
        test.len()
    );
    // Confident accuracy >= uncertain accuracy (the entire point).
    let acc = |subset: &[(usize, f64, usize)]| -> f64 {
        if subset.is_empty() {
            return 1.0;
        }
        let correct = subset
            .iter()
            .filter(|&&(i, _, pred)| pred == test.label(i))
            .count();
        correct as f64 / subset.len() as f64
    };
    assert!(acc(&partition.confident) >= acc(&partition.uncertain));
}

#[test]
fn oob_estimate_close_to_holdout() {
    let (dataset, _) = pipeline_dataset();
    let (train, test) = train_test_split(&dataset, 0.3, 13);
    let model = RandomForest::fit(&train, &RandomForestParams::default(), 13);
    let oob = model.oob_accuracy().expect("bootstrap on");
    let preds: Vec<usize> = (0..test.len())
        .map(|i| model.predict_row(&test, i))
        .collect();
    let actual: Vec<usize> = (0..test.len()).map(|i| test.label(i)).collect();
    let holdout = ConfusionMatrix::from_predictions(&preds, &actual).accuracy();
    assert!(
        (oob - holdout).abs() < 0.08,
        "oob {oob} vs holdout {holdout}"
    );
}

#[test]
fn importances_rank_history_family_first() {
    // The paper's §5.4 headline finding, at the family level:
    // subscription history > names > creation time.
    let (dataset, _) = pipeline_dataset();
    let model = RandomForest::fit(&dataset, &RandomForestParams::default(), 17);
    let mut history = 0.0;
    let mut names = 0.0;
    let mut time = 0.0;
    for (name, importance) in model.ranked_importances() {
        if name.starts_with("hist_") {
            history += importance;
        } else if name.starts_with("server_") || name.starts_with("db_") {
            names += importance;
        } else if name.starts_with("created_") {
            time += importance;
        }
    }
    assert!(
        history > names && names > time,
        "family importances: history {history:.3}, names {names:.3}, time {time:.3}"
    );
}
