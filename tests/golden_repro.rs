//! Golden-file regression test for the reproduction pipeline (PR 4
//! satellite).
//!
//! Runs a small fixed-seed end-to-end experiment — fleet generation →
//! census → feature extraction → forest training → §5 scoring — and
//! byte-compares the deterministic JSON rendering against
//! `tests/golden/repro_small.json`.
//!
//! Any intentional change to the pipeline's numerics or to the JSON
//! rendering rules shows up here as a diff. To re-bless the golden
//! file after such a change, run:
//!
//! ```text
//! SURVDB_BLESS=1 cargo test -p survdb-core --test golden_repro
//! ```
//!
//! and commit the updated file together with the change that moved it.

use std::path::PathBuf;
use survdb::experiment::{Experiment, ExperimentConfig, GridPreset};
use survdb::json::{Json, ToJson};
use telemetry::{Census, Edition, Fleet, FleetConfig, RegionConfig};

const GOLDEN_SCALE: f64 = 0.05;
const GOLDEN_SEED: u64 = 2018;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/repro_small.json")
}

/// The pinned pipeline: one small region-1 fleet, two repetitions, no
/// grid search (tuning breadth is covered elsewhere; the golden file
/// pins numerics, not search behavior).
fn golden_render() -> String {
    let fleet = Fleet::generate(FleetConfig::new(
        RegionConfig::region_1().scaled(GOLDEN_SCALE),
        GOLDEN_SEED,
    ));
    let census = Census::new(&fleet);
    let experiment = Experiment::new(ExperimentConfig {
        repetitions: 2,
        grid: GridPreset::Off,
        seed: GOLDEN_SEED,
        ..ExperimentConfig::default()
    });

    // One whole-region subgroup and one edition slice, so the golden
    // file covers both census paths.
    let subgroups = vec![
        experiment.run(&census, None).to_json_value(),
        experiment
            .run(&census, Some(Edition::ALL[0]))
            .to_json_value(),
    ];

    Json::obj(vec![
        ("schema", Json::Str("survdb-golden/v1".to_string())),
        ("scale", Json::Float(GOLDEN_SCALE)),
        ("seed", Json::UInt(GOLDEN_SEED)),
        ("subgroups", Json::Arr(subgroups)),
    ])
    .render()
}

#[test]
fn small_repro_matches_golden_file() {
    let rendered = golden_render();
    let path = golden_path();

    if std::env::var_os("SURVDB_BLESS").is_some() {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("create tests/golden");
        }
        std::fs::write(&path, &rendered).expect("write golden file");
        println!("blessed {} ({} bytes)", path.display(), rendered.len());
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\nrun with SURVDB_BLESS=1 to generate it",
            path.display()
        )
    });
    if rendered != golden {
        // Locate the first diverging line for a readable failure.
        let mismatch = rendered
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b);
        match mismatch {
            Some((line, (got, want))) => panic!(
                "pipeline output drifted from {} at line {}:\n  got:  {got}\n  want: {want}\n\
                 if the change is intentional, re-bless with SURVDB_BLESS=1",
                path.display(),
                line + 1
            ),
            None => panic!(
                "pipeline output drifted from {} (lengths {} vs {}; common prefix identical)",
                path.display(),
                rendered.len(),
                golden.len()
            ),
        }
    }
}

#[test]
fn golden_render_is_reproducible_in_process() {
    // The golden promise is only meaningful if two in-process runs
    // already agree; this fails fast (and locally) if nondeterminism
    // sneaks into the pipeline, without involving the checked-in file.
    assert_eq!(golden_render(), golden_render());
}
