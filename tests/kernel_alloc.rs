//! `kernel_alloc` — counting-allocator proof that the kernel's hot
//! loop performs zero heap allocation.
//!
//! The scoring layer hoists every buffer (row tile, probability
//! accumulator, traversal cursors) into per-worker scratch that is
//! created once and reused across chunks; inside
//! `ForestKernel::score_block_into` and `predict_proba_into` nothing
//! may touch the allocator. A `#[global_allocator]` wrapper counts
//! `alloc`/`realloc` calls, and the test asserts the count does not
//! move across repeated kernel calls with warm scratch.
//!
//! This file holds exactly one `#[test]` so no sibling test can
//! allocate concurrently inside the measurement window.

use forest::{ForestKernel, KernelScratch};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn kernel_hot_loop_performs_zero_allocation() {
    // A real forest, large enough that a lazy implementation would
    // visibly allocate (per-leaf Vec, per-row gather, ...).
    let mut data = forest::Dataset::new((0..8).map(|f| format!("x{f}")).collect(), 2);
    for i in 0..240 {
        let row: Vec<f64> = (0..8)
            .map(|f| ((i * (2 * f + 3)) % 240) as f64 / 240.0)
            .collect();
        let label = (row[0] + 0.4 * row[1] > 0.65) as usize;
        data.push(row, label);
    }
    let params = forest::RandomForestParams {
        n_trees: 12,
        ..forest::RandomForestParams::default()
    };
    let model = forest::RandomForest::fit(&data, &params, 2018);
    let kernel = ForestKernel::from_forest(&model);

    // All buffers up front, exactly like the serving layer's
    // per-worker scratch.
    let n = data.len();
    let nf = kernel.feature_count();
    let cc = kernel.class_count();
    let mut rows = Vec::with_capacity(n * nf);
    for i in 0..n {
        rows.extend(data.row(i));
    }
    let mut out = vec![0.0; n * cc];
    let mut scratch = KernelScratch::new();

    // Warm-up pass (first-touch effects, lazy statics), then measure.
    let warm = kernel.score_block_into(&rows, n, &mut scratch, &mut out);
    assert!(warm.node_steps > 0, "fixture forest must have real depth");

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..5 {
        kernel.score_block_into(&rows, n, &mut scratch, &mut out);
    }
    for i in 0..n.min(64) {
        kernel.predict_proba_into(&rows[i * nf..(i + 1) * nf], &mut out[i * cc..(i + 1) * cc]);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "the kernel hot loop allocated {} times across {} rows",
        after - before,
        5 * n + n.min(64)
    );
}
