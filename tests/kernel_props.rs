//! `kernel_props` — property tests pinning the flat-forest kernel's
//! bitwise-parity contract.
//!
//! For random forests × random scoring corpora — including `NaN`
//! (missing values), `±0.0`, and feature values exactly equal to the
//! model's own split thresholds — three scoring paths must produce
//! bit-identical probabilities for every row:
//!
//! 1. **recursive** — `RandomForest::predict_proba`, the pointer-chasing
//!    reference walk;
//! 2. **branchless** — `ForestKernel::predict_proba`, arithmetic node
//!    stepping one row at a time;
//! 3. **blocked** — the cache-blocked serving path
//!    (`serve::score::score_rows_chunked`), across forest thread
//!    limits {1, 8} and chunk sizes {1, 7, 64}.
//!
//! The forest thread limit is process-global, so the sweep nests
//! inside one property body instead of fanning out into `#[test]`s.

use forest::{parallel::splitmix64, ForestKernel};
use proptest::prelude::*;

/// Deterministic f64 in [0, 1) from a splitmix64 stream.
fn unit_float(state: u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Trains a small forest on deterministic pseudo-random data.
fn train(seed: u64, n_trees: usize, n_features: usize) -> (forest::RandomForest, f64) {
    let names: Vec<String> = (0..n_features).map(|f| format!("x{f}")).collect();
    let mut data = forest::Dataset::new(names, 2);
    for i in 0..90u64 {
        let row: Vec<f64> = (0..n_features)
            .map(|f| unit_float(seed ^ (i * 131 + f as u64 + 1)))
            .collect();
        let label = (row[0] + 0.5 * row[1 % n_features] > 0.7) as usize;
        data.push(row, label);
    }
    let params = forest::RandomForestParams {
        n_trees,
        ..forest::RandomForestParams::default()
    };
    let model = forest::RandomForest::fit(&data, &params, seed);
    (model, data.class_fraction(1))
}

/// Builds a scoring corpus salted with the kernel's adversarial
/// inputs: NaN, both signed zeros, and values exactly on the model's
/// own split thresholds (the `value == threshold` boundary the
/// `<=`/`>` duality must get right).
fn corpus(seed: u64, n_features: usize, model: &forest::RandomForest) -> Vec<Vec<f64>> {
    let mut thresholds = Vec::new();
    for tree in model.trees() {
        let flat = tree.to_flat();
        for (i, &kind) in flat.kind.iter().enumerate() {
            if kind == 1 {
                thresholds.push(flat.threshold[i]);
            }
        }
    }
    (0..70u64)
        .map(|r| {
            (0..n_features)
                .map(|f| {
                    let roll = splitmix64(seed ^ (0xBEEF ^ (r * 977 + f as u64)));
                    match roll % 8 {
                        0 => f64::NAN,
                        1 => 0.0,
                        2 => -0.0,
                        3 if !thresholds.is_empty() => {
                            thresholds[(roll >> 8) as usize % thresholds.len()]
                        }
                        _ => unit_float(roll),
                    }
                })
                .collect()
        })
        .collect()
}

/// `a` and `b` are the same bits, slot for slot.
fn bitwise_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn recursive_branchless_and_blocked_paths_score_identically(
        seed in 1u64..=u64::MAX / 2,
        n_trees in 2usize..7,
        n_features in 2usize..6,
    ) {
        let (model, q) = train(seed, n_trees, n_features);
        let kernel = ForestKernel::from_forest(&model);
        let rows = corpus(seed, n_features, &model);

        // Recursive reference vs the branchless per-row kernel.
        let reference: Vec<Vec<f64>> = rows.iter().map(|r| model.predict_proba(r)).collect();
        for (i, row) in rows.iter().enumerate() {
            let branchless = kernel.predict_proba(row);
            prop_assert!(
                bitwise_eq(&branchless, &reference[i]),
                "branchless diverged at row {i}: {branchless:?} vs {:?}",
                reference[i]
            );
        }

        // The blocked serving path across thread limits and chunk sizes.
        let mut first: Option<serve::ScoredBatch> = None;
        for threads in [1usize, 8] {
            forest::set_thread_limit(Some(threads));
            for chunk in [1usize, 7, 64] {
                let batch = serve::score::score_rows_chunked(&kernel, &rows, q, chunk);
                for (i, scored) in batch.rows.iter().enumerate() {
                    prop_assert!(
                        bitwise_eq(&scored.probabilities, &reference[i]),
                        "blocked (threads {threads}, chunk {chunk}) diverged at row {i}"
                    );
                }
                match &first {
                    None => first = Some(batch),
                    Some(f) => prop_assert_eq!(
                        f,
                        &batch,
                        "batch differs at threads {}, chunk {}",
                        threads,
                        chunk
                    ),
                }
            }
        }
        forest::set_thread_limit(None);
    }
}
