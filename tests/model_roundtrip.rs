//! Round-trip and robustness tests for the `survdb-model/v1` on-disk
//! format (PR 4 tentpole acceptance).
//!
//! Three guarantees are pinned here:
//!
//! 1. save → load → save is byte-identical, grid provenance included;
//! 2. a loaded forest reproduces the in-memory predictions — per-row
//!    probability vectors, batch scores, and the confident/uncertain
//!    partition — bitwise;
//! 3. a truncated or corrupted model file yields a typed
//!    [`serve::ModelError`], never a panic. Corruption cases are
//!    enumerated deterministically with [`telemetry::faults::flip_bytes`].

use forest::tree::TreeParams;
use forest::{
    Dataset, GridSearch, MaxFeatures, PartitionedPredictions, RandomForest, RandomForestParams,
};
use serve::{score_batch, GridProvenance, ModelError, ModelMeta, SavedModel};
use std::path::PathBuf;

/// Deterministic two-class dataset: no RNG, so every test binary sees
/// the exact same bytes on disk.
fn fixture_dataset() -> Dataset {
    let names = vec!["age".to_string(), "ops".to_string(), "bytes".to_string()];
    let mut data = Dataset::new(names, 2);
    for i in 0..180 {
        let x0 = (i % 17) as f64 / 17.0;
        let x1 = (i % 29) as f64 / 29.0;
        let x2 = ((i * 7) % 13) as f64 / 13.0;
        let label = (x0 + 0.4 * x1 - 0.2 * x2 > 0.5) as usize;
        data.push(vec![x0, x1, x2], label);
    }
    data
}

fn fixture_model(data: &Dataset) -> SavedModel {
    // A real (tiny) grid search so provenance round-trips too.
    let candidates = vec![
        RandomForestParams {
            n_trees: 8,
            tree: TreeParams {
                max_depth: 6,
                ..TreeParams::default()
            },
            max_features: MaxFeatures::Sqrt,
            bootstrap: true,
        },
        RandomForestParams {
            n_trees: 12,
            tree: TreeParams {
                max_depth: 10,
                ..TreeParams::default()
            },
            max_features: MaxFeatures::All,
            bootstrap: true,
        },
    ];
    let grid = GridSearch::new(candidates, 3).run(data, 41);
    let forest = RandomForest::fit(data, &grid.best_params, 41);
    SavedModel::new(
        forest,
        ModelMeta {
            positive_fraction: data.class_fraction(1),
            seed: 41,
            params: grid.best_params,
            grid: Some(GridProvenance::from_result(&grid)),
        },
    )
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "survdb_roundtrip_{tag}_{}.json",
        std::process::id()
    ))
}

struct TempFile(PathBuf);

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn save_load_save_is_byte_identical() {
    let data = fixture_dataset();
    let saved = fixture_model(&data);
    let path = temp_path("identity");
    let _guard = TempFile(path.clone());

    saved.save(&path).expect("save");
    let first_bytes = std::fs::read(&path).expect("read saved model");
    let loaded = SavedModel::load(&path).expect("load");
    assert_eq!(loaded.meta, saved.meta, "metadata must round-trip");

    // Save the *loaded* model again: the file must not drift by a byte.
    loaded.save(&path).expect("re-save");
    let second_bytes = std::fs::read(&path).expect("read re-saved model");
    assert_eq!(first_bytes, second_bytes, "save-load-save drifted");
    assert_eq!(loaded.render(), saved.render());
}

#[test]
fn loaded_forest_reproduces_predictions_and_partition() {
    let data = fixture_dataset();
    let saved = fixture_model(&data);
    let path = temp_path("predict");
    let _guard = TempFile(path.clone());
    saved.save(&path).expect("save");
    let loaded = SavedModel::load(&path).expect("load");

    // Per-row probability vectors, bitwise.
    for i in 0..data.len() {
        assert_eq!(
            loaded.forest.predict_proba_row(&data, i),
            saved.forest.predict_proba_row(&data, i),
            "row {i} diverged after the round trip"
        );
    }

    // The batched scoring engine sees the same model.
    let q = saved.meta.positive_fraction;
    let before = score_batch(&saved.forest, &data, q);
    let after = score_batch(&loaded.forest, &data, q);
    assert_eq!(before.rows, after.rows);
    assert_eq!(before.summary(), after.summary());

    // And the §5.3 confident/uncertain partition is identical.
    let positives: Vec<f64> = (0..data.len())
        .map(|i| saved.forest.predict_positive_proba_row(&data, i))
        .collect();
    let reloaded: Vec<f64> = (0..data.len())
        .map(|i| loaded.forest.predict_positive_proba_row(&data, i))
        .collect();
    assert_eq!(
        PartitionedPredictions::partition(&positives, q),
        PartitionedPredictions::partition(&reloaded, q)
    );
}

#[test]
fn truncated_files_return_typed_errors_never_panic() {
    let data = fixture_dataset();
    let saved = fixture_model(&data);
    let text = saved.render();
    let path = temp_path("truncate");
    let _guard = TempFile(path.clone());

    // Cut the file at a spread of prefix lengths from empty up to (but
    // not including) the closing brace — the render ends in "}\n", so
    // any shorter prefix is structurally incomplete JSON and every one
    // must be rejected with a typed error.
    let n = text.len();
    let cuts: Vec<usize> = (0..32).map(|k| k * (n - 2) / 31).collect();
    for cut in cuts {
        // Truncate on a char boundary so the prefix stays valid UTF-8
        // (the fixture is ASCII, but don't rely on that).
        let mut end = cut;
        while !text.is_char_boundary(end) {
            end -= 1;
        }
        let prefix = &text[..end];
        let err = SavedModel::parse(prefix).expect_err("truncated model must not parse");
        assert!(
            matches!(err, ModelError::Parse(_) | ModelError::Schema(_)),
            "prefix of {end} bytes produced unexpected error {err}"
        );
        // Same through the file path.
        std::fs::write(&path, prefix).expect("write truncated file");
        assert!(SavedModel::load(&path).is_err());
    }

    // A missing file is an Io error, not a panic.
    std::fs::remove_file(&path).expect("cleanup");
    assert!(matches!(SavedModel::load(&path), Err(ModelError::Io(_))));
}

#[test]
fn corrupted_files_are_rejected_or_load_safely() {
    let data = fixture_dataset();
    let saved = fixture_model(&data);
    let clean = saved.render().into_bytes();
    let path = temp_path("corrupt");
    let _guard = TempFile(path.clone());

    let mut rejected = 0usize;
    let mut survived = 0usize;
    for seed in 0..50u64 {
        let mut bytes = clean.clone();
        telemetry::faults::flip_bytes(&mut bytes, 4, seed);
        std::fs::write(&path, &bytes).expect("write corrupted file");
        // The only contract: load never panics and returns a typed
        // result. Corruption that lands in a float's mantissa can still
        // parse — such a model must then be safely usable.
        match SavedModel::load(&path) {
            Err(_) => rejected += 1,
            Ok(model) => {
                survived += 1;
                assert_eq!(model.forest.feature_names().len(), data.feature_count());
                for i in 0..data.len().min(8) {
                    let probs = model.forest.predict_proba_row(&data, i);
                    assert_eq!(probs.len(), model.forest.class_count());
                    assert!(probs.iter().all(|p| p.is_finite()));
                }
            }
        }
    }
    assert_eq!(rejected + survived, 50);
    // Flipping 4 bytes of structural JSON almost always breaks it; if
    // every single corruption parsed, validation is not doing its job.
    assert!(
        rejected > 25,
        "only {rejected}/50 corruptions were rejected"
    );
}
