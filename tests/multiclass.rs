//! Three-class classification through the same machinery: the paper's
//! labels are really ephemeral / short-lived / long-lived (§3.3); the
//! binary task drops the ephemeral class only because prediction
//! happens 2 days in. At creation time (x = 0, creation-visible
//! features only) all three classes are in play — this exercises the
//! forest's k-class path end to end.

use features::name::name_features;
use features::time::time_features;
use forest::{train_test_split, Dataset, RandomForest, RandomForestParams};
use telemetry::{Census, Fleet, FleetConfig, LifespanClass, RegionConfig};

fn class_index(class: LifespanClass) -> usize {
    match class {
        LifespanClass::Ephemeral => 0,
        LifespanClass::ShortLived => 1,
        LifespanClass::LongLived => 2,
    }
}

fn creation_time_dataset() -> Dataset {
    let fleet = Fleet::generate(FleetConfig::new(
        RegionConfig::region_1().scaled(0.12),
        0x3C1A55,
    ));
    let census = Census::new(&fleet);
    let holidays = &fleet.config.region.holidays;

    let mut names: Vec<String> = features::time::TIME_FEATURE_NAMES
        .iter()
        .map(|s| s.to_string())
        .collect();
    names.extend(features::name::name_feature_names("server"));
    names.extend(features::name::name_feature_names("db"));
    let mut data = Dataset::new(names, 3);

    for (_, db) in census.study_population() {
        let Some(class) = census.classify(db) else {
            continue;
        };
        let mut row = time_features(db.created_at, holidays);
        row.extend(name_features(&db.server_name));
        row.extend(name_features(&db.database_name));
        data.push(row, class_index(class));
    }
    data
}

#[test]
fn three_class_forest_beats_majority_vote() {
    let data = creation_time_dataset();
    let dist = data.class_distribution();
    assert!(
        dist.iter().all(|&c| c > 30),
        "need all three classes: {dist:?}"
    );

    let (train, test) = train_test_split(&data, 0.25, 9);
    let model = RandomForest::fit(&train, &RandomForestParams::default(), 9);

    let correct = (0..test.len())
        .filter(|&i| model.predict_row(&test, i) == test.label(i))
        .count();
    let accuracy = correct as f64 / test.len() as f64;
    let majority =
        *train.class_distribution().iter().max().expect("non-empty") as f64 / train.len() as f64;
    assert!(
        accuracy > majority + 0.05,
        "3-class accuracy {accuracy:.3} vs majority {majority:.3}"
    );
}

#[test]
fn three_class_probabilities_are_proper() {
    let data = creation_time_dataset();
    let model = RandomForest::fit(&data, &RandomForestParams::default(), 5);
    for i in (0..data.len()).step_by(97) {
        let probs = model.predict_proba(&data.row(i));
        assert_eq!(probs.len(), 3);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}

#[test]
fn ephemeral_class_is_recognizable_from_names() {
    // Cyclers (the ephemeral-only segment) use automated names around
    // the clock; the 3-class model should recall a solid share of the
    // ephemeral class from creation-time signals alone.
    let data = creation_time_dataset();
    let (train, test) = train_test_split(&data, 0.25, 11);
    let model = RandomForest::fit(&train, &RandomForestParams::default(), 11);
    let mut tp = 0usize;
    let mut actual = 0usize;
    for i in 0..test.len() {
        if test.label(i) == 0 {
            actual += 1;
            if model.predict_row(&test, i) == 0 {
                tp += 1;
            }
        }
    }
    let recall = tp as f64 / actual.max(1) as f64;
    assert!(recall > 0.5, "ephemeral recall {recall:.3} over {actual}");
}
