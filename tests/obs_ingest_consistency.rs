//! The per-kind repair and quarantine counters `obs` records during
//! lenient ingest must reconcile exactly with the `IngestReport` the
//! caller receives — the trace and the report are two views of the
//! same recovery, never two bookkeeping systems that can drift.
//!
//! One `#[test]` runs both recovery policies sequentially because the
//! registry slot is process-wide.

use telemetry::{
    reconstruct_records_lenient, EventStream, FaultInjector, FaultPlan, Fleet, FleetConfig,
    RecoveryPolicy, RegionConfig,
};

fn degraded_stream() -> EventStream {
    let fleet = Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.08), 13));
    let stream = EventStream::of_fleet(&fleet);
    let plan = FaultPlan {
        drop_size: 0.15,
        drop_utilization: 0.15,
        drop_dropped: 0.10,
        duplicate: 0.10,
        reorder: 0.10,
        truncate: 0.05,
        corrupt_slo: 0.05,
        orphan: 0.03,
        ..FaultPlan::none(2018)
    };
    FaultInjector::new(plan).inject(&stream).0
}

fn ingest_counters(
    stream: &EventStream,
    policy: &RecoveryPolicy,
) -> (obs::Snapshot, telemetry::IngestReport) {
    let registry = obs::Registry::with_stderr_level(obs::Level::Error);
    let guard = registry.install();
    let (_records, report) = reconstruct_records_lenient(stream, policy);
    drop(guard);
    (registry.snapshot(), report)
}

#[test]
fn trace_counters_match_ingest_report_under_both_policies() {
    let degraded = degraded_stream();

    let strict = RecoveryPolicy {
        synthesize_missing_samples: false,
        clamp_out_of_range: false,
        repair_unknown_creation_slo: false,
        ..RecoveryPolicy::default()
    };

    for (label, policy) in [("default", RecoveryPolicy::default()), ("strict", strict)] {
        let (snapshot, report) = ingest_counters(&degraded, &policy);
        for (name, expected) in report.metric_entries() {
            assert_eq!(
                snapshot.counters.get(name).copied(),
                Some(expected),
                "{label} policy: counter {name} disagrees with the IngestReport"
            );
        }
        assert_eq!(
            snapshot.spans.get("ingest").map(|s| s.count),
            Some(1),
            "{label} policy: exactly one ingest span per reconstruction"
        );
        // The fault plan actually exercised the recovery machinery, so
        // the reconciliation above was not vacuously zero-vs-zero.
        assert!(
            report.repairs.total() > 0,
            "{label} policy: fault plan produced no repairs"
        );
        assert!(
            report.databases_quarantined > 0,
            "{label} policy: fault plan produced no quarantines"
        );
        assert!(
            !report.is_clean(),
            "{label} policy: degraded stream reported clean"
        );
        assert_eq!(
            snapshot.event_counts().get("info:ingest").copied(),
            Some(1),
            "{label} policy: unclean ingest must emit its summary event"
        );
    }
}
