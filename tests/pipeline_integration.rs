//! Feature-pipeline integration: schema stability, leakage guards, and
//! the relationship between census filters and dataset contents.

use features::{FeatureConfig, FeatureExtractor, NgramVocabulary};
use simtime::Duration;
use telemetry::{Census, Edition, Fleet, FleetConfig, LifespanClass, RegionId};

fn fleet(region: RegionId, scale: f64, seed: u64) -> Fleet {
    Fleet::generate(FleetConfig::new(
        telemetry::RegionConfig::canonical(region).scaled(scale),
        seed,
    ))
}

#[test]
fn schema_is_stable_across_fleets_and_regions() {
    let f1 = fleet(RegionId::Region1, 0.05, 1);
    let f2 = fleet(RegionId::Region3, 0.05, 2);
    let c1 = Census::new(&f1);
    let c2 = Census::new(&f2);
    let e1 = FeatureExtractor::new(&c1, FeatureConfig::default());
    let e2 = FeatureExtractor::new(&c2, FeatureConfig::default());
    assert_eq!(e1.feature_names(), e2.feature_names());
}

#[test]
fn dataset_excludes_ephemeral_and_undecidable() {
    let f = fleet(RegionId::Region1, 0.08, 3);
    let census = Census::new(&f);
    let population = census.prediction_population(2.0);
    for &idx in &population {
        let db = &f.databases[idx];
        let class = census.classify(db).expect("decidable");
        assert_ne!(class, LifespanClass::Ephemeral);
        // Alive at prediction time.
        assert!(db.alive_at(db.created_at + Duration::days(2)));
    }
    // Every ephemeral database is excluded.
    for (idx, db) in f.databases.iter().enumerate() {
        if census.classify(db) == Some(LifespanClass::Ephemeral) {
            assert!(!population.contains(&idx));
        }
    }
}

#[test]
fn features_do_not_leak_the_future() {
    // Censor a record's own drop time out of its features: two records
    // identical up to day 2 but dropping at day 3 vs day 300 must
    // produce identical feature vectors. We emulate this by checking
    // that features only read the 2-day prefix: recompute features with
    // the record's drop erased and compare.
    let f = fleet(RegionId::Region1, 0.08, 4);
    let census = Census::new(&f);
    let extractor = FeatureExtractor::new(&census, FeatureConfig::default());

    let mut mutated = f.clone();
    for db in &mut mutated.databases {
        // Push every drop far beyond the window: the observable 2-day
        // prefix (creation time, names, sizes, SLO prefix) is untouched
        // because the generator fixed those before the drop was known…
        // except SLO histories, which extend over the observed life.
        // Truncate them to the prefix to build the counterfactual.
        let horizon = db.created_at + Duration::days(2);
        db.dropped_at = None;
        db.slo_history.retain(|c| c.at <= horizon);
    }
    let census2 = Census::new(&mutated);
    let extractor2 = FeatureExtractor::new(&census2, FeatureConfig::default());

    // Subscription-history features DO legitimately depend on sibling
    // drops before Tp; to isolate per-record leakage we compare only
    // the non-history columns.
    let history_start = extractor
        .feature_names()
        .iter()
        .position(|n| n.starts_with("sub_type"))
        .unwrap();
    let mut checked = 0;
    for (idx, db) in f.databases.iter().enumerate() {
        // Only records whose drop is after the 2-day prefix are
        // feature-identical by construction.
        let (dur, event) = db.observed_lifespan(census.window_end());
        if event && dur.as_days_f64() <= 2.0 {
            continue;
        }
        let original = extractor.extract(&census, db);
        let counterfactual = extractor2.extract(&census2, &mutated.databases[idx]);
        assert_eq!(
            &original[..history_start],
            &counterfactual[..history_start],
            "record {idx} leaks its own future into non-history features"
        );
        checked += 1;
        if checked > 400 {
            break;
        }
    }
    assert!(checked > 100);
}

#[test]
fn ngram_vocabulary_is_deterministic_across_runs() {
    let f = fleet(RegionId::Region2, 0.05, 5);
    let names: Vec<&str> = f
        .databases
        .iter()
        .map(|d| d.database_name.as_str())
        .collect();
    let a = NgramVocabulary::fit(names.iter().copied(), 3, 25);
    let b = NgramVocabulary::fit(names.iter().copied(), 3, 25);
    assert_eq!(a, b);
    assert_eq!(a.len(), 25);
}

#[test]
fn per_edition_datasets_have_expected_balances() {
    // The calibration targets from DESIGN.md §5, at reduced scale with
    // loose bands.
    let f = fleet(RegionId::Region1, 0.3, 6);
    let census = Census::new(&f);
    let extractor = FeatureExtractor::new(&census, FeatureConfig::default());
    let q = |edition| {
        let (d, _) = extractor.build_dataset(&census, Some(edition));
        d.class_fraction(1)
    };
    let basic = q(Edition::Basic);
    let standard = q(Edition::Standard);
    let premium = q(Edition::Premium);
    assert!((0.55..0.85).contains(&basic), "basic q = {basic}");
    assert!((0.45..0.75).contains(&standard), "standard q = {standard}");
    assert!((0.2..0.5).contains(&premium), "premium q = {premium}");
    assert!(basic > standard && standard > premium);
}
