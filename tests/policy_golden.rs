//! `policy_golden` — golden-file regression test for the provisioning
//! decision layer.
//!
//! Runs a small fixed-seed `policybench` pipeline — scenario fleet
//! generation → scoring → decisions → sweep — and byte-compares the
//! artifact's *deterministic section* against
//! `tests/golden/policy_small.json`. The same rendering must also be
//! byte-identical across forest thread limits {1, 8} and shard counts
//! {1, 3}: the deterministic section's whole point is that execution
//! layout cannot reach it.
//!
//! Any intentional change to the scenario transforms, the feature or
//! scoring numerics, the spec, or the JSON rendering shows up here as
//! a diff. To re-bless after such a change, run:
//!
//! ```text
//! SURVDB_BLESS=1 cargo test -p bench --test policy_golden
//! ```
//!
//! and commit the updated file together with the change that moved it.

use bench::model_source::{fixture_dataset, obtain_model, ModelSpec};
use bench::policyart::{
    deterministic_policy_section, render_policy, run_policybench, validate_policy,
    PolicyBenchOptions,
};
use serve::SavedModel;
use std::path::PathBuf;

const GOLDEN_SCALE: f64 = 0.02;
const GOLDEN_SEED: u64 = 7;
const GOLDEN_GRID: usize = 5;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/policy_small.json")
}

fn golden_model(dir: &std::path::Path) -> SavedModel {
    let data = fixture_dataset(GOLDEN_SCALE, GOLDEN_SEED);
    obtain_model(
        &data,
        &ModelSpec {
            load_from: None,
            seed: GOLDEN_SEED,
            tune: false,
            save_dir: dir.to_path_buf(),
        },
    )
    .expect("golden model trains")
}

fn golden_options(dir: &std::path::Path, shards: usize) -> PolicyBenchOptions {
    PolicyBenchOptions {
        scale: GOLDEN_SCALE,
        seed: GOLDEN_SEED,
        shards,
        grid_points: GOLDEN_GRID,
        model: None,
        artifact_dir: dir.to_path_buf(),
    }
}

/// The pinned deterministic section under one (threads, shards)
/// layout.
fn golden_render(
    model: &SavedModel,
    dir: &std::path::Path,
    threads: usize,
    shards: usize,
) -> String {
    forest::set_thread_limit(Some(threads));
    let report = run_policybench(&golden_options(dir, shards), model);
    forest::set_thread_limit(None);
    let text = render_policy(&report);
    validate_policy(&text).expect("golden artifact validates");
    deterministic_policy_section(&text).expect("artifact has a deterministic section")
}

#[test]
fn small_policy_run_matches_golden_file() {
    let dir = std::env::temp_dir().join("survdb_policy_golden_test");
    let _ = std::fs::remove_dir_all(&dir);
    let model = golden_model(&dir);

    let rendered = golden_render(&model, &dir, 1, 1);
    // Execution layout must not reach the deterministic section.
    for (threads, shards) in [(8, 1), (1, 3), (8, 3)] {
        assert_eq!(
            rendered,
            golden_render(&model, &dir, threads, shards),
            "deterministic section changed under threads={threads}, shards={shards}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);

    let path = golden_path();
    if std::env::var_os("SURVDB_BLESS").is_some() {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("create tests/golden");
        }
        std::fs::write(&path, &rendered).expect("write golden file");
        println!("blessed {} ({} bytes)", path.display(), rendered.len());
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\nrun with SURVDB_BLESS=1 to generate it",
            path.display()
        )
    });
    if rendered != golden {
        let mismatch = rendered
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b);
        match mismatch {
            Some((line, (got, want))) => panic!(
                "decision-layer output drifted from {} at line {}:\n  got:  {got}\n  want: {want}\n\
                 if the change is intentional, re-bless with SURVDB_BLESS=1",
                path.display(),
                line + 1
            ),
            None => panic!(
                "decision-layer output drifted from {} (lengths {} vs {}; common prefix identical)",
                path.display(),
                rendered.len(),
                golden.len()
            ),
        }
    }
}
