//! `policy_props` — property tests pinning the decision layer's
//! contracts.
//!
//! 1. **Purity** — `policy::decide` is a pure function of the score
//!    facts and the subgroup's bands: repeated calls agree, and the
//!    result matches the closed-form band semantics.
//! 2. **Order and shard invariance** — `decide_batch` accounting is
//!    independent of row order, and merging per-shard summaries over
//!    any partition reproduces the single-pass summary exactly (the
//!    property that makes `policy.json`'s deterministic section
//!    shard-invariant).
//! 3. **Frontier monotonicity** — with free review, widening the
//!    uncertain band can only move rows from an acted cost to the
//!    oracle cost, so the sweep frontier is monotone nonincreasing and
//!    never dips below the oracle total.

use forest::{parallel::splitmix64, ConfidenceSplit};
use policy::{
    action_cost, decide, decide_batch, oracle_action, Action, ActionBands, CostModel,
    DecisionSummary, PolicySpec, SubgroupKey, SweepAccum,
};
use proptest::prelude::*;
use serve::ScoreFacts;

/// Deterministic f64 in [0, 1] from a splitmix64 stream.
fn unit_float(state: u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / ((1u64 << 53) - 1) as f64
}

fn facts(positive: f64, confident: bool) -> ScoreFacts {
    ScoreFacts {
        positive,
        predicted: (positive > 0.5) as usize,
        split: if confident {
            ConfidenceSplit::Confident
        } else {
            ConfidenceSplit::Uncertain
        },
    }
}

/// A random row corpus: (positive probability, confident, long-lived).
fn corpus(seed: u64, len: usize) -> Vec<(f64, bool, bool)> {
    (0..len as u64)
        .map(|i| {
            let p = unit_float(seed ^ (i * 977 + 1));
            let confident = !splitmix64(seed ^ (i * 31 + 7)).is_multiple_of(3);
            let long = splitmix64(seed ^ (i * 131 + 13)) % 5 < 2;
            (p, confident, long)
        })
        .collect()
}

/// A seeded Fisher–Yates permutation of `0..len`.
fn permutation(seed: u64, len: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..len).collect();
    for i in (1..len).rev() {
        let j = (splitmix64(seed ^ i as u64) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// A random cost model constructed so the oracle action is min-cost
/// for both classes (the precondition of the monotonicity property):
/// deferring a short-lived database beats provisioning it, and
/// pre-provisioning a long-lived one beats deferring or standard-
/// provisioning it.
fn oracle_min_costs(seed: u64) -> CostModel {
    let draw = |salt: u64| splitmix64(seed ^ salt) % 50;
    let defer = draw(1);
    let gap = draw(2);
    let carry = draw(3);
    CostModel {
        defer_cost: defer,
        provision_cost: defer + gap,
        premium_carry_cost: carry,
        migration_cost: carry + draw(4),
        late_penalty: gap + draw(5),
        waste_penalty: draw(6),
        review_cost: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn decide_is_pure_and_matches_band_semantics(
        seed in 1u64..=u64::MAX / 2,
        lo in 0.0f64..0.5,
        width in 0.01f64..0.5,
    ) {
        let confident = splitmix64(seed ^ 0xC0_17).is_multiple_of(2);
        let spec = PolicySpec {
            bands: ActionBands {
                defer_below: lo,
                preprovision_above: lo + width,
            },
            ..PolicySpec::default()
        };
        let subgroup = SubgroupKey::new("Region-1", "Standard");
        let p = unit_float(seed);
        let f = facts(p, confident);
        let action = decide(&f, &spec, &subgroup);
        // Pure: the same inputs always produce the same action.
        prop_assert_eq!(action, decide(&f, &spec, &subgroup));
        // Closed-form band semantics.
        let expected = if !confident {
            Action::Review
        } else if p <= spec.bands.defer_below {
            Action::DeferPremiumPlacement
        } else if p >= spec.bands.preprovision_above {
            Action::PreProvisionLongLived
        } else {
            Action::StandardProvision
        };
        prop_assert_eq!(action, expected, "p = {}", p);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn batch_accounting_is_order_and_shard_invariant(
        seed in 1u64..=u64::MAX / 2,
        len in 1usize..120,
        shards in 1usize..9,
    ) {
        let spec = PolicySpec::default();
        let subgroup = SubgroupKey::new("Region-2", "Basic");
        let rows = corpus(seed, len);
        let built: Vec<(ScoreFacts, bool)> = rows
            .iter()
            .map(|&(p, confident, long)| (facts(p, confident), long))
            .collect();
        let (f, l): (Vec<_>, Vec<_>) = built.into_iter().unzip();
        let (_, whole) = decide_batch(&f, &l, &spec, &subgroup);

        // Row order: a seeded permutation reproduces the summary.
        let order = permutation(seed, len);
        let fp: Vec<ScoreFacts> = order.iter().map(|&i| f[i]).collect();
        let lp: Vec<bool> = order.iter().map(|&i| l[i]).collect();
        let (_, permuted) = decide_batch(&fp, &lp, &spec, &subgroup);
        prop_assert_eq!(&permuted, &whole, "permuted rows changed the summary");

        // Sharding: contiguous shards merged in order reproduce the
        // summary, whatever the shard count.
        let mut merged = DecisionSummary::default();
        let base = len / shards;
        let extra = len % shards;
        let mut start = 0;
        for s in 0..shards {
            let take = base + usize::from(s < extra);
            let (_, part) =
                decide_batch(&f[start..start + take], &l[start..start + take], &spec, &subgroup);
            merged.merge(&part);
            start += take;
        }
        prop_assert_eq!(start, len);
        prop_assert_eq!(&merged, &whole, "sharded merge changed the summary");

        // The counting identities the artifact validator enforces.
        prop_assert_eq!(whole.rows(), len as u64);
        let table_total: u64 = whole.table.values().flatten().sum();
        prop_assert_eq!(table_total, whole.rows());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn sweep_frontier_is_monotone_toward_the_oracle_with_free_review(
        seed in 1u64..=u64::MAX / 2,
        len in 1usize..100,
        points in 2usize..12,
    ) {
        let costs = oracle_min_costs(seed);
        let rows = corpus(seed, len);
        let mut accum = SweepAccum::new(points);
        let mut oracle_total = 0u64;
        for &(p, _confident, long) in &rows {
            accum.observe(p, long, &costs);
            oracle_total += action_cost(oracle_action(long), long, &costs);
        }
        let frontier = accum.points();
        prop_assert_eq!(frontier.len(), forest::threshold_grid(points).len());
        for w in frontier.windows(2) {
            prop_assert!(
                w[1].total_cost <= w[0].total_cost,
                "widening the uncertain band raised the cost: {} -> {} (t {} -> {})",
                w[0].total_cost,
                w[1].total_cost,
                w[0].threshold,
                w[1].threshold
            );
            prop_assert!(
                w[1].confident_rows <= w[0].confident_rows,
                "confident rows grew with the threshold"
            );
        }
        for point in &frontier {
            prop_assert!(
                point.total_cost >= oracle_total,
                "threshold {} undercut the oracle: {} < {oracle_total}",
                point.threshold,
                point.total_cost
            );
        }
        // Sweep merge over a partition reproduces the single pass.
        let mut merged = SweepAccum::new(points);
        let chunk = 1 + (splitmix64(seed ^ 0xC0FFEE) as usize % len.max(1));
        for slab in rows.chunks(chunk) {
            let mut shard = SweepAccum::new(points);
            for &(p, _, long) in slab {
                shard.observe(p, long, &costs);
            }
            merged.merge(&shard);
        }
        prop_assert_eq!(&merged, &accum);
    }
}
