//! Loopback end-to-end tests for `survd`'s resilience features,
//! pinning this PR's acceptance properties:
//!
//! 1. **Typed refusals under chaos** — every chaos class driven at
//!    rate 1.0 against a live daemon gets exactly its contracted
//!    reaction (400/408/413 typed refusal, 200 for slow-loris, silence
//!    for mid-body resets), and the daemon keeps serving clean
//!    requests afterwards.
//! 2. **Crash-safe hot-swap** — reloads under concurrent scoring load
//!    drop zero admitted requests; every 200 body is bitwise identical
//!    to the offline scores of the generation stamped on it, so no
//!    batch ever mixes generations.
//! 3. **Corrupt candidates are refused** — a corrupted reload body
//!    answers 422 with a typed error while the old generation keeps
//!    serving, byte-for-byte unchanged.
//! 4. **Graceful degradation** — with a request deadline configured
//!    and the batcher stalled, late jobs shed with 503 + `Retry-After`
//!    instead of wasting scoring slots, and the daemon recovers as
//!    soon as the stall clears.
//! 5. **Sweep determinism** — the chaos outcome ledger for a fixed
//!    seed renders a byte-identical deterministic artifact section
//!    across a 1-worker and an 8-worker daemon.
//!
//! Tests share the process-global forest thread limit and obs registry
//! slot, so they serialize on one mutex.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};
use survd::chaos::{self, ChaosClass, ChaosPlan, Expect, Outcome};
use survd::{BatchPolicy, Client, RowScore, ServerConfig};

fn serialized() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Deterministic synthetic dataset shared by every fixture model.
fn dataset() -> forest::Dataset {
    let mut data = forest::Dataset::new(vec!["x0".into(), "x1".into(), "x2".into()], 2);
    for i in 0..200 {
        let x0 = i as f64 / 200.0;
        let x1 = ((i * 53) % 200) as f64 / 200.0;
        let x2 = ((i * 17) % 23) as f64 / 23.0;
        data.push(vec![x0, x1, x2], (x0 * 0.7 + x1 * 0.3 > 0.5) as usize);
    }
    data
}

/// Trains a model over [`dataset`] with the given seed. Different
/// seeds give different forests over the *same* feature schema — the
/// shape hot-swap accepts.
fn model_with_seed(seed: u64) -> serve::SavedModel {
    let data = dataset();
    let params = forest::RandomForestParams {
        n_trees: 10,
        ..forest::RandomForestParams::default()
    };
    let forest = forest::RandomForest::fit(&data, &params, seed);
    serve::SavedModel::new(
        forest,
        serve::ModelMeta {
            positive_fraction: data.class_fraction(1),
            seed,
            params,
            grid: None,
        },
    )
}

fn fixture() -> &'static (serve::SavedModel, Vec<Vec<f64>>) {
    static FIXTURE: OnceLock<(serve::SavedModel, Vec<Vec<f64>>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let data = dataset();
        let corpus = (0..data.len()).map(|i| data.row(i)).collect();
        (model_with_seed(11), corpus)
    })
}

fn connect(addr: std::net::SocketAddr) -> Client {
    Client::connect(addr, Some(Duration::from_secs(30))).expect("connect to daemon")
}

/// Offline per-row scores for `model` over `corpus`, in wire form.
fn offline_scores(model: &serve::SavedModel, corpus: &[Vec<f64>]) -> Vec<RowScore> {
    serve::score_rows(&model.forest, corpus, model.meta.positive_fraction)
        .rows
        .iter()
        .map(RowScore::from_scored)
        .collect()
}

#[test]
fn reload_generations_score_bitwise_identically_under_the_kernel() {
    let _guard = serialized();
    let (initial, corpus) = fixture();
    let replacement = model_with_seed(29);

    // Per-model truth through the prepared kernel (the path the
    // daemon serves from), cross-checked row by row against the
    // recursive walk before the daemon is involved at all.
    let models = [initial.clone(), replacement.clone()];
    let truth: Vec<Vec<RowScore>> = models
        .iter()
        .map(|m| {
            let batch = serve::score_rows_with(&m.kernel(), corpus, m.meta.positive_fraction);
            for (row, scored) in corpus.iter().zip(&batch.rows) {
                assert_eq!(
                    scored.probabilities,
                    m.forest.predict_proba(row),
                    "kernel diverged from the recursive walk offline"
                );
            }
            batch.rows.iter().map(RowScore::from_scored).collect()
        })
        .collect();

    let handle =
        survd::start(initial.clone(), ServerConfig::default(), None).expect("start daemon");
    let mut client = connect(handle.addr());
    let renders = [initial.render(), replacement.render()];

    // Generation g serves models[(g + 1) % 2]; score the whole corpus
    // under each generation and hold the wire scores to the offline
    // kernel truth, bitwise, across repeated hot-swaps.
    for swap in 0..4usize {
        let response = client
            .score(&survd::render_score_request(corpus))
            .expect("score request");
        assert_eq!(response.status, 200);
        let parsed = survd::parse_score_response(response.text().expect("utf8"))
            .expect("valid score response");
        assert_eq!(parsed.generation, swap as u64 + 1);
        let model_idx = (parsed.generation as usize + 1) % 2;
        assert_eq!(parsed.threshold, models[model_idx].threshold());
        assert_eq!(
            parsed.results, truth[model_idx],
            "generation {} diverged from its offline kernel scores",
            parsed.generation
        );

        let candidate = &renders[(swap + 1) % 2];
        let reload = client
            .request("POST", "/reload", candidate.as_bytes())
            .expect("reload request");
        assert_eq!(reload.status, 200, "{:?}", reload.text());
    }

    let stats = handle.shutdown();
    assert_eq!(stats.reloads_ok, 4);
    assert_eq!(stats.reloads_rejected, 0);
}

#[test]
fn every_chaos_class_gets_its_contracted_reaction() {
    let _guard = serialized();
    let (model, corpus) = fixture();
    let config = ServerConfig {
        workers: 2,
        idle_timeout_ms: 20,
        http: survd::http::HttpLimits {
            max_stall_reads: 8,
            ..survd::http::HttpLimits::default()
        },
        ..ServerConfig::default()
    };
    let max_body = config.http.max_body_bytes;
    let handle = survd::start(model.clone(), config, None).expect("start daemon");
    let addr = handle.addr();
    let expected = offline_scores(model, corpus);
    let threshold = model.threshold();

    let exchanges_per_class = 4u64;
    for class in ChaosClass::ALL {
        let plan = ChaosPlan::single(class, 1.0, 0xC0FFEE);
        let expect = chaos::expected(Some(class));
        for ordinal in 0..exchanges_per_class {
            let idx = (ordinal as usize * 3) % corpus.len();
            let body = survd::render_score_request(&[corpus[idx].clone()]);
            let outcome = chaos::drive(addr, &plan, ordinal, &body, max_body + 1, 5_000);
            match (&outcome, &expect) {
                (Outcome::Response { status, body }, Expect::Status(want)) => {
                    assert_eq!(
                        status, want,
                        "{class} ordinal {ordinal} answered the wrong status"
                    );
                    if *status == 200 {
                        let parsed = survd::parse_score_response(body).expect("valid 200 body");
                        assert_eq!(parsed.threshold, threshold);
                        assert_eq!(
                            parsed.results,
                            vec![expected[idx].clone()],
                            "{class} 200 body diverged from offline scoring"
                        );
                    }
                }
                (Outcome::NoResponse, Expect::NoResponse) => {}
                (outcome, expect) => {
                    panic!("{class} ordinal {ordinal}: got {outcome:?}, expected {expect:?}")
                }
            }
        }
        // The daemon survived the class: a clean request still works.
        let mut probe = connect(addr);
        let response = probe
            .score(&survd::render_score_request(&[corpus[0].clone()]))
            .expect("clean request after chaos");
        assert_eq!(response.status, 200, "daemon degraded after {class}");
    }

    let stats = handle.shutdown();
    assert_eq!(stats.score_shed, 0, "sequential chaos must never shed");
    // Truncated, garbage, and malformed-JSON classes each produced
    // typed 400s; stalls produced 408s; oversize produced 413s.
    assert!(stats.bad_requests >= 3 * exchanges_per_class);
}

#[test]
fn hot_swap_under_load_never_mixes_generations() {
    let _guard = serialized();
    let (initial, corpus) = fixture();
    let replacement = model_with_seed(29);
    assert_ne!(
        initial.render(),
        replacement.render(),
        "fixture models must differ for the swap to be observable"
    );

    // Offline truth per generation: odd generations serve the initial
    // model, even generations the replacement (we alternate below).
    let by_generation = [
        offline_scores(initial, corpus),
        offline_scores(&replacement, corpus),
    ];
    let thresholds = [initial.threshold(), replacement.threshold()];

    let config = ServerConfig {
        workers: 4,
        batch: BatchPolicy {
            max_rows: 16,
            max_wait_ms: 1,
        },
        ..ServerConfig::default()
    };
    let handle = survd::start(initial.clone(), config, None).expect("start daemon");
    let addr = handle.addr();

    // Scoring clients hammer the daemon while the main thread reloads.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut clients = Vec::new();
    for c in 0..3usize {
        let stop = std::sync::Arc::clone(&stop);
        let by_generation = by_generation.clone();
        clients.push(std::thread::spawn(move || {
            let (_, corpus) = fixture();
            let mut client = connect(addr);
            let mut scored = 0u64;
            let mut r = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let indices: Vec<usize> = (0..3)
                    .map(|j| (c * 61 + r * 7 + j) % corpus.len())
                    .collect();
                let rows: Vec<Vec<f64>> = indices.iter().map(|&i| corpus[i].clone()).collect();
                let response = client
                    .score(&survd::render_score_request(&rows))
                    .expect("score request during reloads");
                assert_eq!(
                    response.status, 200,
                    "admitted request dropped during reload"
                );
                let parsed = survd::parse_score_response(response.text().expect("utf8"))
                    .expect("valid response");
                // The generation stamp decides which offline truth the
                // body must match — bitwise. A mixed-generation batch
                // would diverge from both.
                let truth = &by_generation[(parsed.generation as usize + 1) % 2];
                assert_eq!(
                    parsed.threshold,
                    thresholds[(parsed.generation as usize + 1) % 2]
                );
                let want: Vec<RowScore> = indices.iter().map(|&i| truth[i].clone()).collect();
                assert_eq!(
                    parsed.results, want,
                    "response diverged from generation {}'s offline scores",
                    parsed.generation
                );
                scored += 1;
                r += 1;
            }
            scored
        }));
    }

    // Alternate the two models through several reloads under load.
    let mut admin = connect(addr);
    let renders = [initial.render(), replacement.render()];
    for swap in 0..6usize {
        std::thread::sleep(Duration::from_millis(15));
        let candidate = &renders[(swap + 1) % 2];
        let response = admin
            .request("POST", "/reload", candidate.as_bytes())
            .expect("reload request");
        assert_eq!(response.status, 200, "{:?}", response.text());
        assert_eq!(handle.generation(), swap as u64 + 2);
    }

    std::thread::sleep(Duration::from_millis(15));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let mut total = 0u64;
    for client in clients {
        total += client.join().expect("client thread");
    }
    assert!(total > 0, "clients never scored anything");

    let stats = handle.shutdown();
    assert_eq!(stats.reloads_ok, 6);
    assert_eq!(stats.reloads_rejected, 0);
    assert_eq!(stats.score_ok, total, "every admitted request was answered");
}

#[test]
fn corrupt_reload_is_refused_while_old_generation_serves() {
    let _guard = serialized();
    let (model, corpus) = fixture();
    let handle = survd::start(model.clone(), ServerConfig::default(), None).expect("start daemon");
    let addr = handle.addr();
    let expected = offline_scores(model, corpus);

    let before = {
        let mut client = connect(addr);
        let response = client
            .score(&survd::render_score_request(&[corpus[5].clone()]))
            .expect("score before reload");
        assert_eq!(response.status, 200);
        response.body.clone()
    };

    let mut admin = connect(addr);
    let rendered = model.render();
    // Three corruption shapes: wrong schema string, truncated JSON,
    // and a schema-compatible model with a different feature set.
    let wrong_schema = rendered.replace("survdb-model/v1", "survdb-model/v9");
    let truncated = rendered[..rendered.len() / 2].to_string();
    for (label, corrupt) in [("wrong schema", &wrong_schema), ("truncated", &truncated)] {
        let response = admin
            .request("POST", "/reload", corrupt.as_bytes())
            .expect("reload request");
        assert_eq!(
            response.status, 422,
            "{label}: corrupt model must be refused"
        );
        let text = response.text().expect("utf8 error body");
        assert!(
            text.contains("candidate model rejected"),
            "{label}: untyped refusal body: {text}"
        );
    }
    assert_eq!(handle.generation(), 1, "no corrupt candidate may swap in");

    // The old generation serves on, byte-for-byte unchanged.
    let mut client = connect(addr);
    let response = client
        .score(&survd::render_score_request(&[corpus[5].clone()]))
        .expect("score after refused reloads");
    assert_eq!(response.status, 200);
    assert_eq!(
        response.body, before,
        "refused reloads must not perturb serving"
    );
    let parsed = survd::parse_score_response(response.text().expect("utf8")).expect("valid");
    assert_eq!(parsed.generation, 1);
    assert_eq!(parsed.results, vec![expected[5].clone()]);

    let stats = handle.shutdown();
    assert_eq!(stats.reloads_rejected, 2);
    assert_eq!(stats.reloads_ok, 0);
}

#[test]
fn deadline_sheds_late_work_with_503_and_recovers() {
    let _guard = serialized();
    let (model, corpus) = fixture();
    // One worker per in-flight client: each worker parks in its
    // response slot while the batcher is paused, so all three jobs
    // must be admitted concurrently.
    let config = ServerConfig {
        workers: 4,
        request_deadline_ms: 30,
        ..ServerConfig::default()
    };
    let handle = survd::start(model.clone(), config, None).expect("start daemon");
    let addr = handle.addr();

    // Stall the batcher so admitted jobs age past their deadline.
    handle.pause_batcher();
    let mut clients = Vec::new();
    for row in corpus.iter().take(3).cloned() {
        clients.push(std::thread::spawn(move || {
            let mut client = connect(addr);
            let response = client
                .score(&survd::render_score_request(&[row]))
                .expect("request");
            let retry_after = response.header("retry-after").map(str::to_string);
            (response.status, retry_after)
        }));
    }
    // Wait until all three jobs are actually queued, then let them age
    // well past the 30 ms deadline before resuming: the flush must
    // shed them as degraded rather than score stale work.
    let admitted_by = Instant::now() + Duration::from_secs(10);
    while handle.stats().queue_peak < 3 {
        assert!(Instant::now() < admitted_by, "jobs never queued");
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(120));
    handle.resume_batcher();

    for client in clients {
        let (status, retry_after) = client.join().expect("client thread");
        assert_eq!(status, 503, "late work must shed with 503");
        assert_eq!(
            retry_after.as_deref(),
            Some("1"),
            "degraded responses must carry Retry-After"
        );
    }

    // Recovery: with the batcher live again, fresh requests score
    // normally and bitwise-match offline truth.
    let expected = offline_scores(model, corpus);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut client = connect(addr);
        let response = client
            .score(&survd::render_score_request(&[corpus[7].clone()]))
            .expect("request after recovery");
        if response.status == 200 {
            let parsed =
                survd::parse_score_response(response.text().expect("utf8")).expect("valid");
            assert_eq!(parsed.results, vec![expected[7].clone()]);
            break;
        }
        assert!(Instant::now() < deadline, "daemon never recovered");
        std::thread::sleep(Duration::from_millis(10));
    }

    let stats = handle.shutdown();
    assert_eq!(stats.score_degraded, 3, "exactly the stalled jobs degrade");
    assert_eq!(stats.score_unavailable, 0);
}

/// Runs a miniature chaos sweep (3 classes x 1 rate, sequential) and
/// returns the rendered deterministic artifact section.
fn mini_sweep(workers: usize, queue: usize, seed: u64) -> String {
    let (model, corpus) = fixture();
    let config = ServerConfig {
        workers,
        queue_capacity: queue,
        idle_timeout_ms: 20,
        http: survd::http::HttpLimits {
            max_stall_reads: 8,
            ..survd::http::HttpLimits::default()
        },
        ..ServerConfig::default()
    };
    let max_body = config.http.max_body_bytes;
    let handle = survd::start(model.clone(), config, None).expect("start daemon");
    let addr = handle.addr();

    let classes = [
        None,
        Some(ChaosClass::TruncatedFrame),
        Some(ChaosClass::MalformedJson),
    ];
    let requests = 8u64;
    let mut cells = Vec::new();
    for class in classes {
        let plan = match class {
            None => ChaosPlan::none(seed),
            Some(c) => ChaosPlan::single(c, 0.5, seed),
        };
        let mut cell = survd::CellOutcome {
            class: class.map_or("none".to_string(), |c| c.name().to_string()),
            rate: if class.is_some() { 0.5 } else { 0.0 },
            sent: requests,
            ok: 0,
            shed: 0,
            faulted: 0,
            degraded: 0,
            mismatches: 0,
        };
        for ordinal in 0..requests {
            let idx = ordinal as usize % corpus.len();
            let body = survd::render_score_request(&[corpus[idx].clone()]);
            match chaos::drive(addr, &plan, ordinal, &body, max_body + 1, 5_000) {
                Outcome::Response { status: 200, .. } => cell.ok += 1,
                Outcome::Response { status: 429, .. } => cell.shed += 1,
                Outcome::Response { status: 503, .. } => cell.degraded += 1,
                Outcome::Response { .. } | Outcome::NoResponse => cell.faulted += 1,
                Outcome::Transport(e) => panic!("transport failure: {e}"),
            }
        }
        cells.push(cell);
    }
    handle.shutdown();

    let config = survd::ResilienceConfig {
        requests_per_cell: requests as usize,
        seed,
        workers,
        queue_capacity: queue,
    };
    let reload = survd::ReloadOutcome {
        attempted: 0,
        admitted: 0,
        rejected: 0,
        generations: 1,
    };
    survd::deterministic_resilience_section(&config, model, &cells, &reload)
}

#[test]
fn sweep_outcomes_are_byte_identical_across_worker_counts() {
    let _guard = serialized();
    let narrow = mini_sweep(1, 4, 0x5EED);
    let wide = mini_sweep(8, 64, 0x5EED);
    assert_eq!(
        narrow, wide,
        "worker count leaked into deterministic chaos outcomes"
    );
    let replay = mini_sweep(1, 4, 0x5EED);
    assert_eq!(narrow, replay, "same seed must replay byte-identically");
}
