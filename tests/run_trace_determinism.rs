//! Pins the run trace's determinism contract: the `deterministic`
//! section must be byte-identical across consecutive runs and across
//! thread limits, and the full rendered trace must pass the schema
//! validator the `trace-schema-check` binary applies in CI.
//!
//! Everything runs inside one `#[test]` because the registry slot is
//! process-wide: concurrent installs from parallel test threads would
//! cross-contaminate the snapshots being compared.

use forest::parallel::{set_thread_limit, thread_limit};
use survdb::experiment::{Experiment, ExperimentConfig, GridPreset};
use telemetry::{
    reconstruct_records_lenient, Census, EventStream, FaultInjector, FaultPlan, Fleet, FleetConfig,
    RecoveryPolicy, RegionConfig,
};

/// One instrumented pass over every layer: fleet generation, fault
/// injection, lenient ingest, feature extraction, the repeated
/// train/evaluate experiment (which fans out over the parallel work
/// queue, so thread scheduling varies run to run), and a kernel
/// scoring pass (so the `serve.kernel.*` counters are covered by the
/// determinism contract).
fn traced_pipeline() -> obs::Snapshot {
    let registry = obs::Registry::with_stderr_level(obs::Level::Error);
    let guard = registry.install();

    let fleet = Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.08), 11));
    let stream = EventStream::of_fleet(&fleet);
    let plan = FaultPlan {
        drop_size: 0.10,
        drop_utilization: 0.10,
        duplicate: 0.05,
        reorder: 0.05,
        orphan: 0.02,
        ..FaultPlan::none(77)
    };
    let (degraded, _faults) = FaultInjector::new(plan).inject(&stream);
    let (_records, _report) = reconstruct_records_lenient(&degraded, &RecoveryPolicy::default());

    let census = Census::new(&fleet);
    let experiment = Experiment::new(ExperimentConfig {
        repetitions: 2,
        grid: GridPreset::Off,
        ..ExperimentConfig::default()
    });
    let _result = experiment.run(&census, None);

    // Kernel scoring pass: node-step and row-tile counts are a pure
    // function of (model, rows, tile constants), so they belong in
    // the deterministic section alongside the other counters.
    let mut data = forest::Dataset::new(vec!["x0".into(), "x1".into()], 2);
    for i in 0..150 {
        let x0 = i as f64 / 150.0;
        let x1 = ((i * 31) % 150) as f64 / 150.0;
        data.push(vec![x0, x1], (x0 + 0.2 * x1 > 0.55) as usize);
    }
    let params = forest::RandomForestParams {
        n_trees: 6,
        ..forest::RandomForestParams::default()
    };
    let model = forest::RandomForest::fit(&data, &params, 13);
    let _scored = serve::score_batch(&model, &data, data.class_fraction(1));

    drop(guard);
    registry.snapshot()
}

#[test]
fn deterministic_section_is_stable_across_runs_and_thread_counts() {
    let baseline = traced_pipeline();
    assert!(
        !baseline.counters.is_empty(),
        "instrumented pipeline recorded no counters"
    );
    assert!(
        baseline.spans.contains_key("experiment"),
        "experiment span missing; got {:?}",
        baseline.spans.keys().collect::<Vec<_>>()
    );
    assert!(
        baseline.spans.contains_key("experiment/repetition"),
        "repetition spans must nest under the experiment span"
    );
    for counter in ["serve.kernel.node_steps", "serve.kernel.row_tiles"] {
        assert!(
            baseline.counters.get(counter).copied().unwrap_or(0) > 0,
            "kernel counter {counter} missing from the traced pipeline; got {:?}",
            baseline.counters.keys().collect::<Vec<_>>()
        );
    }
    let det = obs::trace::deterministic_section(&baseline);

    // Consecutive runs agree byte for byte.
    let again = obs::trace::deterministic_section(&traced_pipeline());
    assert_eq!(det, again, "deterministic section drifted between runs");

    // A serial run and a wide run agree too: counters derive from
    // seeded index-slotted work, span paths propagate across the
    // worker threads, and thread attribution stays out of the
    // deterministic section.
    set_thread_limit(Some(1));
    let serial = obs::trace::deterministic_section(&traced_pipeline());
    set_thread_limit(Some(8));
    let wide = obs::trace::deterministic_section(&traced_pipeline());
    set_thread_limit(None);
    assert_eq!(
        det, serial,
        "1-thread run changed the deterministic section"
    );
    assert_eq!(det, wide, "8-thread run changed the deterministic section");

    // The full rendering (including the nondeterministic side) passes
    // the same structural validation CI applies to emitted artifacts.
    let text = obs::trace::render_run_trace("test", &baseline, thread_limit());
    obs::trace::validate_run_trace(&text).expect("rendered run trace must be schema-valid");
}
