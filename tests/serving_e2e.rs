//! Loopback end-to-end tests for the `survd` scoring daemon: real TCP
//! connections against a running server, pinning the PR's three
//! acceptance properties plus endpoint behavior.
//!
//! 1. **Coalescing transparency** — daemon responses are bitwise
//!    identical to offline `serve::score_rows`, across worker counts
//!    and batch policies.
//! 2. **Deterministic load-shedding** — with the batcher paused and
//!    queue capacity K, exactly K concurrent requests are admitted and
//!    every further one sheds with 429 + `Retry-After`; the admission
//!    queue's high-water mark never exceeds K (bounded memory).
//! 3. **Graceful drain** — shutdown scores and answers every admitted
//!    request before returning, even from a paused backlog.
//!
//! Tests share the process-global forest thread limit and the obs
//! registry slot, so they serialize on one mutex.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};
use survd::{BatchPolicy, Client, RowScore, ServerConfig};

/// Serializes the tests: they touch process-global state (the obs
/// registry slot) and each spins up threads; running them one at a
/// time keeps assertions about counters and queues exact.
fn serialized() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A small deterministic model + scoring corpus, built once.
fn fixture() -> &'static (serve::SavedModel, Vec<Vec<f64>>) {
    static FIXTURE: OnceLock<(serve::SavedModel, Vec<Vec<f64>>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut data = forest::Dataset::new(vec!["x0".into(), "x1".into(), "x2".into()], 2);
        for i in 0..200 {
            let x0 = i as f64 / 200.0;
            let x1 = ((i * 53) % 200) as f64 / 200.0;
            let x2 = ((i * 17) % 23) as f64 / 23.0;
            data.push(vec![x0, x1, x2], (x0 * 0.7 + x1 * 0.3 > 0.5) as usize);
        }
        let params = forest::RandomForestParams {
            n_trees: 10,
            ..forest::RandomForestParams::default()
        };
        let forest = forest::RandomForest::fit(&data, &params, 11);
        let model = serve::SavedModel::new(
            forest,
            serve::ModelMeta {
                positive_fraction: data.class_fraction(1),
                seed: 11,
                params,
                grid: None,
            },
        );
        let corpus = (0..data.len()).map(|i| data.row(i)).collect();
        (model, corpus)
    })
}

fn connect(addr: std::net::SocketAddr) -> Client {
    Client::connect(addr, Some(Duration::from_secs(30))).expect("connect to daemon")
}

#[test]
fn daemon_matches_offline_scoring_across_configs() {
    let _guard = serialized();
    let (model, corpus) = fixture();
    let q = model.meta.positive_fraction;
    let offline = serve::score_rows(&model.forest, corpus, q);
    let expected: Vec<RowScore> = offline.rows.iter().map(RowScore::from_scored).collect();

    // Worker count and batch policy are the two axes coalescing varies
    // over; none of them may leak into response bytes.
    let configs = [(1usize, 1usize, 0u64), (4, 7, 2), (8, 64, 1)];
    for &(workers, max_rows, max_wait_ms) in &configs {
        let config = ServerConfig {
            workers,
            batch: BatchPolicy {
                max_rows,
                max_wait_ms,
            },
            ..ServerConfig::default()
        };
        let handle = survd::start(model.clone(), config, None).expect("start daemon");
        let addr = handle.addr();

        let connections = 3usize;
        let requests_per_connection = 8usize;
        let mut clients = Vec::new();
        for c in 0..connections {
            let expected = expected.clone();
            let threshold = model.threshold();
            clients.push(std::thread::spawn(move || {
                let (_, corpus) = fixture();
                let mut client = connect(addr);
                for r in 0..requests_per_connection {
                    // Request sizes 1..=5, rows drawn deterministically.
                    let size = (c + r) % 5 + 1;
                    let start = (c * 31 + r * 7) % corpus.len();
                    let indices: Vec<usize> =
                        (0..size).map(|j| (start + j) % corpus.len()).collect();
                    let rows: Vec<Vec<f64>> = indices.iter().map(|&i| corpus[i].clone()).collect();
                    let response = client
                        .score(&survd::render_score_request(&rows))
                        .expect("score request");
                    assert_eq!(response.status, 200, "{:?}", response.text());
                    let parsed = survd::parse_score_response(response.text().expect("utf8"))
                        .expect("valid response");
                    assert_eq!(parsed.threshold, threshold, "threshold drifted");
                    assert_eq!(parsed.generation, 1, "no reload happened in this test");
                    let want: Vec<RowScore> =
                        indices.iter().map(|&i| expected[i].clone()).collect();
                    // Bitwise: f64 == through shortest-roundtrip JSON.
                    assert_eq!(
                        parsed.results, want,
                        "config ({workers}, {max_rows}, {max_wait_ms}) connection {c} request {r}"
                    );
                }
            }));
        }
        for client in clients {
            client.join().expect("client thread");
        }
        let stats = handle.shutdown();
        assert_eq!(
            stats.score_ok,
            (connections * requests_per_connection) as u64
        );
        assert_eq!(stats.score_shed, 0);
        assert_eq!(stats.score_unavailable, 0);
        assert!(stats.batches >= 1);
    }
}

#[test]
fn overload_sheds_exactly_beyond_queue_capacity() {
    let _guard = serialized();
    let (model, corpus) = fixture();
    let capacity = 4usize;
    let in_flight = 12usize;
    let config = ServerConfig {
        workers: 8,
        queue_capacity: capacity,
        ..ServerConfig::default()
    };
    let handle = survd::start(model.clone(), config, None).expect("start daemon");
    let addr = handle.addr();

    // Freeze the batcher first: admitted jobs will sit in the queue,
    // so admission fills to exactly `capacity` and stays there.
    handle.pause_batcher();

    let mut clients = Vec::new();
    for c in 0..in_flight {
        let row = corpus[c % corpus.len()].clone();
        clients.push(std::thread::spawn(move || {
            let mut client = connect(addr);
            let response = client
                .score(&survd::render_score_request(&[row]))
                .expect("request");
            let retry_after = response.header("retry-after").map(str::to_string);
            (response.status, retry_after)
        }));
    }

    // Wait until the excess requests have all shed (the admitted ones
    // are parked in their response slots).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = handle.stats();
        if stats.score_shed == (in_flight - capacity) as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "sheds never reached {}: {stats:?}",
            in_flight - capacity
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // The backlog is visible and bounded while paused.
    let mut probe = connect(addr);
    let health = probe.request("GET", "/healthz", b"").expect("healthz");
    assert_eq!(health.status, 200);
    let health_json = obs::jsonv::parse(health.text().expect("utf8")).expect("healthz json");
    assert_eq!(
        health_json.get("queue_depth"),
        Some(&obs::jsonv::JsonV::UInt(capacity as u64))
    );

    // Unfreeze: the four queued requests complete normally.
    handle.resume_batcher();
    let mut ok = 0usize;
    let mut shed = 0usize;
    for client in clients {
        let (status, retry_after) = client.join().expect("client thread");
        match status {
            200 => ok += 1,
            429 => {
                shed += 1;
                assert_eq!(retry_after.as_deref(), Some("1"), "429 without Retry-After");
            }
            other => panic!("unexpected status {other}"),
        }
    }
    assert_eq!(ok, capacity, "exactly the queue capacity completes");
    assert_eq!(shed, in_flight - capacity, "every excess request sheds");

    let stats = handle.shutdown();
    assert_eq!(stats.score_ok, capacity as u64);
    assert_eq!(stats.score_shed, (in_flight - capacity) as u64);
    // Bounded memory: the queue never grew past its capacity.
    assert!(
        stats.queue_peak <= capacity as u64,
        "queue peak {} exceeded capacity {capacity}",
        stats.queue_peak
    );
}

#[test]
fn shutdown_drains_every_admitted_request() {
    let _guard = serialized();
    let (model, corpus) = fixture();
    let q = model.meta.positive_fraction;
    let backlog = 6usize;
    let config = ServerConfig {
        workers: 8,
        queue_capacity: 16,
        ..ServerConfig::default()
    };
    let handle = survd::start(model.clone(), config, None).expect("start daemon");
    let addr = handle.addr();

    // Build a paused backlog of admitted requests.
    handle.pause_batcher();
    let mut clients = Vec::new();
    for row in corpus.iter().take(backlog) {
        let rows = vec![row.clone()];
        let want = serve::score_rows(&model.forest, &rows, q)
            .rows
            .iter()
            .map(RowScore::from_scored)
            .collect::<Vec<_>>();
        clients.push(std::thread::spawn(move || {
            let mut client = connect(addr);
            let response = client
                .score(&survd::render_score_request(&rows))
                .expect("request");
            (response.status, response.body.clone(), want)
        }));
    }
    // Wait until all of the backlog is admitted (visible via healthz).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut probe = connect(addr);
        let health = probe.request("GET", "/healthz", b"").expect("healthz");
        let json = obs::jsonv::parse(health.text().expect("utf8")).expect("json");
        if json.get("queue_depth") == Some(&obs::jsonv::JsonV::UInt(backlog as u64)) {
            break;
        }
        assert!(Instant::now() < deadline, "backlog never formed");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Shut down WITHOUT resuming: close overrides the pause, and every
    // admitted request must still be scored and answered.
    let stats = handle.shutdown();
    for client in clients {
        let (status, body, want) = client.join().expect("client thread");
        assert_eq!(status, 200, "an admitted request was dropped during drain");
        let text = std::str::from_utf8(&body).expect("utf8");
        let parsed = survd::parse_score_response(text).expect("valid response");
        assert_eq!(
            parsed.results, want,
            "drained response diverged from offline scoring"
        );
    }
    assert_eq!(stats.score_ok, backlog as u64);
    assert_eq!(
        stats.drained_jobs, backlog as u64,
        "all admitted jobs scored after drain began"
    );
}

#[test]
fn healthz_and_metrics_report_server_state() {
    let _guard = serialized();
    let (model, corpus) = fixture();
    let registry = std::sync::Arc::new(obs::Registry::new());
    let obs_guard = registry.install();
    let handle = survd::start(
        model.clone(),
        ServerConfig::default(),
        Some(std::sync::Arc::clone(&registry)),
    )
    .expect("start daemon");
    let mut client = connect(handle.addr());

    let health = client.request("GET", "/healthz", b"").expect("healthz");
    assert_eq!(health.status, 200);
    let json = obs::jsonv::parse(health.text().expect("utf8")).expect("healthz json");
    assert_eq!(
        json.get("status"),
        Some(&obs::jsonv::JsonV::Str("ok".to_string()))
    );
    assert_eq!(json.get("queue_depth"), Some(&obs::jsonv::JsonV::UInt(0)));
    assert_eq!(
        json.get("model_trees"),
        Some(&obs::jsonv::JsonV::UInt(model.forest.tree_count() as u64))
    );

    // One scored request, then the exposition must carry its marks.
    let response = client
        .score(&survd::render_score_request(&[corpus[0].clone()]))
        .expect("score");
    assert_eq!(response.status, 200);
    let metrics = client.request("GET", "/metrics", b"").expect("metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.text().expect("utf8");
    assert!(
        text.contains("survdb_counter{name=\"survd.http_200\"}"),
        "{text}"
    );
    assert!(
        text.contains("survdb_counter{name=\"survd.rows_scored\"}"),
        "{text}"
    );
    assert!(text.contains("survd_score"), "{text}");

    handle.shutdown();
    drop(obs_guard);
}

#[test]
fn stage_sketches_and_drift_obey_counting_identities() {
    let _guard = serialized();
    let (model, corpus) = fixture();
    let q = model.meta.positive_fraction;
    let reference = serve::score_rows(&model.forest, corpus, q)
        .summary()
        .histogram;

    let registry = std::sync::Arc::new(obs::Registry::new());
    let obs_guard = registry.install();
    let config = ServerConfig {
        workers: 4,
        drift_reference: Some(reference),
        ..ServerConfig::default()
    };
    let handle = survd::start(
        model.clone(),
        config,
        Some(std::sync::Arc::clone(&registry)),
    )
    .expect("start daemon");
    let drift_monitor = handle.drift_monitor().expect("drift reference was seeded");
    let mut client = connect(handle.addr());

    // 2-row requests: the per-response stages must count responses,
    // the score stage and drift monitor must count rows.
    let requests = 9usize;
    let rows_per_request = 2usize;
    let mut traces = std::collections::HashSet::new();
    for i in 0..requests {
        let rows: Vec<Vec<f64>> = (0..rows_per_request)
            .map(|j| corpus[(i * rows_per_request + j) % corpus.len()].clone())
            .collect();
        let response = client
            .score(&survd::render_score_request(&rows))
            .expect("score request");
        assert_eq!(response.status, 200);
        let trace = response
            .header("x-trace-id")
            .expect("200 carries x-trace-id")
            .to_string();
        assert_eq!(trace.len(), 16, "trace id is 16 hex chars: {trace}");
        assert!(trace.chars().all(|c| c.is_ascii_hexdigit()), "{trace}");
        traces.insert(trace);
    }
    assert_eq!(traces.len(), requests, "trace ids are distinct per request");

    let stats = handle.shutdown();
    let drift = drift_monitor.snapshot();
    drop(obs_guard);

    assert_eq!(stats.score_ok, requests as u64);
    assert_eq!(stats.rows_scored, (requests * rows_per_request) as u64);

    let [queue_wait, batch_wait, score, write, total] = survd::stage_sketches(&registry.snapshot());
    for (name, sketch) in [
        ("queue_wait", &queue_wait),
        ("batch_wait", &batch_wait),
        ("write", &write),
        ("total", &total),
    ] {
        assert_eq!(
            sketch.total(),
            stats.score_ok,
            "stage {name} observes once per 200 response"
        );
    }
    assert_eq!(
        score.total(),
        stats.rows_scored,
        "score stage observes once per scored row"
    );
    assert_eq!(
        drift.total(),
        stats.rows_scored,
        "drift monitor records every scored probability"
    );
    assert_eq!(drift.reference, reference, "reference side is untouched");
    assert!((0.0..=1.0).contains(&drift.divergence()));
}

/// One fixed single-connection load run against a `workers`-wide
/// daemon; returns the deterministic latency section and the full
/// rendered artifact.
fn latency_artifact_for(workers: usize) -> (String, String) {
    let (model, corpus) = fixture();
    let q = model.meta.positive_fraction;
    let reference = serve::score_rows(&model.forest, corpus, q)
        .summary()
        .histogram;
    let registry = std::sync::Arc::new(obs::Registry::new());
    let obs_guard = registry.install();
    let config = ServerConfig {
        workers,
        queue_capacity: 64,
        drift_reference: Some(reference),
        ..ServerConfig::default()
    };
    let latency_config = config.clone();
    let handle = survd::start(
        model.clone(),
        config,
        Some(std::sync::Arc::clone(&registry)),
    )
    .expect("start daemon");
    let drift_monitor = handle.drift_monitor().expect("drift reference was seeded");

    let requests = 12usize;
    let rows_per_request = 3usize;
    let mut client = connect(handle.addr());
    for i in 0..requests {
        let rows: Vec<Vec<f64>> = (0..rows_per_request)
            .map(|j| corpus[(i * rows_per_request + j) % corpus.len()].clone())
            .collect();
        let response = client
            .score(&survd::render_score_request(&rows))
            .expect("score request");
        assert_eq!(response.status, 200);
    }
    let stats = handle.shutdown();
    let drift = drift_monitor.snapshot();
    drop(obs_guard);

    let run = survd::LatencyRun {
        connections: 1,
        rows_per_request: rows_per_request as u64,
        requests_sent: requests as u64,
        responses_ok: stats.score_ok,
        rows_scored: stats.rows_scored,
    };
    let stages = survd::stage_sketches(&registry.snapshot());
    let section = survd::deterministic_latency_section(&run, &stages, &drift);
    let full = survd::render_latency(
        "serving_e2e",
        &latency_config,
        &run,
        &stages,
        &drift,
        &survd::ClientLatency::zero(),
    );
    (section, full)
}

#[test]
fn latency_deterministic_section_is_byte_identical_across_worker_counts() {
    let _guard = serialized();
    let (one_a, full_one) = latency_artifact_for(1);
    let (one_b, _) = latency_artifact_for(1);
    let (eight, full_eight) = latency_artifact_for(8);
    assert_eq!(one_a, one_b, "consecutive runs of the same config");
    assert_eq!(one_a, eight, "1-worker vs 8-worker daemons");
    survd::validate_latency(&full_one).expect("1-worker artifact is schema-valid");
    survd::validate_latency(&full_eight).expect("8-worker artifact is schema-valid");
    assert_ne!(
        full_one, full_eight,
        "the worker knob lives in the nondeterministic section"
    );
}

#[test]
fn protocol_errors_are_refused_cleanly() {
    let _guard = serialized();
    let (model, corpus) = fixture();
    let config = ServerConfig {
        max_rows_per_request: 4,
        ..ServerConfig::default()
    };
    let handle = survd::start(model.clone(), config, None).expect("start daemon");
    let mut client = connect(handle.addr());

    // All on ONE keep-alive connection: errors must not poison it.
    let bad_json = client.score("this is not json").expect("bad json");
    assert_eq!(bad_json.status, 400);

    let wrong_arity = client
        .score(&survd::render_score_request(&[vec![1.0]]))
        .expect("wrong arity");
    assert_eq!(wrong_arity.status, 400);

    let oversized = client
        .score(&survd::render_score_request(&vec![corpus[0].clone(); 5]))
        .expect("oversized");
    assert_eq!(oversized.status, 413);

    let not_found = client.request("GET", "/nope", b"").expect("404");
    assert_eq!(not_found.status, 404);

    let wrong_method = client.request("GET", "/score", b"").expect("405");
    assert_eq!(wrong_method.status, 405);

    // The connection still works for a valid request afterwards.
    let good = client
        .score(&survd::render_score_request(&[corpus[0].clone()]))
        .expect("good request");
    assert_eq!(good.status, 200);

    let stats = handle.shutdown();
    assert_eq!(stats.score_ok, 1);
    assert_eq!(stats.bad_requests, 4, "400 x2, 413, 405");
    assert_eq!(stats.not_found, 1);
}
