//! `stream_alloc` — counting-allocator proof that the streaming
//! pipeline's memory is bounded by one shard, not the whole region.
//!
//! A `#[global_allocator]` wrapper tracks *live* heap bytes
//! (alloc − dealloc, realloc = delta) and their high-water mark. The
//! test runs the same region twice:
//!
//! 1. **materialized** — `materialized_pipeline`, which holds every
//!    subscription's events simultaneously;
//! 2. **streamed** — `run_shard` over an 8-shard plan, dropping each
//!    shard's result before generating the next.
//!
//! The streamed peak must come in well under the materialized peak:
//! raw telemetry never outlives one chunk and records never outlive
//! their shard. An absolute bound would be brittle across allocators
//! and struct layout changes; the 2× relative bound directly encodes
//! the claim "peak memory scales with the shard, not the region" while
//! leaving slack for allocator noise.
//!
//! This file holds exactly one `#[test]` so no sibling test can
//! allocate concurrently inside the measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use telemetry::{
    materialized_pipeline, run_shard, FleetConfig, RecoveryPolicy, RegionConfig, ShardPlan,
};

struct TrackingAllocator;

static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

fn on_alloc(size: usize) {
    let live = LIVE_BYTES.fetch_add(size as u64, Ordering::SeqCst) + size as u64;
    PEAK_BYTES.fetch_max(live, Ordering::SeqCst);
}

fn on_dealloc(size: usize) {
    LIVE_BYTES.fetch_sub(size as u64, Ordering::SeqCst);
}

unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        new_ptr
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }
}

#[global_allocator]
static GLOBAL: TrackingAllocator = TrackingAllocator;

/// Resets the high-water mark to the current live level, runs `work`,
/// and returns the peak *additional* live bytes it reached.
fn measure_peak<T>(work: impl FnOnce() -> T) -> (u64, T) {
    let baseline = LIVE_BYTES.load(Ordering::SeqCst);
    PEAK_BYTES.store(baseline, Ordering::SeqCst);
    let result = work();
    let peak = PEAK_BYTES.load(Ordering::SeqCst).saturating_sub(baseline);
    (peak, result)
}

#[test]
fn streamed_peak_memory_is_bounded_by_one_shard() {
    let config = FleetConfig::new(RegionConfig::region_1().scaled(0.06), 2018);
    let policy = RecoveryPolicy::default();
    const SHARDS: usize = 8;
    let plan = ShardPlan::new(config.region.subscription_count, SHARDS);
    assert_eq!(plan.shard_count(), SHARDS, "population must fill the plan");

    // Materialized reference: the whole region's events live at once.
    let (materialized_peak, reference) =
        measure_peak(|| materialized_pipeline(&config, None, &policy));
    let total_databases = reference.fleet.databases.len();
    drop(reference);

    // Streamed: one shard at a time, each result dropped before the
    // next shard is generated. Only counters survive an iteration.
    let (streamed_peak, streamed_databases) = measure_peak(|| {
        let mut databases = 0usize;
        for shard in 0..plan.shard_count() {
            let result = run_shard(&config, &plan, shard, 4, None, &policy);
            databases += result.fleet.databases.len();
        }
        databases
    });

    assert_eq!(
        streamed_databases, total_databases,
        "both paths must see the same fleet"
    );
    assert!(
        materialized_peak > 0 && streamed_peak > 0,
        "the tracking allocator must observe both runs"
    );
    assert!(
        streamed_peak * 2 <= materialized_peak,
        "streaming over {SHARDS} shards must peak at well under half the \
         materialized pipeline's live bytes: streamed {streamed_peak} vs \
         materialized {materialized_peak}"
    );
}
