//! `stream_equivalence` — the streaming pipeline's core contract,
//! held under proptest: for any (seed, shard count, shard visit order,
//! chunk size, fault rate), the sharded/chunked pipeline produces
//!
//! * bitwise-identical reconstructed records,
//! * an identical [`telemetry::IngestReport`] (all counters), and
//! * a bitwise-identical featurized [`forest::Dataset`]
//!
//! compared to the materialized reference pipeline that generates the
//! whole region at once and ingests it as a single chunk. The counting
//! identity `generated = recovered + quarantined + vanished` must hold
//! as well — `vanished` comes from an id-set difference, so this is a
//! real consistency check, not true by definition.

use features::{FeatureConfig, FeatureExtractor, StreamingDatasetBuilder};
use proptest::prelude::*;
use telemetry::{
    materialized_pipeline, run_shard, stream::splitmix64, Census, FaultPlan, FleetConfig,
    RecoveryPolicy, RegionConfig, ShardPlan,
};

/// Deterministic Fisher–Yates permutation of `0..n` from a seed.
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed;
    for i in (1..n).rev() {
        state = splitmix64(state);
        order.swap(i, (state % (i as u64 + 1)) as usize);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn streamed_pipeline_is_bitwise_equivalent_to_materialized(
        seed in 0u64..10_000,
        shards_index in 0usize..3,
        order_seed in 0u64..10_000,
        chunk in 1usize..12,
        fault_index in 0usize..3,
    ) {
        let shards = [1usize, 3, 8][shards_index];
        let fault_rate = [0.0f64, 0.08, 0.2][fault_index];
        let config = FleetConfig::new(RegionConfig::region_1().scaled(0.012), seed);
        let policy = RecoveryPolicy::default();
        let faults = (fault_rate > 0.0).then(|| FaultPlan {
            drop_size: fault_rate,
            duplicate: fault_rate / 2.0,
            reorder: fault_rate,
            corrupt_slo: fault_rate / 4.0,
            truncate: fault_rate / 2.0,
            orphan: fault_rate / 4.0,
            ..FaultPlan::none(seed ^ 0xFA17)
        });

        // Reference: whole region generated and ingested in one piece.
        let reference = materialized_pipeline(&config, faults.as_ref(), &policy);
        let reference_census = Census::new(&reference.fleet);
        let extractor = FeatureExtractor::new(&reference_census, FeatureConfig::default());
        let (reference_dataset, reference_survival) =
            extractor.build_dataset(&reference_census, None);

        // Streamed: shards visited in a random permutation, each
        // featurized independently, merged by shard index.
        let plan = ShardPlan::new(config.region.subscription_count, shards);
        let visit_order = permutation(plan.shard_count(), order_seed);
        let mut builder = StreamingDatasetBuilder::new(FeatureConfig::default(), None);
        let mut report = telemetry::IngestReport::default();
        let mut generated = 0usize;
        let mut vanished = 0usize;
        let mut shard_fleets = Vec::new();
        for &shard in &visit_order {
            let result = run_shard(&config, &plan, shard, chunk, faults.as_ref(), &policy);
            builder.push_shard(shard, &result.fleet);
            report.merge(&result.report);
            generated += result.generated_databases;
            vanished += result.vanished_databases;
            shard_fleets.push((shard, result.fleet));
        }

        // Counting identity, per the whole region.
        prop_assert_eq!(
            generated,
            report.databases_recovered + report.databases_quarantined + vanished,
            "generated = recovered + quarantined + vanished must hold"
        );
        prop_assert_eq!(generated, reference.generated_databases);
        prop_assert_eq!(vanished, reference.vanished_databases);

        // Records: concatenating shard fleets in shard-index order
        // reproduces the reference bitwise.
        shard_fleets.sort_by_key(|(shard, _)| *shard);
        let streamed_databases: Vec<_> = shard_fleets
            .iter()
            .flat_map(|(_, fleet)| fleet.databases.iter().cloned())
            .collect();
        prop_assert_eq!(&streamed_databases, &reference.fleet.databases);

        // Ingest accounting: every counter identical. The quarantine
        // id lists must match element-for-element too.
        let mut reference_report = reference.report.clone();
        prop_assert_eq!(
            std::mem::take(&mut report.quarantined_ids),
            std::mem::take(&mut reference_report.quarantined_ids)
        );
        prop_assert_eq!(report, reference_report);

        // Features: the merged dataset is bitwise equal, row for row.
        let (streamed_dataset, streamed_survival) = builder.finish();
        prop_assert_eq!(streamed_dataset, reference_dataset);
        prop_assert_eq!(streamed_survival, reference_survival);
    }
}
