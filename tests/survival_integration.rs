//! Cross-crate survival-analysis checks: estimators vs the generator's
//! analytic ground truth, and agreement between independent estimators
//! on fleet data.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use stats::distributions::{ContinuousDistribution, Weibull};
use survival::{
    logrank_test, CoxModel, ExponentialFit, KaplanMeier, LifeTable, NelsonAalen, SurvivalData,
    WeibullFit,
};
use telemetry::{Census, Fleet, FleetConfig, RegionConfig};

fn fleet() -> Fleet {
    Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.1), 0x5A))
}

#[test]
fn km_recovers_known_weibull_survival() {
    // Generate censored Weibull data with a known survival function and
    // check the KM estimate tracks it within sampling error.
    let truth = Weibull::new(0.8, 40.0);
    let mut rng = SmallRng::seed_from_u64(1);
    let pairs: Vec<(f64, bool)> = (0..20_000)
        .map(|_| {
            let t = truth.sample(&mut rng);
            let c: f64 = rng.gen::<f64>() * 150.0;
            if t <= c {
                (t, true)
            } else {
                (c, false)
            }
        })
        .collect();
    let km = KaplanMeier::fit(&SurvivalData::from_pairs(&pairs));
    for &t in &[5.0, 20.0, 50.0, 100.0] {
        let estimated = km.survival_at(t);
        let exact = truth.sf(t);
        assert!(
            (estimated - exact).abs() < 0.02,
            "S({t}): km {estimated} vs exact {exact}"
        );
    }
}

#[test]
fn km_and_nelson_aalen_agree_on_fleet_data() {
    let f = fleet();
    let census = Census::new(&f);
    let data = SurvivalData::from_pairs(&census.survival_pairs(0.0));
    let km = KaplanMeier::fit(&data);
    let na = NelsonAalen::fit(&data);
    for &t in &[1.0, 10.0, 50.0, 120.0] {
        let diff = (km.survival_at(t) - na.survival_at(t)).abs();
        assert!(diff < 0.01, "at {t}: {diff}");
    }
}

#[test]
fn life_table_tracks_km() {
    let f = fleet();
    let census = Census::new(&f);
    let data = SurvivalData::from_pairs(&census.survival_pairs(0.0));
    let km = KaplanMeier::fit(&data);
    let lt = LifeTable::fit(&data, 10.0, 15);
    for row in lt.rows() {
        let end = row.start + row.width;
        let diff = (row.survival - km.survival_at(end)).abs();
        assert!(
            diff < 0.05,
            "interval ending {end}: lt {} km {}",
            row.survival,
            km.survival_at(end)
        );
    }
}

#[test]
fn weibull_fit_on_fleet_shows_infant_mortality() {
    let f = fleet();
    let census = Census::new(&f);
    let data = SurvivalData::from_pairs(&census.survival_pairs(0.0));
    let weib = WeibullFit::fit(&data);
    let expo = ExponentialFit::fit(&data);
    // Cloud-database lifespans have a strongly decreasing hazard.
    assert!(weib.shape() < 0.9, "shape = {}", weib.shape());
    assert!(weib.aic() < expo.aic());
}

#[test]
fn logrank_separates_editions_on_fleet() {
    use telemetry::Edition;
    let f = fleet();
    let census = Census::new(&f);
    let basic = SurvivalData::from_pairs(
        &census.survival_pairs_where(2.0, |db| db.creation_edition() == Edition::Basic),
    );
    let premium = SurvivalData::from_pairs(
        &census.survival_pairs_where(2.0, |db| db.creation_edition() == Edition::Premium),
    );
    let r = logrank_test(&basic, &premium);
    // Strongly significant at this 0.1-scale fixture; the exact value
    // is pinned so a generator or estimator change fails loudly rather
    // than sliding past a loose threshold.
    assert!(r.p_value < 1e-3, "p = {}", r.p_value);
    assert_eq!(r.p_value, 0.00026760616425364295);
}

#[test]
fn cox_recovers_edition_effect() {
    // Fit Cox PH with a "premium" indicator on the fleet: Premium
    // databases must show an elevated hazard (Obs 3.2's direction).
    use telemetry::Edition;
    let f = fleet();
    let census = Census::new(&f);
    let mut model = CoxModel::new(&["is_premium"]);
    for db in &f.databases {
        let (duration, event) = db.observed_lifespan(census.window_end());
        let days = duration.as_days_f64();
        if days < 2.0 {
            continue; // match the 2-day-minimum population
        }
        let premium = (db.creation_edition() == Edition::Premium) as u8 as f64;
        model.push(&[premium], days, event);
    }
    let fit = model.fit();
    let hr = fit.hazard_ratios()[0];
    assert!(hr > 1.1, "premium hazard ratio = {hr}");
    assert!(fit.p_values()[0] < 0.01);
}
