//! Stream-path integration: the event stream is a complete data
//! representation — ingesting it reproduces the records, the census,
//! and the prediction dataset exactly; the JSONL export path agrees.

use features::{FeatureConfig, FeatureExtractor};
use telemetry::{
    read_records_jsonl, reconstruct_records, write_records_jsonl, Census, EventStream, Fleet,
    FleetConfig, RegionConfig, RegionId,
};

fn fleet() -> Fleet {
    Fleet::generate(FleetConfig::new(RegionConfig::region_2().scaled(0.05), 77))
}

#[test]
fn stream_ingestion_reproduces_the_study_dataset() {
    let original = fleet();
    let stream = EventStream::of_fleet(&original);
    let records = reconstruct_records(&stream).expect("stream is well-formed");
    assert_eq!(records, original.databases);

    // Replace the fleet's records with the reconstructed ones and
    // verify the entire downstream analysis is unchanged.
    let mut ingested = original.clone();
    ingested.databases = records;

    let census_a = Census::new(&original);
    let census_b = Census::new(&ingested);
    assert_eq!(
        census_a.study_population_size(),
        census_b.study_population_size()
    );
    assert_eq!(census_a.survival_pairs(2.0), census_b.survival_pairs(2.0));
    assert_eq!(
        census_a.prediction_population(2.0),
        census_b.prediction_population(2.0)
    );

    let ex_a = FeatureExtractor::new(&census_a, FeatureConfig::default());
    let ex_b = FeatureExtractor::new(&census_b, FeatureConfig::default());
    let (data_a, survival_a) = ex_a.build_dataset(&census_a, None);
    let (data_b, survival_b) = ex_b.build_dataset(&census_b, None);
    assert_eq!(data_a, data_b);
    assert_eq!(survival_a, survival_b);
}

#[test]
fn export_and_stream_paths_agree() {
    let original = fleet();

    // Path 1: records -> JSONL -> records.
    let mut jsonl = Vec::new();
    write_records_jsonl(&original.databases, &mut jsonl).unwrap();
    let via_jsonl = read_records_jsonl(jsonl.as_slice()).unwrap();

    // Path 2: records -> event stream -> records.
    let via_stream = reconstruct_records(&EventStream::of_fleet(&original)).unwrap();

    assert_eq!(via_jsonl, via_stream);
    assert_eq!(via_jsonl, original.databases);
}

#[test]
fn regional_streams_stay_separate() {
    let region_1 = Fleet::generate(FleetConfig::new(RegionConfig::region_1().scaled(0.03), 5));
    let region_3 = Fleet::generate(FleetConfig::new(RegionConfig::region_3().scaled(0.03), 5));
    let records_1 = reconstruct_records(&EventStream::of_fleet(&region_1)).unwrap();
    let records_3 = reconstruct_records(&EventStream::of_fleet(&region_3)).unwrap();
    assert!(records_1.iter().all(|r| r.region == RegionId::Region1));
    assert!(records_3.iter().all(|r| r.region == RegionId::Region3));
}
