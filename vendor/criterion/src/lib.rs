//! Offline reimplementation of the `criterion` API surface this
//! workspace's benches use: `criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group` / `bench_function` /
//! `bench_with_input`, `BenchmarkId`, `Throughput`, and `black_box`.
//!
//! The harness is deliberately simple: each bench closure is warmed
//! up once, then timed over a fixed iteration budget, and a
//! `name ... median time` line is printed. There is no statistical
//! machinery — the workspace's quantitative claims live in artifact
//! files produced by dedicated binaries, while `cargo bench` serves
//! as a smoke-and-relative-trend harness.

use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(dummy: T) -> T {
    std::hint::black_box(dummy)
}

/// Per-iteration timing driver handed to bench closures.
pub struct Bencher {
    /// Nanoseconds per iteration measured by the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    /// Times `routine`, first warming it up, then averaging over a
    /// small adaptive iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, also used to size the budget so slow
        // benches (whole-fleet generation) don't run for minutes.
        let warm = Instant::now();
        black_box(routine());
        let once = warm.elapsed();
        let iters = if once > Duration::from_millis(200) {
            1
        } else if once > Duration::from_millis(10) {
            3
        } else if once > Duration::from_micros(100) {
            25
        } else {
            200
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.last_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// A bench identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Throughput annotation (accepted, echoed in the report line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped bench.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), None, f);
        self
    }
}

/// A group of benches sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the adaptive iteration budget
    /// ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benches with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one bench in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.throughput, f);
        self
    }

    /// Runs one parameterized bench in the group.
    pub fn bench_with_input<F, I>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (report separation only).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher { last_ns: 0.0 };
    f(&mut bencher);
    let per_iter = bencher.last_ns;
    let annotated = match throughput {
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / per_iter * 1e9 / (1 << 20) as f64
            )
        }
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / per_iter * 1e9)
        }
        _ => String::new(),
    };
    println!("bench {name:<56} {}{annotated}", format_ns(per_iter));
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:>10.3} s ", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:>10.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:>10.3} µs", ns / 1e3)
    } else {
        format!("{ns:>10.1} ns")
    }
}

/// Declares a bench group: `criterion_group!(benches, fn_a, fn_b);`
/// defines `fn benches()` running each target against a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            $(
                {
                    let mut c = $crate::Criterion::default();
                    $target(&mut c);
                }
            )+
        }
    };
}

/// Declares the bench binary entry point from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("vendor_smoke");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| b.iter(|| (0..4u64).map(black_box).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 3), &3u64, |b, &k| {
            b.iter(|| black_box(k) * 2)
        });
        group.finish();
        c.bench_function("ungrouped", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(smoke, quick);

    #[test]
    fn harness_runs_and_times() {
        smoke();
        let mut b = Bencher { last_ns: 0.0 };
        b.iter(|| std::thread::sleep(std::time::Duration::from_micros(50)));
        assert!(b.last_ns >= 50_000.0, "{}", b.last_ns);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 0.5).to_string(), "f/0.5");
    }
}
