//! Collection strategies: `vec(element, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive size window for generated collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone, Copy)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_half_open_and_inclusive_windows() {
        let mut rng = TestRng::for_case("lens", 0);
        for _ in 0..200 {
            let a = vec(0u8..5, 2..7).generate(&mut rng);
            assert!((2..7).contains(&a.len()));
            let b = vec(0u8..5, 3..=3).generate(&mut rng);
            assert_eq!(b.len(), 3);
            let c = vec(0u8..5, 4).generate(&mut rng);
            assert_eq!(c.len(), 4);
        }
    }

    #[test]
    fn elements_follow_element_strategy() {
        let mut rng = TestRng::for_case("elems", 1);
        let v = vec((0u8..3, 0.0f64..1.0), 50..=50).generate(&mut rng);
        for (a, b) in &v {
            assert!(*a < 3);
            assert!((0.0..1.0).contains(b));
        }
    }
}
