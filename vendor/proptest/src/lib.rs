//! Offline reimplementation of the `proptest` API surface this
//! workspace uses: the `proptest!` macro, range / `any` / tuple /
//! `collection::vec` strategies, `prop_assert!`-style assertions, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from upstream, by design:
//!
//! * **Deterministic**: every case's inputs are a pure function of
//!   `(test name, case index)` through SplitMix64 — reruns reproduce
//!   failures exactly, with no persistence files.
//! * **No shrinking**: on failure the harness prints the generating
//!   case index and the full input values, which the determinism makes
//!   sufficient to reproduce and debug.
//!
//! The strategy combinators not used by the workspace (`prop_oneof!`,
//! `prop_map`, …) are intentionally absent.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { .. }`
/// item becomes a `#[test]` that runs the body over `config.cases`
/// deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal muncher for [`proptest!`]: peels one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(file!(), "::", stringify!($name)),
                    __case,
                );
                let mut __inputs = String::new();
                // Generate in declaration order, capturing a debug
                // rendering of each input before it is moved into its
                // pattern.
                $(
                    let __value = $crate::strategy::Strategy::generate(
                        &($strategy),
                        &mut __rng,
                    );
                    __inputs.push_str(&format!(
                        "  {} = {:?}\n",
                        stringify!($pat),
                        &__value,
                    ));
                    let $pat = __value;
                )+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| { $body })
                );
                if let Err(__payload) = __outcome {
                    println!(
                        "proptest {} failed at case {}/{} with inputs:\n{}",
                        stringify!($name), __case, __config.cases, __inputs,
                    );
                    ::std::panic::resume_unwind(__payload);
                }
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(
            x in -5i64..5,
            y in 0.25f64..0.75,
            n in 1usize..=4,
            b in any::<bool>(),
        ) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!((1..=4).contains(&n));
            let _ = b;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        #[test]
        fn vec_sizes_respect_range(values in prop::collection::vec(0u8..10, 2..6)) {
            prop_assert!((2..6).contains(&values.len()));
            prop_assert!(values.iter().all(|&v| v < 10));
        }

        #[test]
        fn tuples_generate_componentwise(
            pairs in prop::collection::vec((0.0f64..1.0, any::<bool>()), 1..=8),
        ) {
            prop_assert!(!pairs.is_empty() && pairs.len() <= 8);
            for (v, _flag) in &pairs {
                prop_assert!((0.0..1.0).contains(v));
            }
        }
    }

    #[test]
    fn cases_are_deterministic_per_name_and_index() {
        let mut a = crate::test_runner::TestRng::for_case("suite::case", 3);
        let mut b = crate::test_runner::TestRng::for_case("suite::case", 3);
        let mut c = crate::test_runner::TestRng::for_case("suite::case", 4);
        let mut d = crate::test_runner::TestRng::for_case("suite::other", 3);
        let (x, y) = (a.next_u64(), b.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, c.next_u64());
        assert_ne!(x, d.next_u64());
    }

    #[test]
    fn failing_case_panics_through() {
        let result = std::panic::catch_unwind(|| {
            // A property that must fail on some case quickly.
            let mut rng = crate::test_runner::TestRng::for_case("x", 0);
            let v = crate::strategy::Strategy::generate(&(0u8..10), &mut rng);
            assert!(v >= 10, "deliberate");
        });
        assert!(result.is_err());
    }
}
