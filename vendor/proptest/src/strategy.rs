//! The [`Strategy`] trait and the primitive strategies: numeric
//! ranges, `any::<T>()`, and tuples.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating test inputs of one type.
pub trait Strategy {
    /// The generated type (must be printable for failure reports).
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Marker returned by [`any`]; the `Arbitrary`-style full-range
/// strategy for `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full-range strategy for `T` (`any::<bool>()`, `any::<u64>()`,
/// …).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! any_uint {
    ($($ty:ty),*) => {$(
        impl Strategy for Any<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}
any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite values only: the workspace's properties are numeric
        // laws where NaN injection is tested explicitly elsewhere.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

macro_rules! range_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full u64/i64 domain.
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let u = rng.unit_f64();
        let v = self.start + u * (self.end - self.start);
        // Guard the half-open upper bound against rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        // Scale so the top draw can land exactly on `hi`.
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        let wide: Range<f64> = self.start as f64..self.end as f64;
        wide.generate(rng) as f32
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_ranges_cover_endpoints_lawfully() {
        let mut rng = TestRng::for_case("cover", 0);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..400 {
            let v = (-2i64..=2).generate(&mut rng);
            assert!((-2..=2).contains(&v));
            hit_lo |= v == -2;
            hit_hi |= v == 2;
        }
        assert!(hit_lo && hit_hi);
    }

    #[test]
    fn half_open_excludes_upper() {
        let mut rng = TestRng::for_case("upper", 0);
        for _ in 0..400 {
            assert!((0u8..3).generate(&mut rng) < 3);
            assert!((0.0f64..1.0).generate(&mut rng) < 1.0);
        }
    }

    #[test]
    fn tuples_generate_each_component() {
        let mut rng = TestRng::for_case("tuple", 0);
        let (a, b, c) = (0u8..4, -1.0f64..1.0, any::<bool>()).generate(&mut rng);
        assert!(a < 4);
        assert!((-1.0..1.0).contains(&b));
        let _ = c;
    }
}
