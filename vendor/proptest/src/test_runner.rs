//! Runner configuration and the deterministic case generator.

/// How many cases a property runs. Mirrors the upstream type's shape
/// for the options this workspace uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (the only knob used here).
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A SplitMix64 stream keyed by `(test name, case index)`: cheap,
/// statistically fine for test-input generation, and — the property
/// that matters — fully deterministic across runs and platforms.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for one case of one named property.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case ordinal.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: splitmix(h ^ splitmix(case as u64 + 1)),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        splitmix(self.state)
    }

    /// A float in `[0, 1)` from the top 53 bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        // Widening multiply; the bias is far below what test-input
        // generation can observe.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// The SplitMix64 finalizer.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_stays_in_bounds_and_covers() {
        let mut rng = TestRng::for_case("bounds", 0);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.below(5) as usize;
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn unit_is_half_open() {
        let mut rng = TestRng::for_case("unit", 0);
        for _ in 0..1000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn default_config_is_256_cases() {
        assert_eq!(ProptestConfig::default().cases, 256);
        assert_eq!(ProptestConfig::with_cases(24).cases, 24);
    }
}
