//! Sampling distributions: [`Standard`], [`Bernoulli`], and the
//! uniform-range machinery behind `gen_range`, each reproducing the
//! upstream `rand` 0.8.5 algorithm exactly.

use crate::Rng;

/// A type that can produce values of `T` from randomness.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution: full-range integers, `[0, 1)` floats
/// (53-bit multiply method for `f64`, 24-bit for `f32`), fair bools.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u8> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u8 {
        rng.next_u32() as u8
    }
}

impl Distribution<u16> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
        rng.next_u32() as u16
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        // 64-bit targets only (the workspace's only deployment shape).
        rng.next_u64() as usize
    }
}

macro_rules! standard_signed {
    ($($s:ty => $u:ty),*) => {$(
        impl Distribution<$s> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $s {
                <Standard as Distribution<$u>>::sample(&Standard, rng) as $s
            }
        }
    )*};
}
standard_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        // Compare the most significant bit of a u32 (least significant
        // bits of weak generators can be patterned).
        rng.next_u32() & (1 << 31) != 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Multiply-based [0, 1): 53 most-significant bits.
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 most-significant bits of a u32.
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Error returned for probabilities outside `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BernoulliError;

impl std::fmt::Display for BernoulliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("p is outside [0, 1]")
    }
}

impl std::error::Error for BernoulliError {}

/// A boolean distribution with success probability `p`, using the
/// fixed-point comparison `u64 < (p * 2^64)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bernoulli {
    p_int: u64,
}

const ALWAYS_TRUE: u64 = u64::MAX;
const BERNOULLI_SCALE: f64 = 2.0 * (1u64 << 63) as f64;

impl Bernoulli {
    /// A Bernoulli distribution with probability `p` of `true`.
    pub fn new(p: f64) -> Result<Bernoulli, BernoulliError> {
        if !(0.0..1.0).contains(&p) {
            if p == 1.0 {
                return Ok(Bernoulli { p_int: ALWAYS_TRUE });
            }
            return Err(BernoulliError);
        }
        Ok(Bernoulli {
            p_int: (p * BERNOULLI_SCALE) as u64,
        })
    }
}

impl Distribution<bool> for Bernoulli {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        if self.p_int == ALWAYS_TRUE {
            return true;
        }
        rng.next_u64() < self.p_int
    }
}

pub mod uniform {
    //! `gen_range` support: per-type single-shot uniform sampling.

    use super::{Distribution, Standard};
    use crate::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Types `gen_range` can sample.
    pub trait SampleUniform: Sized {
        /// Samples uniformly from `[low, high)`.
        fn sample_single<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Samples uniformly from `[low, high]`.
        fn sample_single_inclusive<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    }

    /// Range shapes `gen_range` accepts.
    pub trait SampleRange<T> {
        /// Draws one sample from the range.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
        /// True when no value lies in the range.
        fn is_empty(&self) -> bool;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            T::sample_single(self.start, self.end, rng)
        }
        fn is_empty(&self) -> bool {
            !(self.start < self.end)
        }
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            T::sample_single_inclusive(low, high, rng)
        }
        fn is_empty(&self) -> bool {
            !(self.start() <= self.end())
        }
    }

    // Upstream's uniform_int_impl!: `$ty` is the sampled type,
    // `$unsigned` its unsigned twin, `$u_large` the widened type the
    // rejection loop runs in (u32 for sub-32-bit types, else the
    // type's own width). The loop is widening-multiply rejection:
    // draw v, split v*range into (hi, lo) halves, accept hi when the
    // low half clears the zone.
    macro_rules! uniform_int_impl {
        ($ty:ty, $unsigned:ty, $u_large:ty) => {
            impl SampleUniform for $ty {
                fn sample_single<R: Rng + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                    let range = high.wrapping_sub(low) as $unsigned as $u_large;
                    // gen_range rejects empty ranges, so range >= 1.
                    let zone = if (<$unsigned>::MAX as u64) <= (u16::MAX as u64) {
                        // Narrow types widened into u32: upstream
                        // computes the exact modulo zone.
                        let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                        <$u_large>::MAX - ints_to_reject
                    } else {
                        (range << range.leading_zeros()).wrapping_sub(1)
                    };
                    loop {
                        let v: $u_large =
                            <Standard as Distribution<$u_large>>::sample(&Standard, rng);
                        let wide = (v as Wide) * (range as Wide);
                        let hi = (wide >> <$u_large>::BITS) as $u_large;
                        let lo = wide as $u_large;
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }

                fn sample_single_inclusive<R: Rng + ?Sized>(
                    low: $ty,
                    high: $ty,
                    rng: &mut R,
                ) -> $ty {
                    let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                    if range == 0 {
                        // Full type range: every bit pattern is valid.
                        return <Standard as Distribution<$ty>>::sample(&Standard, rng);
                    }
                    let zone = if (<$unsigned>::MAX as u64) <= (u16::MAX as u64) {
                        let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                        <$u_large>::MAX - ints_to_reject
                    } else {
                        (range << range.leading_zeros()).wrapping_sub(1)
                    };
                    loop {
                        let v: $u_large =
                            <Standard as Distribution<$u_large>>::sample(&Standard, rng);
                        let wide = (v as Wide) * (range as Wide);
                        let hi = (wide >> <$u_large>::BITS) as $u_large;
                        let lo = wide as $u_large;
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }

    /// The widening-multiply carrier (u128 covers both u32 and u64
    /// loop widths without a per-width helper trait).
    pub type Wide = u128;

    uniform_int_impl!(u8, u8, u32);
    uniform_int_impl!(i8, u8, u32);
    uniform_int_impl!(u16, u16, u32);
    uniform_int_impl!(i16, u16, u32);
    uniform_int_impl!(u32, u32, u32);
    uniform_int_impl!(i32, u32, u32);
    uniform_int_impl!(u64, u64, u64);
    uniform_int_impl!(i64, u64, u64);
    uniform_int_impl!(usize, usize, u64);
    uniform_int_impl!(isize, usize, u64);

    macro_rules! uniform_float_impl {
        ($ty:ty, $uty:ty, $bits_to_discard:expr, $one_bits:expr) => {
            impl SampleUniform for $ty {
                fn sample_single<R: Rng + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                    // Upstream UniformFloat::sample_single: draw
                    // value1_2 in [1, 2) from the mantissa bits, map
                    // through value0_1 * scale + low, and on the rare
                    // rounding collision with `high` shrink scale by
                    // one ulp and retry.
                    let mut scale = high - low;
                    loop {
                        let bits: $uty = <Standard as Distribution<$uty>>::sample(&Standard, rng);
                        let value1_2 = <$ty>::from_bits((bits >> $bits_to_discard) | $one_bits);
                        let value0_1 = value1_2 - 1.0;
                        let res = value0_1 * scale + low;
                        if res < high {
                            return res;
                        }
                        scale = <$ty>::from_bits(scale.to_bits() - 1);
                    }
                }

                fn sample_single_inclusive<R: Rng + ?Sized>(
                    low: $ty,
                    high: $ty,
                    rng: &mut R,
                ) -> $ty {
                    // Upstream scales so the largest mantissa draw
                    // lands exactly on `high`.
                    let max_rand =
                        <$ty>::from_bits((<$uty>::MAX >> $bits_to_discard) | $one_bits) - 1.0;
                    let scale = (high - low) / max_rand;
                    let bits: $uty = <Standard as Distribution<$uty>>::sample(&Standard, rng);
                    let value1_2 = <$ty>::from_bits((bits >> $bits_to_discard) | $one_bits);
                    let value0_1 = value1_2 - 1.0;
                    value0_1 * scale + low
                }
            }
        };
    }

    uniform_float_impl!(f64, u64, 12u32, 0x3FF0000000000000u64);
    uniform_float_impl!(f32, u32, 9u32, 0x3F800000u32);
}

#[cfg(test)]
mod tests {
    use super::uniform::SampleUniform;
    use super::*;
    use crate::rngs::SmallRng;
    use crate::{RngCore, SeedableRng};

    #[test]
    fn usize_range_matches_u64_widening_multiply() {
        // usize sampling runs through the u64-width loop; replay the
        // reference arithmetic next to it.
        let mut a = SmallRng::seed_from_u64(41);
        let mut b = SmallRng::seed_from_u64(41);
        let got = a.gen_range(0usize..160);
        let range = 160u64;
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        let want = loop {
            let v = b.next_u64();
            let wide = v as u128 * range as u128;
            let (hi, lo) = ((wide >> 64) as u64, wide as u64);
            if lo <= zone {
                break hi;
            }
        };
        assert_eq!(got as u64, want);
    }

    #[test]
    fn narrow_range_uses_u32_loop_with_exact_zone() {
        let mut a = SmallRng::seed_from_u64(6);
        let mut b = SmallRng::seed_from_u64(6);
        let got = a.gen_range(0u8..6);
        let range = 6u32;
        let ints_to_reject = (u32::MAX - range + 1) % range;
        let zone = u32::MAX - ints_to_reject;
        let want = loop {
            let v = b.next_u32();
            let wide = v as u64 * range as u64;
            let (hi, lo) = ((wide >> 32) as u32, wide as u32);
            if lo <= zone {
                break hi;
            }
        };
        assert_eq!(got as u32, want);
    }

    #[test]
    fn f64_range_matches_upstream_shape() {
        let mut a = SmallRng::seed_from_u64(8);
        let mut b = SmallRng::seed_from_u64(8);
        let got = a.gen_range(-1.0f64..1.0);
        let value1_2 = f64::from_bits((b.next_u64() >> 12) | 0x3FF0000000000000);
        let scale = 2.0;
        assert_eq!(got, (value1_2 - 1.0) * scale + -1.0);
        assert!((-1.0..1.0).contains(&got));
    }

    #[test]
    fn inclusive_integer_range_hits_both_ends() {
        let mut rng = SmallRng::seed_from_u64(1);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..500 {
            match rng.gen_range(0u8..=3) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn full_u8_inclusive_range_is_passthrough() {
        let mut a = SmallRng::seed_from_u64(12);
        let mut b = SmallRng::seed_from_u64(12);
        assert_eq!(a.gen_range(0u8..=255), b.next_u32() as u8);
    }

    #[test]
    fn bernoulli_is_fixed_point_compare() {
        let mut a = SmallRng::seed_from_u64(2);
        let mut b = SmallRng::seed_from_u64(2);
        let p = 0.37;
        let want = b.next_u64() < (p * BERNOULLI_SCALE) as u64;
        assert_eq!(a.gen_bool(p), want);
    }

    #[test]
    fn sample_single_direct_calls_work() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..100 {
            let v = <i32 as SampleUniform>::sample_single(-10, 10, &mut rng);
            assert!((-10..10).contains(&v));
        }
    }
}
