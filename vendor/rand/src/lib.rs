//! Offline reimplementation of the `rand` 0.8 API surface this
//! workspace uses, bit-compatible with upstream `rand` 0.8.5 so that
//! every seeded sequence (and therefore every golden artifact) is
//! unchanged.
//!
//! The build environment has no registry access, and the workspace
//! policy is standard-library-only anyway; this crate keeps the
//! familiar `rand` names while owning every line. Surface provided:
//!
//! * [`RngCore`] / [`SeedableRng`] / [`Rng`] traits,
//! * [`rngs::SmallRng`] — xoshiro256++ exactly as upstream `rand`
//!   0.8.5 ships it on 64-bit targets, including its SplitMix64-based
//!   `seed_from_u64`,
//! * `gen::<T>()` via [`distributions::Standard`] (ints, floats,
//!   bool),
//! * `gen_range` over half-open and inclusive integer/float ranges
//!   (widening-multiply rejection sampling, upstream's algorithm),
//! * `gen_bool` via the fixed-point Bernoulli comparison.
//!
//! Compatibility is pinned by reference-vector tests at the bottom:
//! the xoshiro256++ vectors from the upstream test suite, and spot
//! checks of the derived samplers.

// Upstream `rand` writes these range-emptiness checks with negated
// comparisons; keep them verbatim for auditability against 0.8.5.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod distributions;
pub mod rngs;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The byte-array seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it through PCG32
    /// (upstream `rand_core`'s default). Generators with a better
    /// scheme (xoshiro's SplitMix64) override this.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value via the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let d = distributions::Bernoulli::new(p).expect("p is outside [0, 1]");
        d.sample(self)
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    //! Convenience re-exports.
    pub use crate::distributions::Distribution;
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn small_rng_matches_rand_085_reference_vectors() {
        // Upstream rand 0.8.5 xoshiro256plusplus.rs test vectors: the
        // state [1, 2, 3, 4] (little-endian seed bytes) must produce
        // these ten outputs. This pins bit compatibility of the whole
        // workspace's seeded data generation.
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = SmallRng::from_seed(seed);
        let expected: [u64; 10] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
            15849039046786891736,
            10450023813501588000,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seed_from_u64_is_splitmix64() {
        // SplitMix64 from seed 0 produces this well-known first state
        // word; seed_from_u64 must expand through SplitMix64 exactly
        // as rand 0.8.5's xoshiro does (NOT the rand_core PCG32
        // default).
        let rng = SmallRng::seed_from_u64(0);
        assert_eq!(rng.state()[0], 0xe220a8397b1dcdaf);
        let rng = SmallRng::seed_from_u64(1);
        assert_eq!(rng.state()[0], 0x910a2dec89025cc1);
    }

    #[test]
    fn next_u32_takes_high_bits() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        assert_eq!(a.next_u32(), (b.next_u64() >> 32) as u32);
    }

    #[test]
    fn standard_f64_is_53_bit_multiply() {
        let mut a = SmallRng::seed_from_u64(11);
        let mut b = SmallRng::seed_from_u64(11);
        let x: f64 = a.gen();
        let bits = b.next_u64() >> 11;
        assert_eq!(x, bits as f64 * (1.0 / (1u64 << 53) as f64));
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..64 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    #[should_panic(expected = "p is outside")]
    fn gen_bool_rejects_out_of_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        rng.gen_bool(1.5);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(17);
        for _ in 0..2000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u8..=255);
            let _ = w;
            let x = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&x));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        let mut rng = SmallRng::seed_from_u64(17);
        rng.gen_range(5usize..5);
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = SmallRng::seed_from_u64(23);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn sequences_are_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(99);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(99);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(100);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn fill_bytes_is_le_u64_stream() {
        let mut a = SmallRng::seed_from_u64(5);
        let mut b = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 20];
        a.fill_bytes(&mut buf);
        let mut want = Vec::new();
        for _ in 0..3 {
            want.extend_from_slice(&b.next_u64().to_le_bytes());
        }
        assert_eq!(&buf[..], &want[..20]);
    }
}
