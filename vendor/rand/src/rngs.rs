//! Concrete generators: [`SmallRng`].

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator: xoshiro256++ exactly
/// as upstream `rand` 0.8.5 ships it on 64-bit platforms, so seeded
/// sequences here match seeded sequences there bit for bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// The raw xoshiro state (test hook for compatibility pinning).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        // The lowest bits of xoshiro256++ have linear dependencies, so
        // upstream takes the upper half — matching it exactly matters
        // for every derived sampler.
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);

        let t = self.s[1] << 17;

        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];

        self.s[2] ^= t;

        self.s[3] = self.s[3].rotate_left(45);

        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&last[..rest.len()]);
        }
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> SmallRng {
        // An all-zero state is a fixed point of xoshiro; upstream
        // redirects it through seed_from_u64(0).
        if seed.iter().all(|&b| b == 0) {
            return SmallRng::seed_from_u64(0);
        }
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        SmallRng { s }
    }

    /// Expands a `u64` seed through SplitMix64, as upstream's xoshiro
    /// implementation does (overriding the rand_core PCG32 default).
    fn seed_from_u64(mut state: u64) -> SmallRng {
        const PHI: u64 = 0x9e3779b97f4a7c15;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        SmallRng::from_seed(seed)
    }
}
